"""Crash-resume for the sweep pool: real parent SIGKILL, then resume.

The acceptance property (ISSUE 10): a sweep whose *parent* is killed
with a real ``SIGKILL`` mid-sweep (no cleanup handlers run) and then
resumed with a different worker count produces a merged rollup
byte-identical to an uninterrupted serial run of the same spec.  The
victim process kills itself from a live-bus sink the moment enough
cells have completed, exactly like an OOM kill between two scheduling
decisions of the pool loop.
"""

import json
import signal
import subprocess
import sys
from pathlib import Path

_SCRIPT = '''
import json
import os
import signal
import sys

sys.path.insert(0, {src!r})

from repro.experiments import pool

SPEC = pool.SweepSpec(kind="selftest", scale="tiny", seed=23,
                      params={{"cells": 10, "sleep_s": 0.05}},
                      timeout_s=10.0, backoff_s=0.0)


class KillParentAfter:
    """Live sink that SIGKILLs the pool parent after N completed cells."""

    def __init__(self, after):
        self.after = after

    def on_snapshot(self, record):
        if record.get("kind") == "sweep" \\
                and record.get("done", 0) >= self.after:
            os.kill(os.getpid(), signal.SIGKILL)


def main():
    mode, store, out, workers = (sys.argv[1], sys.argv[2], sys.argv[3],
                                 int(sys.argv[4]))
    from repro.obs.live import LiveBus

    bus = LiveBus()
    if mode == "victim":
        bus.attach(KillParentAfter(after=3))
        pool.run_sweep(SPEC, store, workers=workers, live=bus)
        raise SystemExit("victim was not killed")
    resume = mode == "resume"
    result = pool.run_sweep(SPEC, store, workers=workers, resume=resume,
                            live=bus)
    with open(out, "w") as fh:
        json.dump({{"digest": result.digest, "resumed": result.resumed,
                   "ran": result.ran, "completed": result.completed,
                   "rollup": str(result.rollup_path)}}, fh)


main()
'''


class TestParentSigkillResume:
    @classmethod
    def setup_class(cls):
        cls.src = str(Path(__file__).resolve().parent.parent / "src")

    def _script(self, tmp_path):
        script = tmp_path / "driver.py"
        script.write_text(_SCRIPT.format(src=self.src))
        return script

    def _run(self, script, mode, store, out, workers, check=True):
        proc = subprocess.run(
            [sys.executable, str(script), mode, str(store), str(out),
             str(workers)],
            capture_output=True, text=True, timeout=600,
        )
        if check and proc.returncode != 0:
            raise AssertionError(
                f"{mode} run failed rc={proc.returncode}:\n{proc.stderr}")
        return proc

    def test_killed_parent_resumes_to_serial_bytes(self, tmp_path):
        script = self._script(tmp_path)

        # reference: uninterrupted, fully serial (workers=0)
        ref_out = tmp_path / "ref.json"
        self._run(script, "fresh", tmp_path / "ref-store", ref_out, 0)
        ref = json.loads(ref_out.read_text())

        # victim: 2 workers, parent SIGKILLed after 3 completed cells
        store = tmp_path / "store"
        victim = self._run(script, "victim", store, tmp_path / "unused",
                           2, check=False)
        assert victim.returncode == -signal.SIGKILL, victim.stderr
        assert not (tmp_path / "unused").exists()

        # the killed sweep left durable, scannable partial state behind
        scan = pool_scan(store)
        assert 0 < len(scan.completed) < 10
        assert not scan.conflicts

        # resume with a *different* worker count
        res_out = tmp_path / "res.json"
        self._run(script, "resume", store, res_out, 3)
        res = json.loads(res_out.read_text())

        assert res["resumed"] >= 3  # completed cells were skipped
        assert res["resumed"] + res["ran"] == 10
        assert res["completed"] == 10
        assert res["digest"] == ref["digest"]
        assert Path(res["rollup"]).read_bytes() \
            == Path(ref["rollup"]).read_bytes()

    def test_resume_without_flag_is_refused(self, tmp_path):
        script = self._script(tmp_path)
        store = tmp_path / "store"
        self._run(script, "victim", store, tmp_path / "u", 2, check=False)
        proc = self._run(script, "fresh", store, tmp_path / "o", 2,
                         check=False)
        assert proc.returncode != 0
        assert "resume" in proc.stderr


def pool_scan(store):
    from repro.experiments import pool

    return pool.SweepStore(store).scan()
