"""Bench-harness smoke tests plus the opt-in full regression check.

Everything in ``TestQuickBench`` runs in tier-1 (``--quick`` reps keep
it to a few seconds).  ``test_full_bench_no_regression`` is marked
``bench`` and therefore deselected by default (``addopts`` carries
``-m 'not bench'``); run it explicitly with ``pytest -m bench``.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA,
    run_suite,
    validate_bench_doc,
    write_bench_files,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPTS = REPO_ROOT / "scripts"
sys.path.insert(0, str(SCRIPTS))

from check_bench_regression import (  # noqa: E402
    Comparison,
    compare_docs,
    load_baseline_from_git,
    main as check_bench_main,
)


class TestQuickBench:
    def test_write_bench_files_schema_valid(self, tmp_path):
        """``python -m repro bench --quick`` must produce valid BENCH files."""
        paths = write_bench_files(out_dir=tmp_path, seed=0, quick=True)
        assert [p.name for p in paths] == ["BENCH_sim.json", "BENCH_nn.json"]
        for path in paths:
            doc = json.loads(path.read_text())
            assert validate_bench_doc(doc) == []
            assert doc["schema"] == BENCH_SCHEMA
            assert doc["quick"] is True
            assert doc["manifest"]["kind"] == "bench"

    def test_sim_suite_contents(self, tmp_path):
        (path,) = write_bench_files(out_dir=tmp_path, seed=0, quick=True,
                                    only="sim")
        doc = json.loads(path.read_text())
        names = [e["name"] for e in doc["benchmarks"]]
        assert names == [
            "engine-throughput",
            "engine-throughput-traced",
            "engine-throughput-live",
            "engine-throughput-faulted",
            "backfill-plan",
            "conservative-profile",
        ]
        for entry in doc["benchmarks"]:
            assert entry["events_per_s"] > 0
            assert entry["seed"] == 0

    def test_nn_suite_contents(self):
        doc = run_suite("nn", seed=0, quick=True)
        names = [e["name"] for e in doc["benchmarks"]]
        assert names == ["nn-forward", "nn-forward-batched",
                         "nn-train-step", "nn-train-step-batched"]
        assert all(e["steps_per_s"] > 0 for e in doc["benchmarks"])

    def test_nn_train_step_counts_sample_steps(self):
        """The train-step rate is per *sample*, the update rate per step."""
        doc = run_suite("nn", seed=0, quick=True)
        by_name = {e["name"]: e for e in doc["benchmarks"]}
        for name in ("nn-train-step", "nn-train-step-batched"):
            entry = by_name[name]
            assert entry["extra"]["rate_unit"] == "sample-steps"
            batch = entry["extra"]["batch"]
            updates = entry["extra"]["updates_per_s"]
            assert entry["steps_per_s"] == pytest.approx(updates * batch)
        assert by_name["nn-train-step"]["extra"]["batch"] == 8
        assert by_name["nn-train-step-batched"]["extra"]["batch"] == 64

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_suite("gpu")

    def test_cli_bench_quick(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bench", "--quick",
             "--only", "sim", "--out-dir", str(tmp_path)],
            capture_output=True, text=True, timeout=300,
            cwd=REPO_ROOT, env={"PYTHONPATH": str(REPO_ROOT / "src"),
                                "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        doc = json.loads((tmp_path / "BENCH_sim.json").read_text())
        assert validate_bench_doc(doc) == []


class TestCompareLogic:
    def _doc(self, rate, name="engine-throughput", key="events_per_s"):
        return {
            "schema": BENCH_SCHEMA,
            "kind": "sim",
            "quick": False,
            "benchmarks": [{
                "name": name, "reps": 3, "wall_s": 1.0, key: rate,
                "seed": 0, "git_sha": "x", "extra": {},
            }],
            "manifest": {"kind": "bench"},
        }

    def test_within_tolerance_passes(self):
        (comp,) = compare_docs(self._doc(100.0), self._doc(85.0))
        assert not comp.regressed(0.20)
        assert comp.ratio == pytest.approx(0.85)

    def test_beyond_tolerance_fails(self):
        (comp,) = compare_docs(self._doc(100.0), self._doc(79.0))
        assert comp.regressed(0.20)

    def test_speedup_never_fails(self):
        (comp,) = compare_docs(self._doc(100.0), self._doc(500.0))
        assert not comp.regressed(0.20)

    def test_unmatched_names_skipped(self):
        comparisons = compare_docs(
            self._doc(100.0), self._doc(100.0, name="other"))
        assert comparisons == []

    def test_invalid_doc_rejected(self):
        with pytest.raises(ValueError, match="invalid baseline"):
            compare_docs({"schema": "nope"}, self._doc(1.0))

    def test_comparison_ratio(self):
        comp = Comparison("x", "events_per_s", baseline=200.0, current=100.0)
        assert comp.ratio == 0.5 and comp.regressed(0.20)


class TestGithubAnnotations:
    def _write(self, tmp_path, name, rate, bench_name="engine-throughput"):
        path = tmp_path / name
        path.write_text(json.dumps({
            "schema": BENCH_SCHEMA,
            "kind": "sim",
            "quick": False,
            "benchmarks": [{
                "name": bench_name, "reps": 3, "wall_s": 1.0,
                "events_per_s": rate, "seed": 0, "git_sha": "x", "extra": {},
            }],
            "manifest": {"kind": "bench"},
        }))
        return path

    def _run(self, tmp_path, baseline_rate, current_rate, *extra,
             monkeypatch=None):
        baseline = self._write(tmp_path, "base.json", baseline_rate)
        current = self._write(tmp_path, "cur.json", current_rate)
        return check_bench_main([
            "--current", str(current), "--baseline", str(baseline), *extra])

    def test_regression_emits_error_annotation(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.delenv("GITHUB_ACTIONS", raising=False)
        rc = self._run(tmp_path, 100.0, 50.0, "--github")
        out = capsys.readouterr().out
        assert rc == 1
        assert "::error title=bench regression check::" in out
        assert "regressed" in out

    def test_near_threshold_emits_warning(self, tmp_path, capsys,
                                          monkeypatch):
        # 0.82x: inside the 20% tolerance but within the 5pp warning band
        monkeypatch.delenv("GITHUB_ACTIONS", raising=False)
        rc = self._run(tmp_path, 100.0, 82.0, "--github")
        out = capsys.readouterr().out
        assert rc == 0
        assert "::warning" in out and "::error" not in out

    def test_new_benchmark_warns(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("GITHUB_ACTIONS", "true")  # implies --github
        baseline = self._write(tmp_path, "base.json", 100.0)
        current = tmp_path / "cur.json"
        doc = json.loads(self._write(tmp_path, "tmp.json", 100.0).read_text())
        doc["benchmarks"].append(dict(doc["benchmarks"][0],
                                      name="brand-new"))
        current.write_text(json.dumps(doc))
        rc = check_bench_main([
            "--current", str(current), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "::warning" in out
        assert "brand-new: new benchmark with no baseline" in out

    def test_annotations_off_outside_actions(self, tmp_path, capsys,
                                             monkeypatch):
        monkeypatch.delenv("GITHUB_ACTIONS", raising=False)
        rc = self._run(tmp_path, 100.0, 50.0)
        out = capsys.readouterr().out
        assert rc == 1
        assert "::error" not in out and "REGRESSION" in out


@pytest.mark.bench
def test_full_bench_no_regression():
    """Full-rep benchmarks must stay within 20% of the committed baseline.

    Opt-in (``pytest -m bench``): takes minutes and is machine-dependent,
    so it never runs in tier-1.
    """
    for kind in ("sim", "nn"):
        baseline = load_baseline_from_git(f"BENCH_{kind}.json")
        current = run_suite(kind, seed=0, quick=False)
        comparisons = compare_docs(baseline, current)
        assert comparisons, f"no overlapping {kind} benchmarks"
        slow = [c for c in comparisons if c.regressed(0.20)]
        assert not slow, "regressions: " + ", ".join(
            f"{c.name} {c.ratio:.2f}x" for c in slow)
