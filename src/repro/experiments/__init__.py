"""Experiment harness — one module per table/figure of the paper.

Every module exposes ``run(scale=..., seed=...)`` returning a plain
result object and ``report(result)`` returning a printable string with
the same rows/series the paper reports.  DESIGN.md §3 maps each module
to the corresponding paper artifact; EXPERIMENTS.md records
paper-vs-measured values.

Scales (see :class:`repro.experiments.common.Scale`):

* ``"tiny"`` — seconds; used by the integration tests;
* ``"default"`` — minutes for the whole suite; used by benchmarks;
* ``"paper"`` — full-size systems and horizons.
"""

from repro.experiments.common import Scale, get_scale

__all__ = ["Scale", "get_scale"]
