"""DRAS configuration, including the exact Table III architectures.

The network dimensions follow §IV-D: the convolution layer has one
neuron per input row, the two hidden layers shrink toward the output,
and the output has ``W`` neurons (PG, one per window slot) or a single
neuron (DQL, the Q-value of one job).  ``NetworkDims.param_count``
reproduces the paper's trainable-parameter arithmetic:

    3 (conv) + rows*h1 + h1*h2 + h2*out + out

which matches Table III for Theta-PG (21,890,053), Theta-DQL
(21,449,004) and Cori-PG (161,960,053); the Cori-DQL cell of Table III
is internally inconsistent (DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class NetworkDims:
    """Dimensions of one five-layer DRAS network."""

    rows: int
    hidden1: int
    hidden2: int
    outputs: int

    def __post_init__(self) -> None:
        for name in ("rows", "hidden1", "hidden2", "outputs"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def param_count(self) -> int:
        """Trainable parameters (Table III bottom row)."""
        return (
            3
            + self.rows * self.hidden1
            + self.hidden1 * self.hidden2
            + self.hidden2 * self.outputs
            + self.outputs
        )


@dataclass(frozen=True)
class DRASConfig:
    """Everything needed to build and train a DRAS agent.

    Defaults follow the paper: window ``W = 50``, learning rate 0.001
    (Adam), parameter update every 10 scheduling instances, ε from 1.0
    decaying at 0.995, reward Eq. (1) with ``w1 = w2 = w3 = 1/3`` for
    capability systems.
    """

    num_nodes: int
    window: int = 50
    hidden1: int = 4000
    hidden2: int = 1000
    objective: str = "capability"
    reward_kwargs: dict = field(default_factory=dict)
    learning_rate: float = 0.001
    update_every: int = 10
    epsilon_start: float = 1.0
    epsilon_decay: float = 0.995
    epsilon_min: float = 0.02
    gamma: float = 1.0
    #: entropy-bonus coefficient for the PG agents; keeps the softmax
    #: from saturating into a deterministic policy mid-training.
    #: Without it the capability reward's wait term drives the policy
    #: into an exact FCFS clone (always pick the oldest window slot).
    entropy_coef: float = 0.05
    time_scale: float = 86400.0
    normalize_state: bool = True
    grad_clip: float | None = 10.0
    #: draw PG actions greedily instead of stochastically at eval time
    greedy_eval: bool = False
    #: ablation switch: when False, level-2 uses EASY's first-fit rule
    #: instead of the learned network (isolates the paper's claim that
    #: learned backfilling beats first-fit)
    learned_backfill: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.objective not in ("capability", "capacity"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if not 0 < self.learning_rate:
            raise ValueError("learning_rate must be positive")
        if self.update_every <= 0:
            raise ValueError("update_every must be positive")
        if not 0.0 <= self.epsilon_min <= self.epsilon_start <= 1.0:
            raise ValueError("need 0 <= epsilon_min <= epsilon_start <= 1")
        if not 0.0 < self.epsilon_decay <= 1.0:
            raise ValueError("epsilon_decay must be in (0, 1]")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")

    # -- network dimensions (Table III) ------------------------------------
    @property
    def pg_dims(self) -> NetworkDims:
        """PG network dimensions: ``rows = 2W + N``, ``outputs = W``."""
        return NetworkDims(
            rows=2 * self.window + self.num_nodes,
            hidden1=self.hidden1,
            hidden2=self.hidden2,
            outputs=self.window,
        )

    @property
    def dql_dims(self) -> NetworkDims:
        """DQL network dimensions: ``rows = 2 + N``, one Q output."""
        return NetworkDims(
            rows=2 + self.num_nodes,
            hidden1=self.hidden1,
            hidden2=self.hidden2,
            outputs=1,
        )

    # -- presets -------------------------------------------------------------
    @classmethod
    def theta(cls, **overrides) -> "DRASConfig":
        """Full-scale Theta configuration (§IV-D)."""
        cfg = cls(
            num_nodes=4360,
            window=50,
            hidden1=4000,
            hidden2=1000,
            objective="capability",
            time_scale=24 * 3600.0,
        )
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def cori(cls, **overrides) -> "DRASConfig":
        """Full-scale Cori configuration (§IV-D)."""
        cfg = cls(
            num_nodes=12076,
            window=50,
            hidden1=10000,
            hidden2=4000,
            objective="capacity",
            time_scale=7 * 24 * 3600.0,
        )
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def scaled(
        cls,
        num_nodes: int,
        objective: str = "capability",
        window: int = 20,
        time_scale: float = 24 * 3600.0,
        **overrides,
    ) -> "DRASConfig":
        """A proportionally shrunk configuration for fast experiments.

        Hidden sizes track the input size with the same ~0.9x / ~0.22x
        ratios the paper uses for Theta.
        """
        rows = 2 * window + num_nodes
        hidden1 = max(32, int(round(rows * 0.9)))
        hidden2 = max(16, int(round(rows * 0.22)))
        cfg = cls(
            num_nodes=num_nodes,
            window=window,
            hidden1=hidden1,
            hidden2=hidden2,
            objective=objective,
            time_scale=time_scale,
        )
        return replace(cfg, **overrides) if overrides else cfg


def table3_configs() -> dict[str, NetworkDims]:
    """The four Table III network configurations."""
    theta = DRASConfig.theta()
    cori = DRASConfig.cori()
    return {
        "theta-pg": theta.pg_dims,
        "theta-dql": theta.dql_dims,
        "cori-pg": cori.pg_dims,
        "cori-dql": cori.dql_dims,
    }
