"""HTML run report: SVG well-formedness, sections, self-containment."""

import re
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.obs.analyze import latency_histogram, summarize_trace
from repro.obs.report import (
    render_report,
    svg_hbar,
    svg_histogram,
    svg_line_chart,
    write_report,
)
from repro.schedulers.fcfs import FCFSEasy
from repro.sim.engine import run_simulation
from repro.workload.models import ThetaModel


def _svgs(html):
    return re.findall(r"<svg.*?</svg>", html, re.DOTALL)


def _assert_well_formed(svg):
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")
    text = ET.tostring(root, encoding="unicode")
    assert "NaN" not in text and "Infinity" not in text


class TestCharts:
    def test_line_chart_well_formed(self):
        points = [(float(i), float(i * i % 7)) for i in range(20)]
        svg = svg_line_chart([("reward", points)])
        _assert_well_formed(svg)
        assert "polyline" in svg or "path" in svg
        assert "<title>" in svg  # native tooltips

    def test_line_chart_two_series_and_step(self):
        a = [(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)]
        b = [(0.0, 0.5), (1.0, 0.8)]
        _assert_well_formed(svg_line_chart([("train", a), ("validation", b)]))
        _assert_well_formed(svg_line_chart([("queue", a)], step=True))

    def test_line_chart_skips_non_finite(self):
        points = [(0.0, 1.0), (1.0, float("nan")), (2.0, 3.0)]
        svg = svg_line_chart([("loss", points)])
        _assert_well_formed(svg)

    def test_line_chart_empty_returns_empty(self):
        assert svg_line_chart([]) == ""
        assert svg_line_chart([("x", [])]) == ""
        assert svg_line_chart([("x", [(0.0, float("nan"))])]) == ""

    def test_histogram_chart(self):
        hist = latency_histogram([0.001 * (i + 1) for i in range(50)])
        svg = svg_histogram(hist)
        _assert_well_formed(svg)
        assert svg_histogram(latency_histogram([])) == ""

    def test_hbar_chart_escapes_labels(self):
        svg = svg_hbar([("engine.run", 3.0), ("<evil> & co", 1.0)])
        _assert_well_formed(svg)
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg


class TestRenderReport:
    def test_empty_report(self):
        html = render_report(title="empty")
        assert "No artifacts" in html
        assert "<title>empty</title>" in html

    def test_title_escaped(self):
        html = render_report(title="<script>alert(1)</script>")
        assert "<script>alert" not in html

    def test_full_report_sections_and_self_containment(self, tmp_path):
        trace_path = tmp_path / "t.jsonl"
        jobs = ThetaModel.scaled(32).generate(60, np.random.default_rng(0))
        run_simulation(32, FCFSEasy(), jobs, trace=trace_path)
        telemetry = [
            {"episode": i, "phase": "sampled", "train_reward": -1.0 + 0.1 * i,
             "validation_reward": -1.2 + 0.1 * i, "loss": 2.0 / (i + 1),
             "grad_norm": 1.0, "entropy": 0.5, "utilization": 0.7,
             "queue_depth_max": 5, "anomalies": []}
            for i in range(6)
        ]
        html = render_report(
            title="run",
            manifest={"schema": "repro.run/v1", "kind": "train", "seed": 3,
                      "config": {"num_nodes": 32}},
            metrics={"utilization": 0.71, "mean_wait_s": 120.0},
            telemetry=telemetry,
            trace=summarize_trace(trace_path),
        )
        for heading in ("Training telemetry", "Trace analytics", "Manifest"):
            assert heading in html
        assert "Benchmarks" not in html  # absent artifact, absent section
        svgs = _svgs(html)
        assert len(svgs) >= 6
        for svg in svgs:
            _assert_well_formed(svg)
        # self-contained: no external fetches (the SVG xmlns identifier
        # is the only URL-shaped string allowed)
        stripped = html.replace('xmlns="http://www.w3.org/2000/svg"', "")
        for marker in ("http://", "https://", "src=", "@import", "url("):
            assert marker not in stripped
        # every chart card ships a table-view twin
        assert html.count("<details") >= len(svgs) - 1

    def test_anomaly_banner(self):
        telemetry = [
            {"episode": 0, "train_reward": 1.0, "loss": 1.0, "anomalies": []},
            {"episode": 1, "train_reward": float("nan"), "loss": float("nan"),
             "anomalies": ["nan_grad"]},
        ]
        html = render_report(telemetry=telemetry)
        assert "anomal" in html.lower()
        assert "nan_grad" in html

    def test_write_report_creates_parents(self, tmp_path):
        out = write_report(tmp_path / "deep" / "nested" / "r.html",
                           title="x")
        assert out.exists()
        assert out.read_text().startswith("<!doctype html>")

    def test_dark_mode_palette_present(self):
        html = render_report(title="x")
        assert "prefers-color-scheme: dark" in html
