"""Priority-rule schedulers: order-by-key with EASY backfilling.

A family of classic batch-scheduling heuristics sharing one loop: sort
the queue by a priority key, run from the head, reserve for the first
blocked job, first-fit backfill (in key order) behind the reservation.
FCFS is the ``arrival`` instance of this family; the others are common
comparators in the scheduling literature and useful extension points
for site policies.
"""

from __future__ import annotations

from typing import Callable

from repro.schedulers.base import BaseScheduler
from repro.sim.engine import SchedulingView
from repro.sim.job import Job

KeyFn = Callable[[Job, float], float]


class RuleScheduler(BaseScheduler):
    """EASY scheduling under an arbitrary job-priority key.

    ``key(job, now)`` returns a sort key — *smaller runs first*.  Ties
    break by arrival.
    """

    def __init__(self, key: KeyFn, name: str) -> None:
        self._key = key
        self.name = name

    def _ordered(self, view: SchedulingView) -> list[Job]:
        now = view.now
        return sorted(
            view.waiting(),
            key=lambda j: (self._key(j, now), j.submit_time, j.job_id),
        )

    def schedule(self, view: SchedulingView) -> None:
        while True:
            order = self._ordered(view)
            if not order:
                return
            head = order[0]
            if head.size <= view.free_nodes:
                view.start(head)
                continue
            view.reserve(head)
            break
        while True:
            candidates = view.backfill_candidates(pool=self._ordered(view))
            if not candidates:
                return
            view.start(candidates[0])


def sjf() -> RuleScheduler:
    """Shortest job first (by walltime estimate): minimizes mean wait."""
    return RuleScheduler(lambda j, now: j.walltime, "SJF")


def ljf() -> RuleScheduler:
    """Largest job first (by node count): capability-style priority."""
    return RuleScheduler(lambda j, now: -float(j.size), "LJF")


def smallest_area_first() -> RuleScheduler:
    """Smallest requested area (nodes x walltime) first."""
    return RuleScheduler(lambda j, now: j.size * j.walltime, "SAF")


def f1_wfp(exponent: float = 3.0) -> RuleScheduler:
    """WFP-style aging rule: ``-(wait / walltime)^e * size``.

    Jobs gain priority polynomially with their normalized wait, scaled
    by size — a starvation-aware compromise between FCFS and SJF (cf.
    the WFP3 rule from the batch-scheduling literature, also used as a
    candidate policy by RLScheduler).
    """

    def key(j: Job, now: float) -> float:
        wait = j.queued_time(now)
        return -((wait / max(j.walltime, 1.0)) ** exponent) * j.size

    return RuleScheduler(key, f"WFP{exponent:g}")


def unicef() -> RuleScheduler:
    """UNICEF-style rule: ``-wait / (log2(size) * walltime)``-ish.

    Favors small-short jobs but ages with wait (cf. the UNI rule from
    the batch-scheduling literature).
    """
    import math

    def key(j: Job, now: float) -> float:
        wait = j.queued_time(now)
        return -wait / (math.log2(j.size + 1.0) * max(j.walltime, 1.0))

    return RuleScheduler(key, "UNICEF")
