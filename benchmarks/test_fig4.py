"""Benchmark: regenerate Fig 4 (curriculum-ordering convergence)."""

import math

from conftest import SCALE, save_report

from repro.experiments import fig4


def test_fig4(benchmark, report_dir):
    results = benchmark.pedantic(lambda: fig4.run(SCALE), rounds=1, iterations=1)
    text = fig4.report(results)
    save_report(report_dir, "fig4", text)

    assert len(results) == 3
    curves = fig4.history_curves(results)
    for curve in curves.values():
        assert all(math.isfinite(v) for v in curve)
    # every ordering trains the same number of episodes
    lengths = {len(c) for c in curves.values()}
    assert len(lengths) == 1
    # the recommended ordering reaches a reward at least comparable to
    # the alternatives (within 10%): training order must not hurt
    rec = next(r for r in results if r.order == ("sampled", "real", "synthetic"))
    best_other = max(
        r.final_reward for r in results if r.order != rec.order
    )
    assert rec.final_reward >= 0.9 * best_other
