#!/usr/bin/env python
"""Calibrating the synthetic generator to a real trace.

The paper builds 82 synthetic training jobsets "that mimic Theta
workload patterns in terms of hourly and daily job arrivals, and
distributions of job sizes and runtimes" (Fig 3).  `fit_model` does the
same estimation for *any* trace: it extracts the arrival seasonality,
size mix, runtime lognormal and walltime over-estimation factor, and
returns a generator statistically matched to the input.

The demo fits a model to a reference trace, regenerates a synthetic
trace from the fit, and compares the key statistics side by side —
then uses the fitted model to build the three-phase curriculum and
train a DRAS agent, exactly the workflow a site would use on its own
SWF logs.

Run::

    python examples/fit_workload_model.py
"""

import numpy as np

from repro import DRASConfig, DRASPG, ThetaModel
from repro.rl import Trainer
from repro.workload import analyze_trace, fit_model, three_phase_curriculum

NODES = 128


def main() -> None:
    rng = np.random.default_rng(6)

    # Stand-in for a site's production log.
    reference_model = ThetaModel.scaled(NODES)
    log = reference_model.generate(3000, rng)

    # Fit and resample.
    fitted = fit_model(log, NODES, name="site-fit")
    synthetic = fitted.generate(3000, np.random.default_rng(42))

    a = analyze_trace(log, NODES)
    b = analyze_trace(synthetic, NODES)
    print(f"{'statistic':24s} {'reference':>12s} {'fitted model':>12s}")
    print("-" * 50)
    rows = [
        ("arrival rate (jobs/h)", a.arrival_rate * 3600, b.arrival_rate * 3600),
        ("runtime median (h)", a.runtime_median / 3600, b.runtime_median / 3600),
        ("runtime log-sigma", a.runtime_log_sigma, b.runtime_log_sigma),
        ("mean overestimate", a.mean_overestimate, b.mean_overestimate),
        ("offered load", a.offered_load_per_node, b.offered_load_per_node),
        ("size categories", len(a.size_mix), len(b.size_mix)),
    ]
    for label, x, y in rows:
        print(f"{label:24s} {x:12.2f} {y:12.2f}")

    # The fitted model plugs straight into the training pipeline.
    agent = DRASPG(DRASConfig.scaled(NODES, objective="capability", window=10))
    phases = three_phase_curriculum(
        fitted, log, rng, n_sampled=2, n_real=2, n_synthetic=3,
        jobs_per_set=250,
    )
    history = Trainer(agent, NODES, validation_jobs=synthetic[:300]).train(
        [(p.name, js) for p in phases for js in p.jobsets]
    )
    curve = history.validation_curve
    print(f"\ntrained {len(history.episodes)} episodes on the fitted "
          f"curriculum; validation reward {curve[0]:.1f} -> {curve[-1]:.1f}")


if __name__ == "__main__":
    main()
