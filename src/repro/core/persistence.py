"""Full agent checkpointing.

:func:`repro.nn.save_network` persists weights only; resuming
*training* (or redeploying an online-learning agent, §V-D) also needs
the optimizer moments, the PG baseline statistics and the DQL
exploration rate.  These helpers serialize the complete agent state to
a single ``.npz`` with a JSON metadata record, and rebuild the agent
from scratch on load.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.core.config import DRASConfig
from repro.core.decima import DecimaPG
from repro.core.dras_dql import DRASDQL
from repro.core.dras_pg import DRASPG

FORMAT_VERSION = 1

_KINDS = {"pg": DRASPG, "dql": DRASDQL, "decima": DecimaPG}


def _kind_of(agent) -> str:
    for kind, cls in _KINDS.items():
        if type(agent) is cls:
            return kind
    raise TypeError(f"unsupported agent type {type(agent).__name__}")


def save_agent(agent, path: str | Path) -> None:
    """Write the complete trainable state of a DRAS/Decima agent."""
    kind = _kind_of(agent)
    config = dataclasses.asdict(agent.config)
    meta = {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "name": agent.name,
        "config": config,
    }
    arrays: dict[str, np.ndarray] = {
        f"net.{k}": v for k, v in agent.network.state_dict().items()
    }
    opt = agent.optimizer
    for i, (m, v) in enumerate(zip(opt._m, opt._v)):
        arrays[f"adam.m.{i}"] = m
        arrays[f"adam.v.{i}"] = v
    arrays["adam.t"] = np.array([opt._t], dtype=np.int64)
    if kind in ("pg", "decima"):
        arrays["baseline.sums"] = agent.core.baseline._sums
        arrays["baseline.counts"] = agent.core.baseline._counts
    if kind == "dql":
        arrays["epsilon"] = np.array([agent.epsilon])
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, __meta__=np.array(json.dumps(meta)), **arrays)


def load_agent(path: str | Path):
    """Rebuild an agent (including optimizer/exploration state)."""
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["__meta__"]))
        if meta.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {meta.get('format_version')}"
            )
        kind = meta["kind"]
        try:
            cls = _KINDS[kind]
        except KeyError:
            raise ValueError(f"unknown agent kind {kind!r}") from None
        config = DRASConfig(**meta["config"])
        agent = cls(config)
        agent.network.load_state_dict(
            {k[len("net."):]: data[k] for k in data.files if k.startswith("net.")}
        )
        opt = agent.optimizer
        n_params = len(opt.params)
        for i in range(n_params):
            opt._m[i] = data[f"adam.m.{i}"].copy()
            opt._v[i] = data[f"adam.v.{i}"].copy()
        opt._t = int(data["adam.t"][0])
        if kind in ("pg", "decima"):
            agent.core.baseline._sums = data["baseline.sums"].copy()
            agent.core.baseline._counts = data["baseline.counts"].copy()
        if kind == "dql":
            agent.epsilon = float(data["epsilon"][0])
    return agent
