"""Benchmark: regenerate Fig 3 (training-set job patterns)."""

from conftest import SCALE, save_report

from repro.experiments import fig3


def test_fig3(benchmark, report_dir):
    patterns = benchmark.pedantic(lambda: fig3.run(SCALE), rounds=1, iterations=1)
    text = fig3.report(patterns)
    save_report(report_dir, "fig3", text)

    assert len(patterns.hourly_arrivals) == 24
    assert len(patterns.daily_arrivals) == 7
    # diurnal shape: work hours busier than deep night
    assert sum(patterns.hourly_arrivals[12:18]) > sum(patterns.hourly_arrivals[0:6])
    # weekly shape: weekdays busier than the weekend
    weekdays = sum(patterns.daily_arrivals[:5]) / 5
    weekend = sum(patterns.daily_arrivals[5:]) / 2
    assert weekdays > weekend
    # runtime distribution is capped at Theta's 1-day limit
    assert patterns.runtime_quantiles_h["p95"] <= 24.0
