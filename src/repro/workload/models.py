"""Statistical workload models for Theta and Cori (Table II, Fig 2).

The paper evaluates on two production systems with opposite profiles:

* **Theta** (ALCF) — *capability* computing.  4,392 KNL nodes of which
  4,360 serve user jobs; the smallest allowed job is 128 nodes; maximum
  job length is 1 day; 121,837 jobs over 24 months (~170/day); ~2.25%
  of jobs have dependencies.  Core hours are dominated by large jobs.
* **Cori** (NERSC) — *capacity* computing.  12,076 nodes; a majority of
  jobs use one or a few nodes; maximum job length is 7 days; 2,607,054
  jobs over ~4 months (~21k/day).

The real logs are not redistributable, so :class:`WorkloadModel`
generates statistically similar traces; every experiment consumes
traces through the same ``list[Job]`` interface, so a real SWF log can
be substituted via :func:`repro.workload.swf.read_swf`.

``scaled()`` constructors shrink the node count and arrival rate
together so the *offered load* (requested node-seconds per available
node-second) is preserved — that is what determines queueing behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.sim.job import Job
from repro.workload.generator import (
    DEFAULT_DAILY_PROFILE,
    DEFAULT_HOURLY_PROFILE,
    CategoricalSizes,
    DiurnalArrivals,
    LognormalRuntimes,
)
from repro.workload.units import SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class WorkloadModel:
    """A complete statistical model of one system's workload."""

    name: str
    num_nodes: int
    arrivals: DiurnalArrivals
    sizes: CategoricalSizes
    runtimes: LognormalRuntimes
    #: jobs at least this many nodes get ``priority=1`` (capability jobs)
    priority_threshold: int
    #: probability that a job depends on a recent earlier job
    dependency_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if max(self.sizes.sizes) > self.num_nodes:
            raise ValueError(
                f"size mix contains {max(self.sizes.sizes)}-node jobs but the "
                f"system has only {self.num_nodes} nodes"
            )
        if not 0.0 <= self.dependency_prob <= 1.0:
            raise ValueError("dependency_prob must be in [0, 1]")

    # -- generation --------------------------------------------------------
    def generate(
        self,
        n_jobs: int,
        rng: np.random.Generator,
        start: float = 0.0,
        load_factor: float = 1.0,
    ) -> list[Job]:
        """Generate ``n_jobs`` jobs.

        ``load_factor`` scales the arrival rate (``>1`` produces demand
        surges, used by the Fig 9 adaptation experiment).
        """
        if n_jobs <= 0:
            raise ValueError("n_jobs must be positive")
        if load_factor <= 0:
            raise ValueError("load_factor must be positive")
        arrivals = replace(
            self.arrivals, base_rate=self.arrivals.base_rate * load_factor
        )
        times = arrivals.sample(n_jobs, rng, start=start)
        sizes = self.sizes.sample(n_jobs, rng)
        runtimes, walltimes = self.runtimes.sample(n_jobs, rng)

        jobs: list[Job] = []
        for i in range(n_jobs):
            deps: tuple[int, ...] = ()
            if (
                self.dependency_prob > 0
                and jobs
                and rng.random() < self.dependency_prob
            ):
                parent = jobs[-1 - int(rng.integers(min(10, len(jobs))))]
                deps = (parent.job_id,)
            jobs.append(
                Job(
                    size=int(sizes[i]),
                    walltime=float(walltimes[i]),
                    runtime=float(runtimes[i]),
                    submit_time=float(times[i]),
                    priority=1 if sizes[i] >= self.priority_threshold else 0,
                    dependencies=deps,
                )
            )
        return jobs

    def generate_span(
        self,
        duration: float,
        rng: np.random.Generator,
        start: float = 0.0,
        load_factor: float = 1.0,
    ) -> list[Job]:
        """Generate jobs covering ``duration`` seconds of arrivals."""
        expected = max(1, int(self.arrivals.base_rate * load_factor * duration))
        jobs = self.generate(
            int(expected * 1.3) + 8, rng, start=start, load_factor=load_factor
        )
        return [j for j in jobs if j.submit_time < start + duration]

    # -- characterization helpers (Table II / Fig 2) --------------------------
    def offered_load(self) -> float:
        """Expected requested node-seconds per available node-second."""
        mean_size = self.sizes.mean()
        # mean of the clipped lognormal, estimated numerically
        rng = np.random.default_rng(0)
        runtimes, _ = self.runtimes.sample(20_000, rng)
        mean_runtime = float(np.mean(runtimes))
        return self.arrivals.base_rate * mean_size * mean_runtime / self.num_nodes


def _theta_size_mix(num_nodes: int) -> dict[int, float]:
    """Capability size mix following Fig 2 (Theta).

    Job counts concentrate at the minimum size (128 nodes) while core
    hours concentrate in the large categories.  Sizes are expressed as
    fractions of the system and snapped to powers of two.
    """
    fractions = {
        128 / 4360: 0.47,
        256 / 4360: 0.20,
        512 / 4360: 0.15,
        1024 / 4360: 0.10,
        2048 / 4360: 0.06,
        4096 / 4360: 0.02,
    }
    mix: dict[int, float] = {}
    for frac, prob in fractions.items():
        size = max(1, min(num_nodes, int(round(frac * num_nodes))))
        mix[size] = mix.get(size, 0.0) + prob
    return mix


def _cori_size_mix(num_nodes: int) -> dict[int, float]:
    """Capacity size mix following Fig 2 (Cori): 1-node jobs dominate."""
    fractions = {
        1 / 12076: 0.58,
        2 / 12076: 0.12,
        4 / 12076: 0.08,
        8 / 12076: 0.06,
        16 / 12076: 0.05,
        32 / 12076: 0.04,
        64 / 12076: 0.03,
        128 / 12076: 0.02,
        512 / 12076: 0.013,
        2048 / 12076: 0.006,
        6000 / 12076: 0.001,
    }
    mix: dict[int, float] = {}
    for frac, prob in fractions.items():
        size = max(1, min(num_nodes, int(round(frac * num_nodes))))
        mix[size] = mix.get(size, 0.0) + prob
    return mix


class ThetaModel:
    """Factory for Theta-like capability workloads."""

    PAPER_NODES = 4360
    MAX_RUNTIME = SECONDS_PER_DAY  # max job length: 1 day

    @classmethod
    def paper(cls, utilization: float = 1.10) -> WorkloadModel:
        """Full-scale Theta (4,360 user nodes)."""
        return cls.scaled(cls.PAPER_NODES, utilization=utilization)

    @classmethod
    def scaled(cls, num_nodes: int, utilization: float = 1.10) -> WorkloadModel:
        """A Theta-like system shrunk to ``num_nodes``.

        ``utilization`` sets the offered load; the arrival rate is
        derived so that ``rate * E[size] * E[runtime] = utilization * N``.
        """
        sizes = CategoricalSizes.from_dict(_theta_size_mix(num_nodes))
        runtimes = LognormalRuntimes(
            median=SECONDS_PER_HOUR,  # 1 h median runtime
            sigma=1.1,
            max_runtime=cls.MAX_RUNTIME,
            min_runtime=300.0,
            mean_overestimate=1.0,
        )
        rng = np.random.default_rng(1234)
        mean_runtime = float(np.mean(runtimes.sample(20_000, rng)[0]))
        rate = utilization * num_nodes / (sizes.mean() * mean_runtime)
        arrivals = DiurnalArrivals(
            base_rate=rate,
            hourly=DEFAULT_HOURLY_PROFILE,
            daily=DEFAULT_DAILY_PROFILE,
        )
        return WorkloadModel(
            name=f"theta-{num_nodes}",
            num_nodes=num_nodes,
            arrivals=arrivals,
            sizes=sizes,
            runtimes=runtimes,
            priority_threshold=max(1, num_nodes // 8),  # capability jobs
            dependency_prob=0.0225,                     # 2.25% on Theta
        )


class CoriModel:
    """Factory for Cori-like capacity workloads."""

    PAPER_NODES = 12076
    MAX_RUNTIME = 7 * SECONDS_PER_DAY  # max job length: 7 days

    @classmethod
    def paper(cls, utilization: float = 1.10) -> WorkloadModel:
        """Full-scale Cori (12,076 nodes)."""
        return cls.scaled(cls.PAPER_NODES, utilization=utilization)

    @classmethod
    def scaled(cls, num_nodes: int, utilization: float = 1.10) -> WorkloadModel:
        """A Cori-like system shrunk to ``num_nodes`` (see ThetaModel.scaled)."""
        sizes = CategoricalSizes.from_dict(_cori_size_mix(num_nodes))
        runtimes = LognormalRuntimes(
            median=2400.0,            # 40 min median runtime
            sigma=1.6,
            max_runtime=cls.MAX_RUNTIME,
            min_runtime=60.0,
            mean_overestimate=1.5,
        )
        rng = np.random.default_rng(1234)
        mean_runtime = float(np.mean(runtimes.sample(20_000, rng)[0]))
        rate = utilization * num_nodes / (sizes.mean() * mean_runtime)
        arrivals = DiurnalArrivals(
            base_rate=rate,
            hourly=DEFAULT_HOURLY_PROFILE,
            daily=DEFAULT_DAILY_PROFILE,
        )
        return WorkloadModel(
            name=f"cori-{num_nodes}",
            num_nodes=num_nodes,
            arrivals=arrivals,
            sizes=sizes,
            runtimes=runtimes,
            priority_threshold=max(1, num_nodes // 4),
            dependency_prob=0.0,
        )
