"""Tests for the profile-guided hotness model (``repro.check.hotness``).

Covers baseline I/O and discovery, static call-graph resolution
(``self.m()`` dispatch, import-qualified calls, bounded name matching
with the common-method blocklist), anchor-and-decay score propagation
on scratch trees — which must be packages literally named ``repro``,
because :data:`SCOPE_ANCHORS` hard-codes the reproduction's qualnames —
and a golden stability test of the ranking over the real tree against
the committed ``profile_baseline.json``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.check.hotness import (
    BASELINE_ENV,
    DECAY,
    HOT_THRESHOLD,
    MIN_ANCHOR_CALLS,
    PROFILE_BASELINE_SCHEMA,
    SCOPE_ANCHORS,
    build_call_graph,
    compute_hotness,
    find_profile_baseline,
    format_ranking,
    hotness_for_project,
    index_functions,
    load_declared_anchor_scopes,
    load_profile_baseline,
)
from repro.check.project import ProjectModel

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    return root


def baseline_doc(**calls: int) -> dict:
    return {
        "schema": PROFILE_BASELINE_SCHEMA,
        "scopes": [{"name": name, "calls": count, "total_s": 0.0}
                   for name, count in calls.items()],
    }


#: a minimal tree replicating the anchor qualnames hard-coded in
#: SCOPE_ANCHORS — the package must literally be named ``repro``
ANCHOR_TREE = {
    "repro/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/sim/engine.py": """
        from repro.sim.helpers import step_once

        class Engine:
            def run(self, jobs):
                for job in jobs:
                    step_once(job)

            def idle_report(self):
                return 0
    """,
    "repro/sim/helpers.py": """
        def step_once(job):
            return tally(job)

        def tally(job):
            return settle(job)

        def settle(job):
            return deep(job)

        def deep(job):
            return job + 1

        def never_called():
            return -1
    """,
}


@pytest.fixture()
def no_baseline_env(monkeypatch):
    monkeypatch.delenv(BASELINE_ENV, raising=False)


class TestBaselineIO:
    def test_load_valid_baseline(self, tmp_path):
        path = tmp_path / "profile_baseline.json"
        path.write_text(json.dumps(baseline_doc(**{"engine.run": 4000,
                                                   "nn.forward": 30})))
        assert load_profile_baseline(path) == {"engine.run": 4000,
                                               "nn.forward": 30}

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"schema": "something/else", "scopes": []}))
        with pytest.raises(ValueError, match="expected schema"):
            load_profile_baseline(path)

    def test_load_rejects_non_list_scopes(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"schema": PROFILE_BASELINE_SCHEMA,
                                    "scopes": {"engine.run": 1}}))
        with pytest.raises(ValueError, match="must be a list"):
            load_profile_baseline(path)

    def test_load_rejects_malformed_entry(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"schema": PROFILE_BASELINE_SCHEMA,
                                    "scopes": [{"name": "engine.run"}]}))
        with pytest.raises(ValueError, match="malformed scope entry"):
            load_profile_baseline(path)


class TestBaselineDiscovery:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        override = tmp_path / "elsewhere" / "b.json"
        override.parent.mkdir()
        override.write_text("{}")
        monkeypatch.setenv(BASELINE_ENV, str(override))
        assert find_profile_baseline(tmp_path) == override

    @pytest.mark.parametrize("value", ["", "off", "0", "none", " OFF "])
    def test_env_disable_values(self, tmp_path, monkeypatch, value):
        (tmp_path / "profile_baseline.json").write_text("{}")
        monkeypatch.setenv(BASELINE_ENV, value)
        assert find_profile_baseline(tmp_path) is None

    def test_env_pointing_at_missing_file_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BASELINE_ENV, str(tmp_path / "missing.json"))
        assert find_profile_baseline(tmp_path) is None

    def test_found_in_root(self, tmp_path, no_baseline_env):
        target = tmp_path / "profile_baseline.json"
        target.write_text("{}")
        assert find_profile_baseline(tmp_path) == target

    def test_upward_walk_reaches_repo_root(self, tmp_path, no_baseline_env):
        # mirrors the real src/<package> layout: baseline two levels up
        target = tmp_path / "profile_baseline.json"
        target.write_text("{}")
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        assert find_profile_baseline(pkg) == target

    def test_nothing_found(self, tmp_path, no_baseline_env):
        assert find_profile_baseline(tmp_path / "empty") is None
        assert find_profile_baseline(None) is None


class TestCallGraph:
    def test_self_dispatch_includes_subclass_overrides(self, tmp_path):
        root = write_tree(tmp_path / "pkg", {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Base:
                    def run(self):
                        return self.helper()

                    def helper(self):
                        return 1

                class Child(Base):
                    def helper(self):
                        return 2
            """,
        })
        project = ProjectModel.load(root / "pkg", package="pkg")
        index = index_functions(project)
        graph = build_call_graph(project, index)
        assert set(graph.edges["pkg.mod.Base.run"]) == {
            "pkg.mod.Base.helper", "pkg.mod.Child.helper"}

    def test_imported_name_call_and_instantiation(self, tmp_path):
        root = write_tree(tmp_path / "pkg", {
            "pkg/__init__.py": "",
            "pkg/lib.py": """
                class Widget:
                    def __init__(self):
                        self.x = 1

                def make():
                    return 0
            """,
            "pkg/app.py": """
                from pkg.lib import Widget, make

                def build():
                    make()
                    return Widget()
            """,
        })
        project = ProjectModel.load(root / "pkg", package="pkg")
        index = index_functions(project)
        graph = build_call_graph(project, index)
        assert "pkg.lib.make" in graph.edges["pkg.app.build"]
        assert "pkg.lib.Widget.__init__" in graph.edges["pkg.app.build"]
        assert graph.instantiated["pkg.app.build"] == ("pkg.lib.Widget",)

    def test_common_method_names_never_name_match(self, tmp_path):
        root = write_tree(tmp_path / "pkg", {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Store:
                    def append(self, item):
                        return item

                    def recompute(self):
                        return 0

                def caller(q):
                    q.append(1)
                    return q.recompute()
            """,
        })
        project = ProjectModel.load(root / "pkg", package="pkg")
        index = index_functions(project)
        graph = build_call_graph(project, index)
        edges = set(graph.edges["pkg.mod.caller"])
        # append is on the ubiquitous-name blocklist; recompute is a
        # unique project method, so bounded name matching resolves it
        assert "pkg.mod.Store.append" not in edges
        assert "pkg.mod.Store.recompute" in edges


class TestComputeHotness:
    def load_anchor_project(self, tmp_path):
        root = write_tree(tmp_path, dict(ANCHOR_TREE))
        return ProjectModel.load(root / "repro", package="repro")

    def test_anchor_and_decay_chain(self, tmp_path):
        project = self.load_anchor_project(tmp_path)
        hot = compute_hotness(project, {"engine.run": 4000})
        assert hot.score("repro.sim.engine.Engine.run") == 1.0
        assert hot.anchor_calls["repro.sim.engine.Engine.run"] == 4000
        assert hot.score("repro.sim.helpers.step_once") == pytest.approx(DECAY)
        assert hot.score("repro.sim.helpers.tally") == pytest.approx(DECAY ** 2)
        # three hops: 0.125 — still above HOT_THRESHOLD
        assert hot.is_hot("repro.sim.helpers.settle")
        # four hops: 0.0625 — warm, not hot
        assert hot.score("repro.sim.helpers.deep") == pytest.approx(DECAY ** 4)
        assert hot.tier("repro.sim.helpers.deep") == "warm"
        assert hot.tier("repro.sim.helpers.never_called") == "cold"
        assert hot.tier("repro.sim.engine.Engine.idle_report") == "cold"
        hot_quals = {fi.qualname for fi in hot.hot_functions()}
        assert "repro.sim.engine.Engine.run" in hot_quals
        assert "repro.sim.helpers.deep" not in hot_quals

    def test_low_call_count_scope_does_not_anchor(self, tmp_path):
        project = self.load_anchor_project(tmp_path)
        hot = compute_hotness(project,
                              {"engine.run": MIN_ANCHOR_CALLS - 1})
        assert hot.scores == {}
        assert hot.hot_functions() == []

    def test_schedule_sentinel_anchors_every_scheduler(self, tmp_path):
        root = write_tree(tmp_path / "tree", {
            "repro/__init__.py": "",
            "repro/schedulers/__init__.py": "",
            "repro/schedulers/base.py": """
                class BaseScheduler:
                    def schedule(self, view):
                        raise NotImplementedError
            """,
            "repro/schedulers/fcfs.py": """
                from repro.schedulers.base import BaseScheduler

                class FCFSEasy(BaseScheduler):
                    def schedule(self, view):
                        return None
            """,
        })
        project = ProjectModel.load(root / "repro", package="repro")
        hot = compute_hotness(project, {"engine.schedule": 4000})
        assert hot.score("repro.schedulers.base.BaseScheduler.schedule") == 1.0
        assert hot.score("repro.schedulers.fcfs.FCFSEasy.schedule") == 1.0


class TestHotnessForProject:
    def test_caches_computed_model(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, dict(ANCHOR_TREE))
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps(baseline_doc(**{"engine.run": 4000})))
        monkeypatch.setenv(BASELINE_ENV, str(baseline))
        project = ProjectModel.load(root / "repro", package="repro")
        first = hotness_for_project(project)
        assert first is not None
        assert first.baseline_path == baseline.as_posix()
        assert hotness_for_project(project) is first

    def test_returns_none_without_baseline(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, dict(ANCHOR_TREE))
        monkeypatch.setenv(BASELINE_ENV, "off")
        project = ProjectModel.load(root / "repro", package="repro")
        assert hotness_for_project(project) is None
        # the None result is cached too
        assert hotness_for_project(project) is None

    def test_corrupt_baseline_degrades_to_none(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, dict(ANCHOR_TREE))
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({"schema": "wrong", "scopes": []}))
        monkeypatch.setenv(BASELINE_ENV, str(baseline))
        project = ProjectModel.load(root / "repro", package="repro")
        assert hotness_for_project(project) is None


class TestGoldenRanking:
    """Stability of the ranking over the real tree + committed baseline."""

    @pytest.fixture()
    def real_hotness(self, no_baseline_env):
        project = ProjectModel.load(SRC, package="repro")
        hot = hotness_for_project(project)
        assert hot is not None, "committed profile_baseline.json not found"
        return hot

    def test_committed_baseline_discovered_from_src_layout(self, real_hotness):
        assert real_hotness.baseline_path == \
            (REPO / "profile_baseline.json").as_posix()

    def test_known_anchors_are_hot(self, real_hotness):
        # engine.instance (4000 calls) anchors the engine entry points;
        # engine.schedule anchors every scheduler's schedule method
        assert real_hotness.score("repro.sim.engine.Engine.run") == 1.0
        assert real_hotness.anchor_calls["repro.sim.engine.Engine.run"] == 4000
        assert real_hotness.score(
            "repro.schedulers.fcfs.FCFSEasy.schedule") == 1.0
        assert real_hotness.is_hot("repro.nn.optim.Adam.step")

    def test_known_cold_paths_stay_cold(self, real_hotness):
        # the CLI entry point and the report renderer never sit on the
        # per-event path
        assert real_hotness.tier("repro.cli.main") == "cold"

    def test_ranking_is_deterministic(self, no_baseline_env):
        rankings = []
        for _ in range(2):
            project = ProjectModel.load(SRC, package="repro")
            hot = hotness_for_project(project)
            rankings.append(hot.ranking())
        assert rankings[0] == rankings[1]
        # hottest-first, stable tie-break by qualname
        scores = [row[1] for row in rankings[0]]
        assert scores == sorted(scores, reverse=True)

    def test_format_ranking_table(self, real_hotness):
        text = format_ranking(real_hotness, limit=5)
        lines = text.splitlines()
        assert lines[0].split() == ["score", "tier", "anchor", "calls",
                                    "function"]
        assert len(lines) == 6
        assert "1.000" in lines[1]


class TestStaleness:
    """The anchor-scope provenance stamp and staleness detection."""

    def test_load_declared_scopes_roundtrip(self, tmp_path):
        path = tmp_path / "b.json"
        doc = baseline_doc(**{"engine.run": 4000})
        doc["anchor_scopes"] = ["engine.run", "nn.forward"]
        path.write_text(json.dumps(doc))
        assert load_declared_anchor_scopes(path) == (
            "engine.run", "nn.forward")

    def test_load_declared_scopes_absent_or_corrupt_is_none(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(baseline_doc(**{"engine.run": 4000})))
        assert load_declared_anchor_scopes(path) is None
        path.write_text("{broken")
        assert load_declared_anchor_scopes(path) is None
        assert load_declared_anchor_scopes(tmp_path / "missing.json") is None

    def test_pre_stamp_baseline_is_silent(self, tmp_path):
        root = write_tree(tmp_path, dict(ANCHOR_TREE))
        project = ProjectModel.load(root / "repro", package="repro")
        hot = compute_hotness(project, {"engine.run": 4000},
                              declared_scopes=None)
        assert hot.stale_anchors() == []

    def test_matching_scope_set_is_fresh(self, tmp_path):
        root = write_tree(tmp_path, dict(ANCHOR_TREE))
        project = ProjectModel.load(root / "repro", package="repro")
        hot = compute_hotness(project, {"engine.run": 4000},
                              declared_scopes=tuple(sorted(SCOPE_ANCHORS)))
        assert hot.stale_anchors() == []

    def test_scope_set_drift_names_both_directions(self, tmp_path):
        root = write_tree(tmp_path, dict(ANCHOR_TREE))
        project = ProjectModel.load(root / "repro", package="repro")
        hot = compute_hotness(
            project, {"engine.run": 4000}, baseline_path="b.json",
            declared_scopes=("engine.run", "engine.olden"))
        [message] = hot.stale_anchors()
        assert "different anchor-scope set" in message
        assert "obsolete scopes engine.olden" in message
        assert "missing scopes" in message
        assert "engine.instance" in message
        assert "repro bench --emit-profile" in message

    def test_unresolved_anchor_scope_is_reported(self, tmp_path):
        # ANCHOR_TREE has no Network.forward, so a measured nn.forward
        # scope gates nothing — exactly the drift RPR507 surfaces
        root = write_tree(tmp_path, dict(ANCHOR_TREE))
        project = ProjectModel.load(root / "repro", package="repro")
        hot = compute_hotness(
            project, {"engine.run": 4000, "nn.forward": 4000},
            declared_scopes=tuple(sorted(SCOPE_ANCHORS)))
        assert hot.unresolved_scopes == ("nn.forward",)
        [message] = hot.stale_anchors()
        assert "'nn.forward'" in message
        assert "resolves to no function" in message

    def test_low_call_scopes_never_count_as_unresolved(self, tmp_path):
        root = write_tree(tmp_path, dict(ANCHOR_TREE))
        project = ProjectModel.load(root / "repro", package="repro")
        hot = compute_hotness(
            project,
            {"engine.run": 4000, "nn.forward": MIN_ANCHOR_CALLS - 1})
        assert hot.unresolved_scopes == ()
