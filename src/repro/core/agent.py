"""The hierarchical two-level decision loop shared by both DRAS agents.

One scheduling instance proceeds exactly as §III-B describes:

1. **Level 1** — the agent repeatedly selects one job from the window
   at the front of the wait queue.  If the job fits the available
   nodes it starts immediately (*ready job*); the first selected job
   that does not fit becomes the *reserved job* — nodes are reserved
   for it at the earliest expected availability — and the agent drops
   to level 2.
2. **Level 2** — the window is refilled with *backfill candidates*
   (jobs that fit the holes before the reservation without delaying
   it); the agent selects one at a time (*backfilled jobs*) until no
   candidate remains.

Both levels share the same network (trained jointly); after every
action the agent receives the reward of the scheduling objective, and
every ``update_every`` scheduling instances it updates the network
parameters from the collected observations and clears its memory
(§III-C).  Online operation keeps learning enabled, which is how DRAS
adapts to workload change without human intervention (§V-D).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DRASConfig
from repro.core.rewards import RewardFunction, make_reward
from repro.core.state import StateEncoder
from repro.schedulers.base import BaseScheduler
from repro.sim.engine import SchedulingView
from repro.sim.job import Job


class HierarchicalAgent(BaseScheduler):
    """Base class implementing the two-level loop and training cadence.

    Subclasses implement :meth:`select` (choose one job from a window
    and remember what the update needs) and :meth:`update` (one
    parameter update from the collected observations).
    """

    name = "DRAS"

    def __init__(self, config: DRASConfig, reward: RewardFunction | None = None) -> None:
        self.config = config
        self.reward_fn: RewardFunction = (
            reward
            if reward is not None
            else make_reward(config.objective, **config.reward_kwargs)
        )
        self.encoder = StateEncoder(
            num_nodes=config.num_nodes,
            window=config.window,
            time_scale=config.time_scale,
            normalize=config.normalize_state,
        )
        self.rng = np.random.default_rng(config.seed)
        #: learning on/off.  Training and online adaptation keep it on;
        #: a frozen evaluation turns it off.
        self.learning = True
        self._instances_since_update = 0
        self.updates_done = 0
        #: rewards collected per scheduling instance (for learning curves)
        self.instance_rewards: list[float] = []

    # -- subclass interface -----------------------------------------------------
    def select(self, window: list[Job], view: SchedulingView, level: int) -> Job:
        """Choose one job from ``window`` and stash the transition."""
        raise NotImplementedError

    def update(self) -> None:
        """One parameter update from collected observations."""
        raise NotImplementedError

    def record_reward(self, reward: float) -> None:
        """Attach the post-action reward to the pending transition."""
        raise NotImplementedError

    def episode_end(self) -> None:
        """Flush any pending learning state at the end of an episode."""
        if self.learning and self._has_observations():
            self.update()
            self.updates_done += 1
        self._instances_since_update = 0

    def _has_observations(self) -> bool:
        raise NotImplementedError

    # -- mode toggles ---------------------------------------------------------------
    def train(self) -> "HierarchicalAgent":
        """Training mode: record transitions and update parameters."""
        self.learning = True
        return self

    def eval(self, online_learning: bool = True) -> "HierarchicalAgent":
        """Evaluation mode.

        The paper's deployed agents continue adjusting their parameters
        during operation (§V-D), so ``online_learning`` defaults to
        True; pass False for a frozen-policy evaluation.
        """
        self.learning = online_learning
        return self

    # -- the two-level loop -----------------------------------------------------------
    def schedule(self, view: SchedulingView) -> None:
        """One scheduling instance: level-1 selection, then backfill.

        Level 1 starts (or reserves) window picks until a job does not
        fit; level 2 backfills behind the reservation (§III-A).  Every
        action's reward is recorded, and the per-instance mean lands in
        :attr:`instance_rewards`.
        """
        selected: list[Job] = []
        instance_reward = 0.0
        n_actions = 0

        # Level 1: immediate execution or reservation.
        while True:
            window = view.window(self.config.window)
            if not window:
                break
            job = self.select(window, view, level=1)
            if job.size <= view.free_nodes:
                view.start(job)
                selected.append(job)
                instance_reward += self._after_action(selected, view)
                n_actions += 1
            else:
                view.reserve(job)
                selected.append(job)
                instance_reward += self._after_action(selected, view)
                n_actions += 1
                break

        # Level 2: backfilling behind the reservation.  The learned
        # selection is the paper's contribution; ``learned_backfill=False``
        # degrades it to EASY's first-fit rule for ablation.
        if view.reservation is not None:
            while True:
                candidates = view.backfill_candidates()
                if not candidates:
                    break
                if self.config.learned_backfill:
                    window = candidates[: self.config.window]
                    job = self.select(window, view, level=2)
                    view.start(job)
                    selected.append(job)
                    instance_reward += self._after_action(selected, view)
                else:
                    job = candidates[0]
                    view.start(job)
                    selected.append(job)
                    # no transition was recorded for a first-fit pick, so
                    # only observe the reward (do not attach it)
                    instance_reward += self.reward_fn(
                        selected, view.waiting(), view.cluster, view.now
                    )
                n_actions += 1

        self.instance_rewards.append(
            instance_reward / n_actions if n_actions else 0.0
        )
        self._end_instance()

    def _after_action(self, selected: list[Job], view: SchedulingView) -> float:
        """Compute and record the post-action reward."""
        reward = self.reward_fn(selected, view.waiting(), view.cluster, view.now)
        if self.learning:
            self.record_reward(reward)
        return reward

    def _end_instance(self) -> None:
        self._instances_since_update += 1
        if (
            self.learning
            and self._instances_since_update >= self.config.update_every
            and self._has_observations()
        ):
            self.update()
            self.updates_done += 1
            self._instances_since_update = 0

    # -- engine hooks ------------------------------------------------------------------
    def on_simulation_end(self, engine) -> None:  # noqa: ANN001
        """Engine lifecycle hook: finalize the episode."""
        self.episode_end()
