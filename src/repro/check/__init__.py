"""Correctness tooling for the reproduction: determinism lint + sanitizer.

Two halves, both in service of bit-reproducible simulation and
numerically sane training:

* :mod:`repro.check.lint` — an AST-based static linter with a pluggable
  rule registry (:mod:`repro.check.rules`).  It flags the regressions
  that historically break RL-scheduling reproducibility: global-RNG
  usage, wall-clock reads, mutable default arguments, exact float
  comparisons on simulation timestamps, and swallowed exceptions.
  Run it with ``python -m repro check [paths...]``.
* :mod:`repro.check.sanitize` — runtime assertion hooks enabled via the
  ``REPRO_SANITIZE=1`` environment variable or ``Engine(sanitize=True)``,
  verifying node conservation, event-time monotonicity, metric
  non-negativity and NaN/Inf-free network math while a run executes.
"""

from __future__ import annotations

from repro.check.lint import LintConfig, Violation, lint_paths, lint_source
from repro.check.rules import RULES, Rule, register
from repro.check.sanitize import SanitizerError, sanitizer_enabled

__all__ = [
    "LintConfig",
    "RULES",
    "Rule",
    "SanitizerError",
    "Violation",
    "lint_paths",
    "lint_source",
    "register",
    "sanitizer_enabled",
]
