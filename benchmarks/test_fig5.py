"""Benchmark: regenerate Fig 5 (learning curves vs static methods)."""

import math

from conftest import SCALE, save_report

from repro.experiments import fig5


def test_fig5(benchmark, report_dir):
    result = benchmark.pedantic(lambda: fig5.run(SCALE), rounds=1, iterations=1)
    text = fig5.report(result)
    save_report(report_dir, "fig5", text)

    assert set(result.curves) == {"DRAS-PG", "DRAS-DQL", "Decima-PG"}
    assert set(result.static_rewards) == {
        "FCFS", "BinPacking", "Random", "Optimization",
    }
    for name, curve in result.curves.items():
        assert all(math.isfinite(v) for v in curve), name
        # learning improves the collected reward over the first episode
        assert max(curve) >= curve[0]
    # the trained DRAS agents collect more validation reward than the
    # non-reserving packers (Random / BinPacking), as in the paper
    floor = min(result.static_rewards["Random"],
                result.static_rewards["BinPacking"])
    assert max(result.curves["DRAS-PG"]) > floor
    assert max(result.curves["DRAS-DQL"]) > floor
