"""Run-manifest determinism, serialization, and workload description."""

import json

import numpy as np
import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    describe_workload,
    git_sha,
)
from repro.workload.models import ThetaModel


def _manifest(seed=7, sha="abc123"):
    return RunManifest.create(
        kind="test",
        seed=seed,
        config={"nodes": 64, "policy": "fcfs-easy"},
        workload=describe_workload(ThetaModel.scaled(64)),
        summary={"avg_wait": 12.5},
        sha=sha,
    )


class TestDeterminism:
    def test_same_inputs_identical_minus_timestamp(self):
        a, b = _manifest(), _manifest()
        da, db = a.as_dict(), b.as_dict()
        da.pop("created_unix")
        db.pop("created_unix")
        assert da == db

    def test_stable_digest_ignores_timestamp(self):
        assert _manifest().stable_digest() == _manifest().stable_digest()

    def test_digest_sensitive_to_inputs(self):
        assert _manifest(seed=7).stable_digest() != _manifest(seed=8).stable_digest()

    def test_no_timestamp_mode_fully_deterministic(self):
        a = RunManifest.create("test", seed=1, timestamp=False, sha="x")
        b = RunManifest.create("test", seed=1, timestamp=False, sha="x")
        assert a == b
        assert a.created_unix is None


class TestSerialization:
    def test_write_read_round_trip(self, tmp_path):
        manifest = _manifest()
        path = manifest.write(tmp_path / "m.json")
        loaded = RunManifest.read(path)
        assert loaded == manifest
        assert loaded.stable_digest() == manifest.stable_digest()

    def test_schema_stamped_and_checked(self, tmp_path):
        path = _manifest().write(tmp_path / "m.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == MANIFEST_SCHEMA
        doc["schema"] = "something/else"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="unknown manifest schema"):
            RunManifest.read(path)

    def test_numpy_values_coerced(self):
        manifest = RunManifest.create(
            "test", summary={"x": np.float64(1.5), "n": np.int64(3)}, sha="x"
        )
        assert manifest.summary == {"x": 1.5, "n": 3}
        json.dumps(manifest.as_dict())  # must not raise


class TestHelpers:
    def test_describe_workload_extracts_params(self):
        model = ThetaModel.scaled(64)
        desc = describe_workload(model)
        assert desc["name"] == model.name
        assert desc["num_nodes"] == 64
        assert "offered_load" in desc and desc["offered_load"] > 0

    def test_describe_workload_tolerates_foreign_objects(self):
        assert describe_workload(object()) == {}

    def test_git_sha_in_repo(self):
        sha = git_sha()
        assert sha == "unknown" or len(sha) == 12

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(cwd=tmp_path) == "unknown"
