"""Benchmark: regenerate Fig 6 (Kiviat performance comparison).

The headline comparison: all seven methods on both systems, five
normalized metrics each.  Shape assertions encode the paper's findings
that are robust at the scaled-down setting:

* FCFS achieves the lowest maximum wait of all methods;
* DRAS-PG improves average wait over FCFS while keeping maximum wait
  far below the reservation-less methods;
* DRAS-DQL achieves the best (or tied-best) utilization;
* Decima-PG fails on user-level metrics.
"""

from conftest import SCALE, save_report

from repro.experiments import fig6


def test_fig6_theta(benchmark, report_dir):
    result = benchmark.pedantic(
        lambda: fig6.run_system("theta", SCALE), rounds=1, iterations=1
    )
    text = fig6.report({"theta": result})
    save_report(report_dir, "fig6_theta", text)

    raw = result.raw
    # FCFS has the lowest maximum wait (its defining strength, Fig 6)
    assert raw["FCFS"]["max_wait"] == min(r["max_wait"] for r in raw.values())
    # DRAS-PG beats FCFS on average wait ...
    assert raw["DRAS-PG"]["avg_wait"] < raw["FCFS"]["avg_wait"]
    # ... while staying within a small factor of FCFS's max wait,
    # far below the reservation-less methods (starvation avoidance)
    assert raw["DRAS-PG"]["max_wait"] < 2.0 * raw["FCFS"]["max_wait"]
    for name in ("BinPacking", "Random"):
        assert raw["DRAS-PG"]["max_wait"] < raw[name]["max_wait"]
        assert raw["DRAS-DQL"]["max_wait"] < raw[name]["max_wait"]
    # Optimization pays for its immediate-objective greed with a max
    # wait roughly twice DRAS's (paper §V-B)
    assert raw["Optimization"]["max_wait"] > 1.3 * raw["DRAS-PG"]["max_wait"]
    # DRAS-DQL has the best system-level metric (utilization)
    best_util = max(r["utilization"] for r in raw.values())
    assert raw["DRAS-DQL"]["utilization"] >= 0.99 * best_util
    # Decima-PG fails user-level metrics (worst avg wait)
    assert raw["Decima-PG"]["avg_wait"] == max(
        r["avg_wait"] for r in raw.values()
    )


def test_fig6_cori(benchmark, report_dir):
    result = benchmark.pedantic(
        lambda: fig6.run_system("cori", SCALE), rounds=1, iterations=1
    )
    text = fig6.report({"cori": result})
    save_report(report_dir, "fig6_cori", text)

    raw = result.raw
    # every method processes the identical capacity workload
    jobs = {m: r["num_jobs"] for m, r in raw.items()}
    assert len(set(jobs.values())) == 1
    # DRAS improves turnaround over plain arrival order on the
    # capacity objective
    assert min(
        raw["DRAS-PG"]["avg_wait"], raw["DRAS-DQL"]["avg_wait"]
    ) <= raw["FCFS"]["avg_wait"]
