"""Fault sweep — scheduler robustness under increasing failure rates.

Not a paper artifact: this is the robustness study enabled by
:mod:`repro.sim.faults`.  Every scheduler replays the same Theta-model
trace while the node mean-time-between-failures shrinks across a grid
(plus a no-fault baseline), with killed jobs requeued at the head of
the wait queue.  The sweep reports, per (policy, MTBF) cell, the
classic run metrics next to the resilience accounting — failures,
kills, lost and wasted node-seconds, and utilization of the *surviving*
capacity — so degradation under faults can be compared across policies
at a glance.

Faults are injected from a seeded generator that is independent of
every policy's decision stream, so each column of the sweep sees the
identical failure schedule and the comparison isolates the scheduler's
reaction to it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.analysis.tables import format_table
from repro.experiments.common import system_setup
from repro.obs import live as _live
from repro.schedulers import BinPacking, ConservativeBackfill, FCFSEasy, sjf
from repro.sim.engine import run_simulation
from repro.sim.faults import FaultConfig, ResilienceMetrics
from repro.sim.metrics import RunMetrics

if TYPE_CHECKING:
    from repro.experiments.pool import SweepSpec

#: node MTBF grid, seconds; 0 is the fault-free baseline column
MTBF_GRID: tuple[float, ...] = (0.0, 20_000.0, 5_000.0, 2_000.0)

#: base fault process; the sweep overrides ``mtbf`` cell by cell
BASE_FAULTS = FaultConfig(mttr=1_800.0, seed=0, requeue="requeue-front")

#: default per-cell engine wall-clock budget, seconds — a pathological
#: grid point trips the engine's runaway guard instead of hanging a
#: sweep worker forever (0 disables the guard)
CELL_MAX_WALL_S = 600.0

#: scheduler factories by column name (dict literal so the effect
#: analysis can resolve pool-worker dispatch through it)
POLICY_FACTORIES: dict[str, Any] = {
    "FCFS": FCFSEasy,
    "BinPacking": BinPacking,
    "SJF": sjf,
    "Conservative": ConservativeBackfill,
}


@dataclass(frozen=True)
class FaultCell:
    """One (policy, MTBF) cell of the sweep."""

    policy: str
    mtbf: float
    metrics: RunMetrics
    resilience: ResilienceMetrics | None


@dataclass(frozen=True)
class FaultSweepResult:
    """All cells of the sweep, row-major in policy order."""

    system: str
    num_nodes: int
    num_jobs: int
    cells: tuple[FaultCell, ...]


def _policies() -> list:
    return [FCFSEasy(), BinPacking(), sjf(), ConservativeBackfill()]


def run(
    scale: str = "default",
    seed: int = 0,
    faults: FaultConfig | None = None,
    live: "_live.LiveBus | None" = None,
    max_wall_s: float = CELL_MAX_WALL_S,
) -> FaultSweepResult:
    """Sweep every policy across the MTBF grid on one Theta trace.

    ``faults`` overrides the base fault process (repair time, requeue
    policy, kill rate, fault seed); the grid still replaces ``mtbf``
    per cell so the sweep shape is preserved.  ``live`` (explicit, else
    the ``REPRO_LIVE`` process-global bus) receives one ``kind="sweep"``
    snapshot per completed (policy, MTBF) cell — progress, ETA and the
    cell's headline numbers, while the sweep is still running.  Every
    cell runs under a finite engine wall-clock budget (``max_wall_s``,
    0 to disable) so one pathological grid point cannot hang the sweep.
    """
    base = faults if faults is not None else BASE_FAULTS
    base = dataclasses.replace(base, seed=base.seed + seed)
    setup = system_setup("theta", scale, seed)
    trace = setup.validation_trace
    if live is None:
        live = _live.global_live_bus()
    policies = _policies()
    total = len(policies) * len(MTBF_GRID)
    cells = []
    for policy in policies:
        for mtbf in MTBF_GRID:
            cfg = dataclasses.replace(base, mtbf=mtbf)
            result = run_simulation(
                setup.model.num_nodes,
                policy,
                [j.copy_fresh() for j in trace],
                faults=cfg if cfg.active else None,
                max_wall_s=max_wall_s if max_wall_s > 0 else None,
            )
            cell = FaultCell(
                policy=policy.name,
                mtbf=mtbf,
                metrics=RunMetrics.from_result(result),
                resilience=result.resilience,
            )
            cells.append(cell)
            if live is not None:
                r = cell.resilience
                fields = {
                    "cell": len(cells),
                    "done": len(cells),
                    "total": total,
                    "policy": cell.policy,
                    "mtbf": mtbf,
                    "utilization": cell.metrics.utilization,
                    "avg_wait_s": cell.metrics.avg_wait,
                    "faults": r.node_failures if r else 0,
                    "requeues": r.requeues if r else 0,
                }
                if len(cells) == total:
                    fields["final"] = True
                live.publish("sweep", fields)
    return FaultSweepResult(
        system="theta",
        num_nodes=setup.model.num_nodes,
        num_jobs=len(trace),
        cells=tuple(cells),
    )


def report(result: FaultSweepResult) -> str:
    """Format the sweep as one table per policy."""
    blocks = []
    by_policy: dict[str, list[FaultCell]] = {}
    for cell in result.cells:
        by_policy.setdefault(cell.policy, []).append(cell)
    for policy, cells in by_policy.items():
        rows = []
        for cell in cells:
            r = cell.resilience
            rows.append([
                "none" if cell.mtbf == 0 else f"{cell.mtbf:.0f}",
                f"{cell.metrics.avg_wait / 3600:.2f}",
                f"{cell.metrics.avg_slowdown:.2f}",
                f"{cell.metrics.utilization:.3f}",
                str(r.node_failures) if r else "0",
                str(r.jobs_killed) if r else "0",
                f"{r.lost_node_seconds / 3600:.1f}" if r else "0.0",
                f"{r.wasted_node_seconds / 3600:.1f}" if r else "0.0",
                f"{r.degraded_utilization:.3f}"
                if r else f"{cell.metrics.utilization:.3f}",
            ])
        blocks.append(
            format_table(
                ["MTBF (s)", "avg wait (h)", "slowdown", "util",
                 "failures", "kills", "lost (node-h)", "wasted (node-h)",
                 "degraded util"],
                rows,
                title=(f"Fault sweep: {policy} on {result.system} "
                       f"({result.num_nodes} nodes, {result.num_jobs} jobs)"),
            )
        )
    return "\n\n".join(blocks)


# -- parallel-sweep integration (repro.experiments.pool) -----------------------

def sweep_cells(spec: "SweepSpec") -> list[dict[str, Any]]:
    """Expand a faultsweep :class:`~repro.experiments.pool.SweepSpec`.

    ``spec.params`` knobs: ``policies`` (subset of
    :data:`POLICY_FACTORIES` names), ``mtbf_grid`` (replaces
    :data:`MTBF_GRID`), ``faults`` (a ``FaultConfig`` spec string),
    ``max_wall_s`` (per-cell engine budget, default
    :data:`CELL_MAX_WALL_S`).
    """
    policies = list(spec.params.get("policies", POLICY_FACTORIES))
    unknown = [p for p in policies if p not in POLICY_FACTORIES]
    if unknown:
        raise ValueError(
            f"unknown faultsweep policies {unknown}; "
            f"available: {', '.join(POLICY_FACTORIES)}")
    grid = [float(m) for m in spec.params.get("mtbf_grid", MTBF_GRID)]
    return [{"policy": policy, "mtbf": mtbf}
            for policy in policies for mtbf in grid]


def run_sweep_cell(spec: "SweepSpec", cell: Mapping[str, Any],
                   derived_seed: int, attempt: int) -> dict[str, Any]:
    """Run one (policy, MTBF) cell for the pool orchestrator.

    The fault process is seeded from the *sweep*-level seed, not the
    per-cell ``derived_seed``: every policy column must replay the
    identical failure schedule so the comparison isolates the
    scheduler's reaction (the serial :func:`run` has the same design).
    ``derived_seed`` still reaches the cell manifest, keeping cell
    identity deterministic either way.
    """
    del derived_seed, attempt  # deterministic cell; see docstring
    params = spec.params
    faults_spec = params.get("faults")
    base = (FaultConfig.from_spec(faults_spec) if faults_spec
            else BASE_FAULTS)
    base = dataclasses.replace(base, seed=base.seed + spec.seed)
    max_wall_s = float(params.get("max_wall_s", CELL_MAX_WALL_S))
    setup = system_setup("theta", spec.scale, spec.seed)
    trace = setup.validation_trace
    policy = POLICY_FACTORIES[cell["policy"]]()
    cfg = dataclasses.replace(base, mtbf=float(cell["mtbf"]))
    result = run_simulation(
        setup.model.num_nodes,
        policy,
        [j.copy_fresh() for j in trace],
        faults=cfg if cfg.active else None,
        max_wall_s=max_wall_s if max_wall_s > 0 else None,
    )
    metrics = RunMetrics.from_result(result)
    resilience = result.resilience
    return {
        "policy": policy.name,
        "mtbf": float(cell["mtbf"]),
        "system": "theta",
        "num_nodes": setup.model.num_nodes,
        "num_jobs": len(trace),
        "max_wall_s": max_wall_s,
        "metrics": metrics.as_dict(),
        "resilience": resilience.as_dict() if resilience else None,
    }


def result_from_rollup(rollup: Mapping[str, Any]) -> FaultSweepResult:
    """Rebuild a :class:`FaultSweepResult` from a merged pool rollup.

    Cells come back in the canonical policy-major sweep order (the
    rollup stores them sorted by key), so :func:`report` renders the
    same tables a serial run would.  Quarantined cells are simply
    absent — :func:`report` groups by policy, so a policy with no
    surviving cells drops out of the report.
    """
    from repro.experiments.pool import cell_key

    records = {r["key"]: r for r in rollup.get("cells", ())}
    ordered = []
    sweep = rollup.get("sweep") or {}
    params = sweep.get("params") or {}
    policies = list(params.get("policies", POLICY_FACTORIES))
    grid = [float(m) for m in params.get("mtbf_grid", MTBF_GRID)]
    system = "theta"
    num_nodes = 0
    num_jobs = 0
    for policy in policies:
        for mtbf in grid:
            record = records.get(cell_key({"policy": policy, "mtbf": mtbf}))
            if record is None:
                continue
            summary = record["summary"]
            system = summary.get("system", system)
            num_nodes = summary.get("num_nodes", num_nodes)
            num_jobs = summary.get("num_jobs", num_jobs)
            resilience = summary.get("resilience")
            ordered.append(FaultCell(
                policy=summary["policy"],
                mtbf=summary["mtbf"],
                metrics=RunMetrics.from_dict(summary["metrics"]),
                resilience=(ResilienceMetrics.from_dict(resilience)
                            if resilience else None),
            ))
    return FaultSweepResult(system=system, num_nodes=num_nodes,
                            num_jobs=num_jobs, cells=tuple(ordered))
