"""Fig 9 — adaptation to workload change.

A multi-week test trace with demand surges is replayed under each
method; the top panel reports total core hours submitted per week (the
same workload for every method) and the bottom panel the average job
wait per week.  The paper's finding: the static policies degrade badly
in surge weeks, while the online-learning DRAS agents keep adjusting
their parameters and achieve a greater wait-time reduction exactly when
the load spikes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.plots import line_chart
from repro.analysis.tables import format_table
from repro.experiments.common import (
    fresh_trained_agent,
    get_scale,
    system_setup,
)
from repro.schedulers import FCFSEasy, KnapsackOptimization
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.job import Job
from repro.sim.metrics import SECONDS_PER_WEEK, weekly_series

#: weekly load multipliers; weeks 2 and 5 are demand surges
SURGE_PROFILE: tuple[float, ...] = (1.0, 0.9, 1.7, 1.0, 0.85, 1.8, 1.1, 1.0)

#: shorter profile used at tiny scale (tests); week 2 is the surge
SURGE_PROFILE_TINY: tuple[float, ...] = (1.0, 0.9, 1.7, 1.0)


def surge_trace(
    setup, rng: np.random.Generator, profile: tuple[float, ...] = SURGE_PROFILE
) -> list[Job]:
    """A trace whose weekly offered load follows ``profile``."""
    jobs: list[Job] = []
    for week, load in enumerate(profile):
        start = week * SECONDS_PER_WEEK
        jobs.extend(
            setup.model.generate_span(
                SECONDS_PER_WEEK, rng, start=start, load_factor=load
            )
        )
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs


@dataclass(frozen=True)
class AdaptationResult:
    weeks: tuple[int, ...]
    core_hours: tuple[float, ...]
    #: {method: weekly average wait (hours)}
    weekly_wait_h: dict[str, tuple[float, ...]]


def run(scale: str = "default", seed: int = 0) -> AdaptationResult:
    scale_obj = get_scale(scale)
    setup = system_setup("theta", scale, seed)
    profile = SURGE_PROFILE_TINY if scale_obj.name == "tiny" else SURGE_PROFILE
    trace = surge_trace(setup, np.random.default_rng(seed + 7), profile=profile)

    methods = [
        FCFSEasy(),
        KnapsackOptimization(setup.config.objective),
        fresh_trained_agent("pg", "theta", scale, seed).eval(online_learning=True),
        fresh_trained_agent("dql", "theta", scale, seed).eval(online_learning=True),
    ]

    weekly_wait: dict[str, tuple[float, ...]] = {}
    core_hours: tuple[float, ...] = ()
    weeks: tuple[int, ...] = ()
    for scheduler in methods:
        engine = Engine(
            Cluster(setup.model.num_nodes),
            scheduler,
            [j.copy_fresh() for j in trace],
        )
        result = engine.run()
        series = weekly_series(result.finished_jobs)
        weekly_wait[scheduler.name] = tuple(
            float(w) / 3600.0 for w in series["avg_wait"]
        )
        weeks = tuple(int(w) for w in series["week"])
        core_hours = tuple(float(c) for c in series["core_hours"])
    return AdaptationResult(
        weeks=weeks, core_hours=core_hours, weekly_wait_h=weekly_wait
    )


def report(result: AdaptationResult) -> str:
    methods = list(result.weekly_wait_h)
    rows = []
    for i, week in enumerate(result.weeks):
        row = [week, f"{result.core_hours[i]:.0f}"]
        for m in methods:
            series = result.weekly_wait_h[m]
            row.append(f"{series[i]:.2f}" if i < len(series) else "-")
        rows.append(row)
    table = format_table(
        ["week", "core hours", *[f"{m} wait (h)" for m in methods]],
        rows,
        title="Fig 9: weekly load and average job wait during demand surges (Theta)",
    )
    chart = line_chart(
        {m: list(result.weekly_wait_h[m]) for m in methods},
        height=10,
        title="weekly average wait (h) per method:",
    )
    return table + "\n\n" + chart
