"""Fig 8 — average job wait time grouped by execution mode.

Comparing FCFS against DRAS-PG / DRAS-DQL: DRAS largely reduces the
wait of *ready* and *backfilled* jobs at the expense of a slightly
higher wait for *reserved* jobs — it learns which jobs to push through
the backfill holes and which long-waiting jobs to protect via
reservation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments.common import full_comparison
from repro.sim.job import ExecMode

METHODS = ("FCFS", "DRAS-PG", "DRAS-DQL")


@dataclass(frozen=True)
class ModeWaitRow:
    method: str
    #: mean wait (hours) per execution mode
    wait_h: dict[str, float]


def run(scale: str = "default", seed: int = 0) -> list[ModeWaitRow]:
    results = full_comparison("theta", scale, seed)
    rows = []
    for name in METHODS:
        modes = results[name].modes
        rows.append(
            ModeWaitRow(
                method=name,
                wait_h={m.value: modes.avg_wait[m] / 3600.0 for m in ExecMode},
            )
        )
    return rows


def report(rows: list[ModeWaitRow]) -> str:
    table_rows = [
        [
            r.method,
            f"{r.wait_h['ready']:.2f}",
            f"{r.wait_h['reserved']:.2f}",
            f"{r.wait_h['backfilled']:.2f}",
        ]
        for r in rows
    ]
    return format_table(
        ["method", "ready wait (h)", "reserved wait (h)", "backfilled wait (h)"],
        table_rows,
        title="Fig 8: average job wait time by execution mode (Theta)",
    )
