"""Unit tests for the rigid-job model."""

import pytest

from repro.sim.job import ExecMode, Job, JobState
from tests.conftest import make_job


class TestValidation:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="size"):
            make_job(size=0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError, match="size"):
            make_job(size=-4)

    def test_rejects_nonpositive_walltime(self):
        with pytest.raises(ValueError, match="walltime"):
            make_job(walltime=0.0)

    def test_rejects_nonpositive_runtime(self):
        with pytest.raises(ValueError, match="runtime"):
            make_job(runtime=-1.0)

    def test_rejects_negative_submit(self):
        with pytest.raises(ValueError, match="submit_time"):
            make_job(submit=-5.0)

    def test_rejects_bad_priority(self):
        with pytest.raises(ValueError, match="priority"):
            make_job(priority=2)

    def test_runtime_clamped_to_walltime(self):
        # the scheduler kills jobs exceeding their estimate
        job = make_job(walltime=100.0, runtime=500.0)
        assert job.runtime == 100.0

    def test_runtime_below_walltime_kept(self):
        job = make_job(walltime=100.0, runtime=40.0)
        assert job.runtime == 40.0


class TestLifecycle:
    def test_initial_state_pending(self):
        assert make_job().state is JobState.PENDING

    def test_start_sets_fields(self):
        job = make_job(submit=10.0)
        job.state = JobState.WAITING
        job.mark_started(25.0, ExecMode.READY)
        assert job.state is JobState.RUNNING
        assert job.start_time == 25.0
        assert job.mode is ExecMode.READY

    def test_cannot_start_before_submission(self):
        job = make_job(submit=100.0)
        job.state = JobState.WAITING
        with pytest.raises(RuntimeError, match="before submission"):
            job.mark_started(50.0, ExecMode.READY)

    def test_cannot_start_twice(self):
        job = make_job()
        job.state = JobState.WAITING
        job.mark_started(0.0, ExecMode.READY)
        with pytest.raises(RuntimeError, match="cannot start"):
            job.mark_started(1.0, ExecMode.READY)

    def test_finish_requires_running(self):
        job = make_job()
        with pytest.raises(RuntimeError, match="cannot finish"):
            job.mark_finished(10.0)

    def test_finish_sets_end_time(self):
        job = make_job()
        job.state = JobState.WAITING
        job.mark_started(0.0, ExecMode.READY)
        job.mark_finished(100.0)
        assert job.state is JobState.FINISHED
        assert job.end_time == 100.0


class TestMetrics:
    def _finished(self, submit=0.0, start=50.0, runtime=100.0) -> Job:
        job = make_job(submit=submit, walltime=runtime, runtime=runtime)
        job.state = JobState.WAITING
        job.mark_started(start, ExecMode.READY)
        job.mark_finished(start + runtime)
        return job

    def test_wait_time(self):
        assert self._finished(submit=10.0, start=60.0).wait_time == 50.0

    def test_wait_time_requires_start(self):
        with pytest.raises(ValueError, match="not started"):
            _ = make_job().wait_time

    def test_response_time(self):
        job = self._finished(submit=0.0, start=50.0, runtime=100.0)
        assert job.response_time == 150.0

    def test_response_requires_finish(self):
        with pytest.raises(ValueError, match="not finished"):
            _ = make_job().response_time

    def test_slowdown(self):
        job = self._finished(submit=0.0, start=100.0, runtime=100.0)
        assert job.slowdown() == pytest.approx(2.0)

    def test_bounded_slowdown_limits_short_jobs(self):
        job = self._finished(submit=0.0, start=100.0, runtime=1.0)
        assert job.slowdown() == pytest.approx(101.0)
        assert job.slowdown(bound=10.0) == pytest.approx(101.0 / 10.0)

    def test_queued_time(self):
        job = make_job(submit=100.0)
        assert job.queued_time(150.0) == 50.0
        assert job.queued_time(50.0) == 0.0  # clock before submission

    def test_node_seconds_and_core_hours(self):
        job = make_job(size=4, walltime=7200.0)
        assert job.node_seconds == 4 * 7200.0
        assert job.core_hours == pytest.approx(8.0)


class TestCopyFresh:
    def test_resets_lifecycle(self):
        job = make_job(size=3, submit=7.0)
        job.state = JobState.WAITING
        job.mark_started(10.0, ExecMode.BACKFILLED)
        job.ever_reserved = True
        fresh = job.copy_fresh()
        assert fresh.state is JobState.PENDING
        assert fresh.start_time is None
        assert fresh.mode is None
        assert not fresh.ever_reserved

    def test_preserves_identity_fields(self):
        job = make_job(size=3, walltime=60.0, runtime=30.0, submit=7.0, priority=1)
        fresh = job.copy_fresh()
        assert fresh.job_id == job.job_id
        assert fresh.size == 3
        assert fresh.walltime == 60.0
        assert fresh.runtime == 30.0
        assert fresh.submit_time == 7.0
        assert fresh.priority == 1
