"""Run-everything orchestrator.

Regenerates every table and figure of the paper at one scale and
assembles a combined report, in the paper's presentation order.  The
CLI exposes this as ``python -m repro reproduce all``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    faultsweep,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    overhead,
    table1,
    table2,
    table3,
    table4,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: id, runner, reporter."""

    exp_id: str
    run: Callable[..., object]
    report: Callable[[object], str]
    needs_scale: bool = True


SPECS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec("table1", lambda **_: table1.run(), table1.report, False),
    ExperimentSpec("table2", table2.run, table2.report),
    ExperimentSpec("fig2", fig2.run, fig2.report),
    ExperimentSpec("fig3", fig3.run, fig3.report),
    ExperimentSpec("table3", lambda **_: table3.run(), table3.report, False),
    ExperimentSpec("fig4", fig4.run, fig4.report),
    ExperimentSpec("fig5", fig5.run, fig5.report),
    ExperimentSpec("fig6", fig6.run, fig6.report),
    ExperimentSpec("fig7", fig7.run, fig7.report),
    ExperimentSpec("table4", table4.run, table4.report),
    ExperimentSpec("fig8", fig8.run, fig8.report),
    ExperimentSpec("fig9", fig9.run, fig9.report),
    ExperimentSpec("faultsweep", faultsweep.run, faultsweep.report),
    ExperimentSpec(
        "overhead",
        lambda full_size=True, **_: overhead.run(full_size=full_size),
        overhead.report,
        False,
    ),
)


def run_all(
    scale: str = "default",
    seed: int = 0,
    only: tuple[str, ...] | None = None,
    full_size_overhead: bool = True,
    progress: Callable[[str], None] | None = None,
    manifest_path: str | None = None,
) -> dict[str, str]:
    """Run every (or the selected) experiment; return rendered reports.

    Experiments share cached traces and trained agents within the
    process, so the full sweep costs little more than Fig 6 alone plus
    the training-order study.

    With ``manifest_path`` a :class:`~repro.obs.manifest.RunManifest` is
    written there, recording the scale, seed, git SHA, selected
    experiments and per-experiment wall durations.
    """
    selected = {s.exp_id: s for s in SPECS}
    if only is not None:
        unknown = set(only) - set(selected)
        if unknown:
            raise ValueError(f"unknown experiment ids: {sorted(unknown)}")
        selected = {k: v for k, v in selected.items() if k in only}
    reports: dict[str, str] = {}
    durations: dict[str, float] = {}
    for exp_id, spec in selected.items():
        start = time.perf_counter()
        if spec.needs_scale:
            result = spec.run(scale, seed=seed)
        elif exp_id == "overhead":
            result = spec.run(full_size=full_size_overhead)
        else:
            result = spec.run()
        reports[exp_id] = spec.report(result)
        durations[exp_id] = round(time.perf_counter() - start, 3)
        if progress is not None:
            progress(f"{exp_id}: done in {durations[exp_id]:.1f} s")
    if manifest_path is not None:
        from repro.obs.manifest import RunManifest

        RunManifest.create(
            kind="reproduce",
            seed=seed,
            config={
                "scale": scale,
                "experiments": sorted(selected),
                "full_size_overhead": full_size_overhead,
            },
            summary={"wall_s": durations},
        ).write(manifest_path)
    return reports


def combined_report(reports: dict[str, str], scale: str) -> str:
    """Assemble individual reports into one document."""
    header = (
        f"DRAS reproduction — full experiment sweep (scale: {scale})\n"
        + "=" * 64
    )
    blocks = [header]
    for exp_id, text in reports.items():
        blocks.append(f"\n{'-' * 64}\n[{exp_id}]\n{'-' * 64}\n{text}")
    return "\n".join(blocks)
