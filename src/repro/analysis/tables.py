"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``.  Columns are sized to their widest cell.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
