"""Canonical time-unit constants for the whole reproduction.

Every quantity in the simulator is carried in **seconds** (SWF's native
unit); reports convert to hours/days at the edge.  These constants are
the only blessed definitions of the conversion factors — the static
analyzer (rule RPR203, :mod:`repro.check.units`) flags any module that
redefines them, which is how three independent copies of
``SECONDS_PER_HOUR`` crept into the workload package historically.
"""

from __future__ import annotations

#: seconds in one minute
SECONDS_PER_MINUTE = 60.0
#: minutes in one hour
MINUTES_PER_HOUR = 60.0
#: seconds in one hour — divide a seconds quantity by this to get hours
SECONDS_PER_HOUR = 3600.0
#: hours in one day
HOURS_PER_DAY = 24.0
#: seconds in one day
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR

__all__ = [
    "HOURS_PER_DAY",
    "MINUTES_PER_HOUR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_MINUTE",
]
