"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.cluster import Cluster
from repro.sim.job import Job


def make_job(
    size: int = 1,
    walltime: float = 100.0,
    runtime: float | None = None,
    submit: float = 0.0,
    priority: int = 0,
    deps: tuple[int, ...] = (),
    job_id: int | None = None,
) -> Job:
    """Compact job constructor for tests."""
    kwargs = dict(
        size=size,
        walltime=walltime,
        runtime=runtime if runtime is not None else walltime,
        submit_time=submit,
        priority=priority,
        dependencies=deps,
    )
    if job_id is not None:
        kwargs["job_id"] = job_id
    return Job(**kwargs)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(8)


@pytest.fixture(autouse=True)
def _deterministic_job_ids():
    """Keep auto-assigned job ids deterministic per test."""
    from repro.sim.job import reset_job_id_counter

    reset_job_id_counter(1000)
    yield
