"""Fault injection: deterministic failures, requeue policies, resilience.

The tentpole property: fault schedules come from their own seeded
generator, so the same seed + config reproduces bit-identical runs —
traces, job outcomes and resilience summaries — for every scheduler,
and the sanitizer's node-conservation invariant (used + free + down ==
total) holds through every failure and repair.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import POLICIES, make_policy
from repro.sim.cluster import Cluster
from repro.sim.engine import run_simulation
from repro.sim.faults import FaultConfig, FaultInjector
from repro.sim.job import JobState
from repro.sim.metrics import RunMetrics
from repro.workload import ThetaModel
from tests.conftest import make_job

FAULTS = FaultConfig(mtbf=2500.0, mttr=1500.0, seed=7)


def theta_trace(n_jobs=80, nodes=64, seed=5):
    model = ThetaModel.scaled(nodes)
    return model.generate(n_jobs, np.random.default_rng(seed))


class TestFaultConfig:
    def test_defaults_inactive(self):
        assert not FaultConfig().active
        assert FaultConfig(mtbf=100.0).active
        assert FaultConfig(job_kill_mtbf=5000.0).active

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(mtbf=-1.0)
        with pytest.raises(ValueError):
            FaultConfig(mtbf=1.0, mttr=0.0)
        with pytest.raises(ValueError):
            FaultConfig(requeue="bogus")
        with pytest.raises(ValueError):
            FaultConfig(blade_size=0)
        with pytest.raises(ValueError):
            FaultConfig(max_requeues=-1)

    def test_from_spec(self):
        cfg = FaultConfig.from_spec(
            "mtbf=5000,mttr=1800,seed=3,requeue=abandon,"
            "blade_prob=0.5,max_requeues=2"
        )
        assert cfg.mtbf == 5000.0
        assert cfg.mttr == 1800.0
        assert cfg.seed == 3
        assert cfg.requeue == "abandon"
        assert cfg.blade_prob == 0.5
        assert cfg.max_requeues == 2

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown --faults key"):
            FaultConfig.from_spec("mtbf=100,bogus=1")

    def test_from_spec_rejects_bad_syntax(self):
        with pytest.raises(ValueError):
            FaultConfig.from_spec("mtbf")

    def test_dict_round_trip(self):
        cfg = FaultConfig(mtbf=1000.0, mttr=600.0, seed=9,
                          requeue="requeue-back", max_requeues=3)
        assert FaultConfig.from_dict(cfg.as_dict()) == cfg
        # and through JSON, as a manifest would store it
        assert FaultConfig.from_dict(json.loads(json.dumps(cfg.as_dict()))) == cfg

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            FaultConfig.from_dict({"mtbf": 1.0, "nope": 2})


class TestFaultInjector:
    def test_requires_active_config(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultConfig())

    def test_same_seed_same_stream(self):
        a, b = FaultInjector(FAULTS), FaultInjector(FAULTS)
        assert [a.next_failure_gap() for _ in range(5)] \
            == [b.next_failure_gap() for _ in range(5)]
        assert a.sample_failure() == b.sample_failure()
        pool = np.arange(32)
        assert a.choose_failed_nodes(pool, 3).tolist() \
            == b.choose_failed_nodes(pool, 3).tolist()

    def test_reset_replays_stream(self):
        inj = FaultInjector(FAULTS)
        first = [inj.next_failure_gap() for _ in range(4)]
        inj.reset()
        assert [inj.next_failure_gap() for _ in range(4)] == first

    def test_repair_times_respect_min_repair(self):
        inj = FaultInjector(FaultConfig(mtbf=100.0, mttr=1.0,
                                        min_repair=500.0, seed=0))
        for _ in range(20):
            _, repairs = inj.sample_failure()
            assert all(r >= 500.0 for r in repairs)


class TestClusterFailures:
    def test_fail_and_repair_accounting(self):
        cluster = Cluster(8, sanitize=True)
        cluster.fail_nodes([1, 2], now=10.0, expected_up_at=110.0)
        assert cluster.down_nodes == 2
        assert cluster.up_nodes == 6
        assert cluster.down_mask.tolist() == [
            False, True, True, False, False, False, False, False]
        assert cluster.lost_node_seconds(until=60.0) == pytest.approx(100.0)
        cluster.repair_nodes([1, 2], now=110.0)
        assert cluster.down_nodes == 0
        assert cluster.lost_node_seconds() == pytest.approx(200.0)

    def test_cannot_fail_occupied_node(self):
        cluster = Cluster(4, sanitize=True)
        job = make_job(size=4, walltime=10.0)
        cluster.allocate(job, 0.0)
        with pytest.raises(RuntimeError, match="non-free"):
            cluster.fail_nodes([0], now=1.0, expected_up_at=2.0)

    def test_cannot_repair_healthy_node(self):
        cluster = Cluster(4, sanitize=True)
        with pytest.raises(RuntimeError, match="not down"):
            cluster.repair_nodes([0], now=1.0)

    def test_allocate_avoids_down_nodes(self):
        cluster = Cluster(4, sanitize=True)
        cluster.fail_nodes([0, 1], now=0.0, expected_up_at=100.0)
        assert not cluster.can_fit(3)
        job = make_job(size=2, walltime=10.0)
        nodes = cluster.allocate(job, 0.0)
        assert set(nodes.tolist()) == {2, 3}

    def test_release_killed_wastes_partial_work(self):
        cluster = Cluster(4, sanitize=True)
        job = make_job(size=2, walltime=100.0)
        job.state = JobState.WAITING
        from repro.sim.job import ExecMode

        cluster.allocate(job, 0.0)
        job.mark_started(0.0, ExecMode.READY)
        cluster.release_killed(job, now=30.0)
        assert cluster.wasted_node_seconds == pytest.approx(60.0)
        assert cluster.used_node_seconds() == 0.0

    def test_reset_clears_fault_state(self):
        cluster = Cluster(4, sanitize=True)
        cluster.fail_nodes([0], now=0.0, expected_up_at=10.0)
        cluster.reset()
        assert cluster.down_nodes == 0
        assert cluster.lost_node_seconds() == 0.0
        assert cluster.wasted_node_seconds == 0.0


def _normalized_trace(path):
    """Trace lines as parsed records with the volatile wall field removed."""
    records = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        record.pop("wall", None)
        records.append(record)
    return records


class TestDeterminism:
    def test_bit_identical_runs(self, tmp_path):
        jobs = theta_trace()
        outcomes = []
        for run in range(2):
            trace_path = tmp_path / f"run{run}.jsonl"
            result = run_simulation(
                64, make_policy("fcfs"),
                [j.copy_fresh() for j in jobs],
                trace=str(trace_path), faults=FAULTS, sanitize=True,
            )
            outcomes.append((
                RunMetrics.from_result(result).as_dict(),
                result.resilience.as_dict(),
                [(j.job_id, j.state.name, j.end_time, j.times_killed)
                 for j in result.jobs],
                _normalized_trace(trace_path),
            ))
        assert outcomes[0] == outcomes[1]

    def test_different_fault_seed_differs(self):
        jobs = theta_trace()
        results = []
        for seed in (7, 8):
            cfg = dataclasses.replace(FAULTS, seed=seed)
            result = run_simulation(64, make_policy("fcfs"),
                                    [j.copy_fresh() for j in jobs],
                                    faults=cfg)
            results.append(result.resilience.as_dict())
        assert results[0] != results[1]

    def test_faults_independent_of_policy_decisions(self, tmp_path):
        """Different policies see the identical failure schedule.

        Makespans differ, so the *number* of failures consumed differs;
        but the sequence of (time, failed nodes) pairs must be a shared
        prefix — the injector stream never depends on policy decisions.
        """
        schedules = []
        jobs = theta_trace()
        for policy in ("fcfs", "binpacking"):
            trace_path = tmp_path / f"{policy}.jsonl"
            run_simulation(64, make_policy(policy),
                           [j.copy_fresh() for j in jobs],
                           trace=str(trace_path), faults=FAULTS)
            schedules.append([
                (r["t"], tuple(r["nodes"]))
                for r in _normalized_trace(trace_path)
                if r.get("name") == "engine.node_fail"
            ])
        n = min(len(schedules[0]), len(schedules[1]))
        assert n >= 10
        assert schedules[0][:n] == schedules[1][:n]


class TestAllSchedulersUnderFaults:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_policy_completes_faulted_run(self, policy):
        jobs = theta_trace()
        result = run_simulation(
            64, make_policy(policy), [j.copy_fresh() for j in jobs],
            faults=FAULTS, sanitize=True,
        )
        r = result.resilience
        assert r is not None
        assert r.node_failures >= 10
        assert r.node_repairs > 0
        assert r.lost_node_seconds > 0
        assert 0.0 < r.degraded_utilization <= 1.0
        # requeue-front default: every kill is requeued, every job finishes
        assert r.jobs_killed == r.requeues
        assert all(j.state is JobState.FINISHED for j in result.jobs)

    def test_rl_agent_completes_faulted_run(self):
        from repro.core.config import DRASConfig
        from repro.core.dras_pg import DRASPG

        cfg = DRASConfig.scaled(64, objective="capability", window=8,
                                time_scale=ThetaModel.MAX_RUNTIME, seed=0)
        agent = DRASPG(cfg)
        result = run_simulation(64, agent, theta_trace(60),
                                faults=FAULTS, sanitize=True)
        assert result.resilience.node_failures >= 10
        for p in agent.network.parameters():
            assert np.all(np.isfinite(p.value)), p.name


class TestRequeuePolicies:
    def test_abandon_marks_jobs_failed(self):
        cfg = dataclasses.replace(FAULTS, requeue="abandon")
        jobs = theta_trace()
        result = run_simulation(64, make_policy("fcfs"),
                                [j.copy_fresh() for j in jobs],
                                faults=cfg, sanitize=True)
        r = result.resilience
        assert r.jobs_killed > 0
        assert r.requeues == 0
        assert r.abandoned == r.jobs_killed
        failed = [j for j in result.jobs if j.state is JobState.FAILED]
        assert len(failed) == r.abandoned
        assert all(j.end_time is not None for j in failed)

    def test_max_requeues_caps_retries(self):
        cfg = dataclasses.replace(FAULTS, max_requeues=1)
        jobs = theta_trace()
        result = run_simulation(64, make_policy("fcfs"),
                                [j.copy_fresh() for j in jobs],
                                faults=cfg, sanitize=True)
        assert all(j.times_killed <= 2 for j in result.jobs)
        over = [j for j in result.jobs if j.times_killed == 2]
        assert all(j.state is JobState.FAILED for j in over)

    def test_requeue_back_still_finishes_everything(self):
        cfg = dataclasses.replace(FAULTS, requeue="requeue-back")
        jobs = theta_trace()
        result = run_simulation(64, make_policy("fcfs"),
                                [j.copy_fresh() for j in jobs],
                                faults=cfg, sanitize=True)
        assert all(j.state is JobState.FINISHED for j in result.jobs)
        assert result.resilience.requeues == result.resilience.jobs_killed

    def test_requeue_front_and_back_diverge(self):
        jobs = theta_trace()
        ends = []
        for requeue in ("requeue-front", "requeue-back"):
            cfg = dataclasses.replace(FAULTS, requeue=requeue)
            result = run_simulation(64, make_policy("fcfs"),
                                    [j.copy_fresh() for j in jobs],
                                    faults=cfg)
            ends.append([j.end_time for j in result.jobs])
        assert ends[0] != ends[1]


class TestDependencyCascade:
    def test_abandoned_parent_dooms_dependent(self):
        # the parent is large and long: under aggressive faults with the
        # abandon policy it is very likely to be killed; its dependent
        # must then be abandoned too, never started
        cfg = FaultConfig(mtbf=300.0, mttr=600.0, seed=1, requeue="abandon")
        parent = make_job(size=8, walltime=50_000.0, submit=0.0, job_id=1)
        child = make_job(size=1, walltime=10.0, submit=1.0, deps=(1,),
                         job_id=2)
        filler = [make_job(size=1, walltime=100.0, submit=float(i),
                           job_id=10 + i) for i in range(5)]
        result = run_simulation(8, make_policy("fcfs"),
                                [parent, child] + filler,
                                faults=cfg, sanitize=True)
        by_id = {j.job_id: j for j in result.jobs}
        if by_id[1].state is JobState.FAILED:
            assert by_id[2].state is JobState.FAILED
            assert by_id[2].start_time is None

    def test_job_kill_mtbf_without_node_faults(self):
        cfg = FaultConfig(job_kill_mtbf=5000.0, seed=3)
        jobs = theta_trace()
        result = run_simulation(64, make_policy("fcfs"),
                                [j.copy_fresh() for j in jobs],
                                faults=cfg, sanitize=True)
        r = result.resilience
        assert r.node_failures == 0
        assert r.jobs_killed > 0
        assert r.wasted_node_seconds > 0
        assert all(j.state is JobState.FINISHED for j in result.jobs)


class TestNoFaultEquivalence:
    def test_inactive_config_matches_plain_run(self):
        jobs = theta_trace()
        plain = run_simulation(64, make_policy("fcfs"),
                               [j.copy_fresh() for j in jobs])
        inactive = run_simulation(64, make_policy("fcfs"),
                                  [j.copy_fresh() for j in jobs],
                                  faults=FaultConfig())
        assert inactive.resilience is None
        assert RunMetrics.from_result(plain).as_dict() \
            == RunMetrics.from_result(inactive).as_dict()
