"""Unit tests for the runtime sanitizer (repro.check.sanitize)."""

import numpy as np
import pytest

from repro.check import sanitize
from repro.check.sanitize import SanitizerError
from repro.nn.network import build_dras_network
from repro.nn.optim import Adam
from repro.schedulers import FCFSEasy
from repro.sim.backfill import Reservation
from repro.sim.cluster import Cluster
from repro.sim.engine import SimulationResult, run_simulation
from repro.sim.job import ExecMode, Job, JobState
from repro.sim.metrics import RunMetrics
from repro.workload import ThetaModel


@pytest.fixture
def sanitizer_on():
    previous = sanitize.force_sanitizer(True)
    yield
    sanitize.force_sanitizer(previous)


@pytest.fixture
def sanitizer_off():
    # force, so the suite also passes under an ambient REPRO_SANITIZE=1
    previous = sanitize.force_sanitizer(False)
    yield
    sanitize.force_sanitizer(previous)


def make_job(job_id, size=2, submit=0.0, runtime=100.0):
    return Job(job_id=job_id, size=size, walltime=runtime * 2,
               runtime=runtime, submit_time=submit)


class TestActivation:
    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.sanitizer_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", "False"])
    def test_falsy_env_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize.sanitizer_enabled()

    def test_force_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        previous = sanitize.force_sanitizer(False)
        try:
            assert not sanitize.sanitizer_enabled()
        finally:
            sanitize.force_sanitizer(previous)

    def test_explicit_cluster_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert not Cluster(4, sanitize=False).sanitize_active
        monkeypatch.delenv("REPRO_SANITIZE")
        assert Cluster(4, sanitize=True).sanitize_active


class TestClusterInvariants:
    def corrupt_cluster(self):
        """Allocate one job, then leak a node behind the table's back."""
        cluster = Cluster(8, sanitize=True)
        job = make_job(1, size=4)
        cluster.allocate(job, 0.0)
        cluster._job_of[0] = -1
        return cluster

    def test_node_leak_raises_descriptive_error(self):
        cluster = self.corrupt_cluster()
        with pytest.raises(SanitizerError, match="node-conservation"):
            cluster.allocate(make_job(2, size=1), 1.0)

    def test_corruption_silent_when_disabled(self):
        cluster = self.corrupt_cluster()
        cluster._sanitize = False
        cluster.allocate(make_job(2, size=1), 1.0)  # no error

    def test_env_var_activates_cluster_checks(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        cluster = Cluster(8)
        job = make_job(1, size=4)
        cluster.allocate(job, 0.0)
        cluster._job_of[7] = 99  # phantom job on a free node
        # the phantom also desyncs the cached free count, so the
        # conservation sum trips before the allocation-table check
        with pytest.raises(SanitizerError, match="node-conservation"):
            cluster.release(job)

    def test_clean_allocate_release_passes(self, sanitizer_on):
        cluster = Cluster(8)
        job = make_job(1, size=8)
        cluster.allocate(job, 0.0)
        job.mark_started(0.0, ExecMode.READY)
        job.mark_finished(100.0)
        cluster.release(job)
        assert cluster.available_nodes == 8


class TestCheckFunctions:
    def test_monotonic_time(self):
        sanitize.check_monotonic_time(5.0, 5.0)
        sanitize.check_monotonic_time(5.0, 6.0)
        with pytest.raises(SanitizerError, match="moved backwards"):
            sanitize.check_monotonic_time(5.0, 4.0)

    def test_double_start(self):
        job = make_job(7)
        with pytest.raises(SanitizerError, match="double-start"):
            sanitize.check_job_start(job, 1.0, {7: job})
        sanitize.check_job_start(job, 1.0, {})

    def test_start_before_submission(self):
        job = make_job(3, submit=50.0)
        with pytest.raises(SanitizerError, match="causality"):
            sanitize.check_job_start(job, 10.0, {})

    def test_reservation_in_past(self):
        job = make_job(4, size=8)
        stale = Reservation(job_id=4, size=8, shadow_time=5.0, extra_nodes=0)
        with pytest.raises(SanitizerError, match="shadow time"):
            sanitize.check_reservation(job, stale, now=10.0, running={})
        ok = Reservation(job_id=4, size=8, shadow_time=20.0, extra_nodes=0)
        sanitize.check_reservation(job, ok, now=10.0, running={})

    def test_reservation_for_running_job(self):
        job = make_job(4, size=8)
        res = Reservation(job_id=4, size=8, shadow_time=20.0, extra_nodes=0)
        with pytest.raises(SanitizerError, match="already-running"):
            sanitize.check_reservation(job, res, now=10.0, running={4: job})


class TestMetricsInvariants:
    def finished_result(self, start, submit=100.0, end=None):
        job = make_job(1, submit=submit)
        job.state = JobState.FINISHED
        job.start_time = start
        job.end_time = end if end is not None else start + job.runtime
        return SimulationResult(jobs=[job], makespan=job.end_time,
                                first_submit=submit, num_instances=1, num_nodes=4)

    def test_negative_wait_raises(self, sanitizer_on):
        with pytest.raises(SanitizerError, match="negative wait"):
            RunMetrics.from_result(self.finished_result(start=40.0))

    def test_negative_turnaround_raises(self, sanitizer_on):
        with pytest.raises(SanitizerError, match="negative turnaround"):
            RunMetrics.from_result(self.finished_result(start=150.0, end=90.0))

    def test_corrupt_metrics_silent_when_disabled(self, sanitizer_off):
        assert RunMetrics.from_result(self.finished_result(start=40.0)).num_jobs == 1

    def test_clean_metrics_pass(self, sanitizer_on):
        m = RunMetrics.from_result(self.finished_result(start=150.0))
        assert m.avg_wait == 50.0


class TestNetworkInvariants:
    def make_net(self):
        return build_dras_network(4, 8, 6, 3, rng=np.random.default_rng(0))

    def test_nan_input_raises(self, sanitizer_on):
        net = self.make_net()
        with pytest.raises(SanitizerError, match="NaN"):
            net.forward(np.full((1, 4, 2), np.nan))

    def test_inf_blames_producing_layer(self, sanitizer_on):
        net = self.make_net()
        net.layers[1].weight.value[:] = np.inf
        with pytest.raises(SanitizerError, match=r"layer 1 \(Dense\)"):
            net.forward(np.ones((1, 4, 2)))

    def test_nan_gradient_raises_in_backward(self, sanitizer_on):
        net = self.make_net()
        net.forward(np.ones((1, 4, 2)))
        with pytest.raises(SanitizerError, match="output gradient"):
            net.backward(np.full((1, 3), np.nan))

    def test_nan_silent_when_disabled(self, sanitizer_off):
        net = self.make_net()
        out = net.forward(np.full((1, 4, 2), np.nan))
        assert np.isnan(out).all()

    def test_clean_forward_backward_pass(self, sanitizer_on):
        net = self.make_net()
        out = net.forward(np.ones((2, 4, 2)))
        grad = net.backward(np.ones_like(out))
        assert np.isfinite(grad).all()


class TestAdamInvariants:
    def test_nan_gradient_raises(self, sanitizer_on):
        net = build_dras_network(4, 8, 6, 3, rng=np.random.default_rng(0))
        opt = Adam(net.parameters(), lr=0.001)
        net.parameters()[0].grad[:] = np.nan
        with pytest.raises(SanitizerError, match="gradient of conv.weight"):
            opt.step()

    def test_clean_step_passes(self, sanitizer_on):
        net = build_dras_network(4, 8, 6, 3, rng=np.random.default_rng(0))
        opt = Adam(net.parameters(), lr=0.001)
        net.forward(np.ones((2, 4, 2)))
        net.backward(np.ones((2, 3)))
        opt.step()

    def test_shape_check(self):
        sanitize.check_same_shape("w", (2, 3), (2, 3))
        with pytest.raises(SanitizerError, match="changed shape"):
            sanitize.check_same_shape("w", (2, 3), (3, 2))


class TestEndToEnd:
    def test_sanitized_run_matches_unsanitized(self):
        model = ThetaModel.scaled(32)
        jobs = model.generate(60, np.random.default_rng(5))
        plain = run_simulation(32, FCFSEasy(), [j.copy_fresh() for j in jobs])
        checked = run_simulation(
            32, FCFSEasy(), [j.copy_fresh() for j in jobs], sanitize=True
        )
        assert RunMetrics.from_result(plain) == RunMetrics.from_result(checked)
        assert checked.makespan == plain.makespan
