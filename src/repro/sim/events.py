"""Discrete-event machinery for the trace-driven simulator.

A binary heap orders events by ``(time, priority, sequence)``.  The
sequence number makes the ordering total and deterministic, which keeps
whole simulations reproducible bit-for-bit — essential for RL training
(same seed, same trajectory) and for regression tests.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field


class EventKind(enum.IntEnum):
    """Kinds of simulator events.

    The integer values double as tie-breaking priorities for events at
    the same timestamp: completions are processed before arrivals so a
    job finishing at time *t* frees its nodes before jobs arriving at
    *t* are considered.
    """

    FINISH = 0
    SUBMIT = 1


@dataclass(order=True)
class Event:
    """One timestamped occurrence (job finish or submit).

    Ordering is ``(time, kind, seq)``: finishes sort before submits at
    the same timestamp, and ``seq`` breaks remaining ties by insertion
    order, keeping the heap deterministic.
    """

    time: float
    kind: EventKind
    seq: int = field(compare=True)
    job_id: int = field(compare=False, default=-1)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def push(self, time: float, kind: EventKind, job_id: int) -> Event:
        """Schedule an event; returns the stored :class:`Event`."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        event = Event(float(time), kind, next(self._seq), job_id)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return the earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek at empty event queue")
        return self._heap[0]

    def pop_simultaneous(self) -> list[Event]:
        """Pop every event sharing the earliest timestamp.

        The simulator treats all events at one timestamp as a single
        scheduling instance: first apply all completions and arrivals,
        then invoke the policy once.
        """
        if not self._heap:
            raise IndexError("pop from empty event queue")
        first = self.pop()
        batch = [first]
        # stored-value equality: both sides are the same pushed float,
        # not recomputed arithmetic
        while self._heap and self._heap[0].time == first.time:  # repro: noqa[float-time-eq]
            batch.append(self.pop())
        return batch

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
