"""Whole-program project model for the static analyzer.

:class:`ProjectModel` parses every module under a package root exactly
once (pure :mod:`ast`; the analyzed code is never imported) and layers
cross-module structure on top:

* a **module table** keyed by dotted name (``repro.workload.stats``),
* per-module **import alias tables** resolving ``from x import y as z``
  (absolute and relative) back to their defining module,
* a project-wide **symbol resolver** that follows re-export chains,
* the **class hierarchy** with fully-qualified base resolution, so a
  rule can ask for every transitive subclass of
  ``repro.schedulers.base.BaseScheduler``.

Whole-program rules subclass :class:`ProjectRule` and are registered in
:data:`PROJECT_RULES` via :func:`register_project` — the project-level
mirror of the per-file registry in :mod:`repro.check.rules`.  They run
through :func:`analyze_project`, which shares the per-file
``# repro: noqa`` suppression machinery with the per-file linter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.check.lint import LintConfig, Violation, _Suppressions


@dataclass(frozen=True)
class ProjectFinding:
    """One raw whole-program rule hit, pinned to a file location."""

    path: str
    line: int
    col: int
    message: str


@dataclass
class ModuleInfo:
    """One parsed module plus its locally-resolvable namespace."""

    name: str                 #: dotted module name, e.g. ``repro.sim.engine``
    path: str                 #: posix path the module was read from
    source: str
    tree: ast.Module
    #: local alias -> dotted origin: ``"repro.sim.job"`` for a module
    #: import, ``"repro.sim.job.Job"`` for a from-import
    imports: dict[str, str] = field(default_factory=dict)
    #: top-level simple assignments (name -> value expression)
    constants: dict[str, ast.expr] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """Dotted package containing this module."""
        if self.path.endswith("__init__.py"):
            return self.name
        return self.name.rpartition(".")[0]


def _collect_namespace(info: ModuleInfo) -> None:
    for node in info.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    info.imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = info.package.split(".") if info.package else []
                if node.level > 1:
                    parts = parts[: len(parts) - (node.level - 1)]
                base = ".".join(parts + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                info.imports[bound] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    info.constants[target.id] = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                info.constants[node.target.id] = node.value
        elif isinstance(node, ast.FunctionDef):
            info.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = node


class ProjectModel:
    """Cross-module view of one parsed package tree."""

    def __init__(self, modules: Iterable[ModuleInfo],
                 root: str | Path | None = None) -> None:
        #: package directory the model was loaded from (None for
        #: synthetic models); used to discover sibling analysis inputs
        #: such as the profile baseline of :mod:`repro.check.hotness`
        self.root: Path | None = Path(root) if root is not None else None
        self.modules: dict[str, ModuleInfo] = {m.name: m for m in modules}
        self._class_index: dict[str, tuple[ModuleInfo, ast.ClassDef]] = {}
        self._subclass_edges: dict[str, set[str]] = {}
        for info in self.modules.values():
            for cls_name, node in info.classes.items():
                self._class_index[f"{info.name}.{cls_name}"] = (info, node)
        for qualname, (info, node) in self._class_index.items():
            for base in node.bases:
                resolved = self._resolve_base(info, base)
                if resolved is not None:
                    self._subclass_edges.setdefault(resolved, set()).add(qualname)

    # -- construction ------------------------------------------------------
    @classmethod
    def load(cls, root: str | Path, package: str | None = None) -> "ProjectModel":
        """Parse every ``.py`` file under the package directory ``root``.

        ``package`` overrides the dotted name of the root package
        (default: the directory's own name).  Files that fail to parse
        are skipped here — the per-file linter already reports them.
        """
        root = Path(root)
        package = package or root.name
        modules = []
        for path in sorted(root.rglob("*.py")):
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError):
                continue
            rel = path.relative_to(root)
            parts = [package] + list(rel.parts[:-1])
            if rel.name != "__init__.py":
                parts.append(rel.stem)
            info = ModuleInfo(
                name=".".join(parts),
                path=path.as_posix(),
                source=source,
                tree=tree,
            )
            _collect_namespace(info)
            modules.append(info)
        return cls(modules, root=root)

    # -- symbol resolution -------------------------------------------------
    def module(self, dotted: str) -> ModuleInfo | None:
        """The module with dotted name ``dotted`` (None if not in project)."""
        return self.modules.get(dotted)

    def resolve(
        self, dotted: str, _depth: int = 0
    ) -> tuple[ModuleInfo, ast.AST] | None:
        """Resolve a fully-dotted symbol to its defining module and node.

        Follows re-export chains (``from x import y`` in an
        ``__init__``) up to a small depth; returns ``None`` for symbols
        defined outside the project (numpy, stdlib, …).
        """
        if _depth > 8:
            return None
        module_name, _, symbol = dotted.rpartition(".")
        while module_name:
            info = self.modules.get(module_name)
            if info is not None:
                if symbol in info.classes:
                    return info, info.classes[symbol]
                if symbol in info.functions:
                    return info, info.functions[symbol]
                if symbol in info.constants:
                    return info, info.constants[symbol]
                if symbol in info.imports:
                    return self.resolve(info.imports[symbol], _depth + 1)
                return None
            # peel one more trailing component (nested attribute access)
            module_name, _, symbol = module_name.rpartition(".")
        return None

    def resolve_local(
        self, info: ModuleInfo, name: str
    ) -> tuple[ModuleInfo, ast.AST] | None:
        """Resolve a bare name as seen from inside ``info``."""
        if name in info.classes:
            return info, info.classes[name]
        if name in info.functions:
            return info, info.functions[name]
        if name in info.constants:
            return info, info.constants[name]
        if name in info.imports:
            return self.resolve(info.imports[name])
        return None

    def qualify(self, info: ModuleInfo, node: ast.expr) -> str | None:
        """Dotted project name for a ``Name``/``Attribute`` expression."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = parts[0]
        if head in info.imports:
            return ".".join([info.imports[head]] + parts[1:])
        if len(parts) == 1 and (
            head in info.classes or head in info.functions or head in info.constants
        ):
            return f"{info.name}.{head}"
        return None

    def _resolve_base(self, info: ModuleInfo, base: ast.expr) -> str | None:
        dotted = self.qualify(info, base)
        if dotted is None:
            return None
        resolved = self.resolve(dotted)
        if resolved is None:
            return dotted
        target_info, node = resolved
        if isinstance(node, ast.ClassDef):
            return f"{target_info.name}.{node.name}"
        return dotted

    # -- class hierarchy ---------------------------------------------------
    def class_def(self, qualname: str) -> tuple[ModuleInfo, ast.ClassDef] | None:
        """Look up a fully-qualified class definition."""
        return self._class_index.get(qualname)

    def subclasses_of(self, qualname: str) -> list[str]:
        """All transitive subclasses of ``qualname``, sorted."""
        seen: set[str] = set()
        frontier = [qualname]
        while frontier:
            current = frontier.pop()
            for child in self._subclass_edges.get(current, ()):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return sorted(seen)

    def iter_classes(self) -> Iterator[tuple[ModuleInfo, ast.ClassDef]]:
        """Every class definition in the project."""
        for info in self.modules.values():
            for node in info.classes.values():
                yield info, node

    # -- import graph ------------------------------------------------------
    def imported_modules(self, dotted: str) -> set[str]:
        """Project modules the module ``dotted`` imports (direct only)."""
        info = self.modules.get(dotted)
        if info is None:
            return set()
        out = set()
        for target in info.imports.values():
            name = target
            while name and name not in self.modules:
                name = name.rpartition(".")[0]
            if name and name != dotted:
                out.add(name)
        return out


class ProjectRule:
    """Base class for whole-program rules (mirror of per-file ``Rule``)."""

    id: str = ""
    slug: str = ""
    rationale: str = ""

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Yield findings for the whole project."""
        raise NotImplementedError


PROJECT_RULES: dict[str, ProjectRule] = {}


def register_project(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a whole-program rule to the registry."""
    rule = cls()
    if not rule.id or not rule.slug:
        raise ValueError(f"rule {cls.__name__} must define id and slug")
    if rule.slug in PROJECT_RULES or any(
        r.id == rule.id for r in PROJECT_RULES.values()
    ):
        raise ValueError(f"duplicate project rule {rule.id}/{rule.slug}")
    PROJECT_RULES[rule.slug] = rule
    return cls


def _load_rule_modules() -> None:
    # the concrete rule families live in sibling modules that import
    # this one; importing them lazily avoids a cycle at module load
    from repro.check import contracts, perf, shapes, taint, units  # noqa: F401


def project_rules(config: LintConfig | None = None) -> list[ProjectRule]:
    """The registered whole-program rules selected by ``config``."""
    _load_rule_modules()
    config = config or LintConfig()
    chosen = []
    for slug, rule in sorted(PROJECT_RULES.items()):
        if config.select is not None and slug not in config.select \
                and rule.id not in config.select:
            continue
        if slug in config.ignore or rule.id in config.ignore:
            continue
        chosen.append(rule)
    return chosen


def analyze_project(
    root: str | Path,
    config: LintConfig | None = None,
    package: str | None = None,
) -> list[Violation]:
    """Run every registered whole-program rule over one package tree.

    Findings honour the same per-line / per-file ``# repro: noqa``
    suppressions as the per-file linter, keyed by the project rule's
    slug or id.
    """
    if not Path(root).is_dir():
        raise FileNotFoundError(f"project root is not a directory: {root}")
    project = ProjectModel.load(root, package=package)
    suppressions = {
        info.path: _Suppressions(info.source) for info in project.modules.values()
    }
    path_to_module = {info.path: info for info in project.modules.values()}
    violations: list[Violation] = []
    for rule in project_rules(config):
        for finding in rule.check(project):
            table = suppressions.get(finding.path)
            if table is not None and table.suppressed(finding.line, rule):
                continue
            if finding.path in path_to_module:
                posix = finding.path
                if any(posix.endswith(frag) for frag in (config or LintConfig()).exclude):
                    continue
            violations.append(Violation(
                finding.path, finding.line, finding.col,
                rule.id, rule.slug, finding.message,
            ))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations
