#!/usr/bin/env python3
"""End-to-end smoke test for the sweep orchestrator (CI job ``sweep``).

Exercises the fault-tolerance and determinism contract of
``repro.experiments.pool`` the way an operator would hit it
(see docs/orchestration.md):

1. **Injected failures converge**: a 2-worker ``selftest`` sweep with
   one cell that SIGKILLs its worker on first attempt and one cell
   that hangs until the per-cell timeout reaps it must produce the
   same ``results_digest`` as an uninjected serial run — retries,
   worker respawns and timeouts leave no trace in the results.
2. **Kill-and-resume parity**: a sweep whose *parent* is SIGKILLed
   mid-flight is resumed via the real CLI with a different worker
   count; the merged ``rollup.json`` must be byte-identical to an
   uninterrupted serial run's.
3. **Real-grid parity**: a tiny ``faultsweep`` grid run serially and
   on 2 workers must produce byte-identical rollups.
4. **Worker hermeticity**: ``repro check --strict --select RPR608``
   must report zero findings — nothing reachable from the pool worker
   entry points consumes ambient RNG, wall-clock or environment state.

Exit code 0 on success; any failure raises (non-zero exit).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: child processes must resolve ``repro`` even when it is not
#: pip-installed (running the script from a bare checkout)
ENV = dict(os.environ)
ENV["PYTHONPATH"] = os.pathsep.join(
    p for p in (str(REPO_ROOT / "src"), ENV.get("PYTHONPATH")) if p)

from repro.experiments import pool  # noqa: E402

# the kill-and-resume spec, mirrored exactly by the CLI flags below
KR_CELLS = 10
KR_SEED = 31
KR_TIMEOUT = 15.0

_VICTIM_CODE = """
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.experiments import pool

class KillParentAfter:
    def __init__(self, after):
        self.after = after
    def on_snapshot(self, record):
        if record.get("kind") == "sweep" \\
                and record.get("done", 0) >= self.after:
            os.kill(os.getpid(), signal.SIGKILL)

from repro.obs.live import LiveBus
bus = LiveBus()
bus.attach(KillParentAfter(after=3))
spec = pool.SweepSpec(kind="selftest", scale="tiny", seed={seed},
                      params={{"cells": {cells}, "sleep_s": 0.05}},
                      timeout_s={timeout})
pool.run_sweep(spec, sys.argv[1], workers=2, live=bus)
raise SystemExit("victim was not killed")
"""


def _sweep_cli(store: Path, *extra: str) -> str:
    """Run ``repro sweep selftest`` and return the printed digest."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "sweep", "selftest",
         "--store", str(store), "--scale", "tiny",
         "--seed", str(KR_SEED), "--timeout", str(KR_TIMEOUT),
         "--param", f"cells={KR_CELLS}", "--param", "sleep_s=0.05",
         *extra],
        check=True, capture_output=True, text=True, env=ENV,
    )
    for line in proc.stderr.splitlines():
        if " digest " in line:
            return line.rsplit(" digest ", 1)[1].strip()
    raise SystemExit(f"no digest line in CLI stderr:\n{proc.stderr}")


def check_injected_failures(tmp: Path) -> None:
    injected = pool.SweepSpec(
        kind="selftest", scale="tiny", seed=7,
        params={"cells": 8, "crash_once": [2], "hang_once": [5],
                "sleep_s": 0.02},
        timeout_s=5.0, retries=2, backoff_s=0.0)
    clean = pool.SweepSpec(kind="selftest", scale="tiny", seed=7,
                           params={"cells": 8, "sleep_s": 0.02})
    r_inj = pool.run_sweep(injected, tmp / "injected", workers=2)
    r_clean = pool.run_sweep(clean, tmp / "clean", workers=0)
    assert r_inj.completed == r_inj.total == 8, r_inj.quarantined
    d_inj = pool.results_digest(r_inj.rollup)
    d_clean = pool.results_digest(r_clean.rollup)
    assert d_inj == d_clean, \
        f"injected crash+hang changed results: {d_inj} != {d_clean}"
    print(f"injected crash+hang converged to clean results: {d_inj[:16]}…")


def check_kill_and_resume(tmp: Path) -> None:
    # uninterrupted serial reference through the real CLI
    ref_store = tmp / "kr-ref"
    ref_digest = _sweep_cli(ref_store, "--workers", "0")

    # victim: 2 workers, parent SIGKILLed after 3 completed cells
    store = tmp / "kr-store"
    code = _VICTIM_CODE.format(src=str(REPO_ROOT / "src"), seed=KR_SEED,
                               cells=KR_CELLS, timeout=KR_TIMEOUT)
    victim = subprocess.run([sys.executable, "-c", code, str(store)],
                            capture_output=True, text=True, timeout=600,
                            env=ENV)
    assert victim.returncode == -signal.SIGKILL, \
        f"victim rc={victim.returncode}:\n{victim.stderr}"
    scan = pool.SweepStore(store).scan()
    assert 0 < len(scan.completed) < KR_CELLS, len(scan.completed)
    print(f"parent SIGKILLed with {len(scan.completed)}/{KR_CELLS} "
          "cells durable")

    # resume through the CLI with a different worker count
    res_digest = _sweep_cli(store, "--workers", "3", "--resume")
    assert res_digest == ref_digest, \
        f"resumed digest diverged: {res_digest} != {ref_digest}"
    assert (store / "rollup.json").read_bytes() \
        == (ref_store / "rollup.json").read_bytes()
    print(f"kill-and-resume rollup byte-identical to serial: "
          f"{ref_digest[:16]}…")


def check_faultsweep_parity(tmp: Path) -> None:
    spec = pool.SweepSpec(
        kind="faultsweep", scale="tiny", seed=0,
        params={"policies": ["FCFS"], "mtbf_grid": [0.0, 2000.0]})
    serial = pool.run_sweep(spec, tmp / "fs-serial", workers=0)
    par = pool.run_sweep(spec, tmp / "fs-par", workers=2)
    assert serial.completed == serial.total == 2, serial.quarantined
    assert par.rollup_path.read_bytes() == serial.rollup_path.read_bytes()
    print(f"faultsweep grid serial == 2-worker: {serial.digest[:16]}…")


def check_rpr608_clean() -> None:
    subprocess.run(
        [sys.executable, "-m", "repro", "check", "--strict", "-q",
         "--select", "RPR608"],
        check=True, cwd=REPO_ROOT, env=ENV)
    print("RPR608 pool-worker-hermetic baseline clean")


def main(tmp: Path) -> None:
    check_injected_failures(tmp)
    check_kill_and_resume(tmp)
    check_faultsweep_parity(tmp)
    check_rpr608_clean()
    print("sweep smoke OK")


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-sweep-smoke-") as tmp:
        main(Path(tmp))
