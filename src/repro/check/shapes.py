"""RPR3xx — static verification of the DRAS network architecture.

The paper pins the network down to exact trainable-parameter counts
(Table III: 21,890,053 for Theta-PG).  The repo *tests* those counts by
building the networks with NumPy, but a test only runs what it
imports — a drive-by edit to :func:`repro.nn.network.build_dras_network`
or :class:`repro.core.config.DRASConfig` is caught late, at test time,
with an opaque numeric diff.

This module proves the same facts **at lint time, without importing the
code under analysis** (no NumPy, no ``repro.nn``):

1. it statically evaluates the Table III configurations from
   ``repro/core/config.py`` (dataclass defaults + the ``theta()`` /
   ``cori()`` presets + the ``pg_dims`` / ``dql_dims`` properties),
2. it abstractly interprets the ``Network([...])`` literal inside
   ``build_dras_network`` using the known layer semantics
   (``Conv1x2``: ``[B, R, 2] -> [B, R]``, 3 params; ``Dense(i, o)``:
   ``[B, i] -> [B, o]``, ``i*o (+ o with bias)``; ``LeakyReLU``:
   shape-preserving, 0 params),
3. it checks layer-to-layer shape compatibility (**RPR301**) and
   compares the abstract parameter totals against both the
   ``NetworkDims.param_count`` formula and the paper's Table III
   literals in ``repro/experiments/table3.py`` (**RPR302**),
4. it re-derives the *batched* shape contract — the symbolic batch
   dimension ``B`` must survive every layer so the network maps
   ``[B, rows, 2] -> [B, outputs]`` for every Table III cell — and
   verifies the DRAS agents route all inference through the batched
   ``score_window`` entry point rather than ad-hoc
   ``network.forward`` calls (**RPR303**).

The Cori-DQL cell of Table III is internally inconsistent (DESIGN.md
§4), so RPR302 checks that cell against the formula only, never against
the paper literal.

Both rules are *not applicable* (yield nothing) when the anchor modules
are absent from the analyzed project — e.g. when the analyzer is
pointed at a scratch tree in tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.check.project import (
    ModuleInfo,
    ProjectFinding,
    ProjectModel,
    ProjectRule,
    register_project,
)

CONFIG_MODULE = "repro.core.config"
NETWORK_MODULE = "repro.nn.network"
TABLE3_MODULE = "repro.experiments.table3"

#: the symbolic batch dimension carried through the abstract tensors
BATCH_DIM = "B"

#: agent modules whose inference must route through ``score_window``
AGENT_MODULES = ("repro.core.dras_pg", "repro.core.dras_dql")

#: the only functions allowed to call ``network.forward`` directly in
#: the agent modules: the batched inference entry point and the batched
#: training step (which stacks transitions into one minibatch forward)
FORWARD_CALLERS = ("score_window", "update")

#: Table III cells whose paper literal matches the architecture; the
#: cori-dql literal is documented as inconsistent and is skipped.
PAPER_CONSISTENT_CELLS = ("theta-pg", "theta-dql", "cori-pg")


def _eval(node: ast.expr | None, env: dict[str, float]) -> float | None:
    """Evaluate a constant-foldable expression (None when not static)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
            return None
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.Attribute):
        # `self.window` inside a property body -> the config value
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return env.get(node.attr)
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        value = _eval(node.operand, env)
        return None if value is None else -value
    if isinstance(node, ast.BinOp):
        left = _eval(node.left, env)
        right = _eval(node.right, env)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.FloorDiv) and right:
            return left // right
        if isinstance(node.op, ast.Div) and right:
            return left / right
        if isinstance(node.op, ast.Pow):
            return left ** right
    return None


@dataclass
class AbstractLayer:
    """One statically-interpreted layer of the ``Network([...])`` stack."""

    kind: str                 #: class name: Conv1x2 / Dense / LeakyReLU
    lineno: int
    in_width: int | None = None
    out_width: int | None = None
    bias: bool = True
    #: abstract tensor shapes around the layer; entries are ints,
    #: ``BATCH_DIM`` for the symbolic batch axis, or None for unknown
    in_shape: tuple | None = None
    out_shape: tuple | None = None

    def param_count(self) -> int:
        """Trainable parameters this layer contributes."""
        if self.kind == "Conv1x2":
            return 3  # 1x2 kernel weight (2) + bias (1)
        if self.kind == "Dense":
            assert self.in_width is not None and self.out_width is not None
            return self.in_width * self.out_width + (
                self.out_width if self.bias else 0
            )
        return 0


@dataclass
class NetworkSummary:
    """Result of abstractly interpreting one network configuration."""

    name: str
    dims: dict[str, int]
    layers: list[AbstractLayer] = field(default_factory=list)
    param_total: int | None = None
    output_width: int | None = None
    #: the full abstract output shape, e.g. ``(BATCH_DIM, 50)``
    output_shape: tuple | None = None
    findings: list[str] = field(default_factory=list)


def format_shape(shape: tuple | None) -> str:
    """Render an abstract shape tuple as ``[B, 4460, 2]``-style text."""
    if shape is None:
        return "?"
    return "[" + ", ".join(
        "?" if d is None else str(d) for d in shape
    ) + "]"


# -- configuration extraction ---------------------------------------------

def _class_body(info: ModuleInfo, name: str) -> ast.ClassDef | None:
    return info.classes.get(name)


def _dataclass_defaults(cls: ast.ClassDef) -> dict[str, float]:
    """Numeric dataclass field defaults from annotated assignments."""
    out: dict[str, float] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            value = _eval(stmt.value, {})
            if value is not None:
                out[stmt.target.id] = value
    return out


def _preset_kwargs(cls: ast.ClassDef, method: str) -> dict[str, float] | None:
    """Statically evaluated ``cls(...)`` kwargs inside a preset method."""
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == method:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "cls"
                ):
                    kwargs: dict[str, float] = {}
                    for kw in node.keywords:
                        if kw.arg is None:
                            continue
                        value = _eval(kw.value, {})
                        if value is not None:
                            kwargs[kw.arg] = value
                    return kwargs
            return None
    return None


def _property_dims(
    cls: ast.ClassDef, prop: str, env: dict[str, float]
) -> dict[str, int] | None:
    """Evaluate a ``*_dims`` property returning ``NetworkDims(...)``."""
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == prop:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                    dims: dict[str, int] = {}
                    for kw in node.value.keywords:
                        if kw.arg is None:
                            continue
                        value = _eval(kw.value, env)
                        if value is None:
                            return None
                        dims[kw.arg] = int(value)
                    return dims or None
            return None
    return None


def _param_count_formula(cls: ast.ClassDef, dims: dict[str, int]) -> int | None:
    """Evaluate ``NetworkDims.param_count`` for concrete dimensions."""
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "param_count":
            for node in ast.walk(stmt):
                if isinstance(node, ast.Return):
                    value = _eval(node.value, dict(dims))
                    return None if value is None else int(value)
    return None


def static_table3_configs(project: ProjectModel) -> dict[str, dict[str, int]] | None:
    """The four Table III ``{rows, hidden1, hidden2, outputs}`` dicts.

    Returns ``None`` when ``repro.core.config`` is not in the project or
    its structure defeated static evaluation.
    """
    info = project.module(CONFIG_MODULE)
    if info is None:
        return None
    config_cls = _class_body(info, "DRASConfig")
    if config_cls is None:
        return None
    defaults = _dataclass_defaults(config_cls)
    out: dict[str, dict[str, int]] = {}
    for system, method in (("theta", "theta"), ("cori", "cori")):
        kwargs = _preset_kwargs(config_cls, method)
        if kwargs is None:
            return None
        env = dict(defaults)
        env.update(kwargs)
        for cell, prop in ((f"{system}-pg", "pg_dims"), (f"{system}-dql", "dql_dims")):
            dims = _property_dims(config_cls, prop, env)
            if dims is None:
                return None
            out[cell] = dims
    return out


def static_formula_counts(
    project: ProjectModel, configs: dict[str, dict[str, int]]
) -> dict[str, int] | None:
    """``NetworkDims.param_count`` evaluated for each Table III cell."""
    info = project.module(CONFIG_MODULE)
    if info is None:
        return None
    dims_cls = _class_body(info, "NetworkDims")
    if dims_cls is None:
        return None
    out: dict[str, int] = {}
    for cell, dims in configs.items():
        count = _param_count_formula(dims_cls, dims)
        if count is None:
            return None
        out[cell] = count
    return out


def paper_param_counts(project: ProjectModel) -> dict[str, int] | None:
    """The ``PAPER_PARAM_COUNTS`` literal from ``experiments/table3.py``."""
    info = project.module(TABLE3_MODULE)
    if info is None:
        return None
    literal = info.constants.get("PAPER_PARAM_COUNTS")
    if not isinstance(literal, ast.Dict):
        return None
    out: dict[str, int] = {}
    for key, value in zip(literal.keys, literal.values):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, int)
        ):
            out[key.value] = value.value
    return out or None


# -- network interpretation ------------------------------------------------

def _network_layer_calls(info: ModuleInfo) -> list[ast.Call] | None:
    """The layer constructor calls inside ``build_dras_network``."""
    builder = info.functions.get("build_dras_network")
    if builder is None:
        return None
    for node in ast.walk(builder):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Network"
            and node.args
            and isinstance(node.args[0], (ast.List, ast.Tuple))
        ):
            calls = []
            for elt in node.args[0].elts:
                if not isinstance(elt, ast.Call):
                    return None
                calls.append(elt)
            return calls
    return None


def interpret_network(
    project: ProjectModel, name: str, dims: dict[str, int]
) -> NetworkSummary | None:
    """Abstractly run one Table III configuration through the builder.

    The input is the abstract tensor ``[B, rows, 2]``; each layer either
    transforms it per the documented semantics or records a finding.
    Returns ``None`` when ``repro.nn.network`` is not in the project.
    """
    info = project.module(NETWORK_MODULE)
    if info is None:
        return None
    summary = NetworkSummary(name=name, dims=dims)
    calls = _network_layer_calls(info)
    if calls is None:
        summary.findings.append(
            "could not locate the Network([...]) layer list inside "
            "build_dras_network; RPR301/RPR302 cannot verify the architecture"
        )
        return summary
    env = {k: float(v) for k, v in dims.items()}
    # abstract input: [B, rows, 2] — the batch axis stays symbolic so
    # RPR303 can prove every layer preserves it unchanged
    shape: tuple = (BATCH_DIM, dims.get("rows"), 2)
    total = 0
    for call in calls:
        kind = call.func.id if isinstance(call.func, ast.Name) else "?"
        layer = AbstractLayer(kind=kind, lineno=call.lineno, in_shape=shape)
        if kind == "Conv1x2":
            if len(shape) != 3:
                summary.findings.append(
                    f"line {call.lineno}: Conv1x2 expects a 3-D input "
                    f"[B, rows, 2] but receives a {len(shape)}-D tensor"
                )
            shape = shape[:2]  # [B, rows]
        elif kind == "Dense":
            in_w = _eval(call.args[0], env) if len(call.args) > 0 else None
            out_w = _eval(call.args[1], env) if len(call.args) > 1 else None
            bias = True
            for kw in call.keywords:
                if kw.arg == "bias" and isinstance(kw.value, ast.Constant):
                    bias = bool(kw.value.value)
            if in_w is None or out_w is None:
                summary.findings.append(
                    f"line {call.lineno}: Dense dimensions are not statically "
                    "evaluable from the builder arguments"
                )
                return summary
            layer.in_width, layer.out_width, layer.bias = int(in_w), int(out_w), bias
            width = shape[-1] if shape else None
            if len(shape) != 2:
                summary.findings.append(
                    f"line {call.lineno}: Dense expects a 2-D input but "
                    f"receives a {len(shape)}-D tensor"
                )
            elif isinstance(width, int) and int(in_w) != width:
                summary.findings.append(
                    f"line {call.lineno}: Dense input width {int(in_w)} does "
                    f"not match the previous layer's output width {width} "
                    f"({name})"
                )
            shape = (shape[0] if shape else BATCH_DIM, int(out_w))
        elif kind == "LeakyReLU":
            pass  # shape- and parameter-preserving
        else:
            summary.findings.append(
                f"line {call.lineno}: unknown layer type {kind!r}; the "
                "abstract interpreter only knows Conv1x2/Dense/LeakyReLU"
            )
            return summary
        layer.out_shape = shape
        summary.layers.append(layer)
        total += layer.param_count()
    summary.param_total = total
    summary.output_shape = shape
    width = shape[-1] if shape else None
    summary.output_width = width if isinstance(width, int) else None
    expected_out = dims.get("outputs")
    if expected_out is not None and isinstance(width, int) and width != expected_out:
        summary.findings.append(
            f"network output width {width} does not match the configured "
            f"outputs={expected_out} ({name})"
        )
    return summary


def static_table3_counts(project: ProjectModel) -> dict[str, int]:
    """Layer-derived parameter totals per Table III cell (test helper).

    Raises :class:`ValueError` when any stage of the static pipeline
    fails — the numpy-free proof in the test suite relies on this being
    loud rather than silently empty.
    """
    configs = static_table3_configs(project)
    if configs is None:
        raise ValueError("could not statically evaluate Table III configs")
    out: dict[str, int] = {}
    for cell, dims in configs.items():
        summary = interpret_network(project, cell, dims)
        if summary is None or summary.param_total is None:
            raise ValueError(f"could not interpret the network for {cell}")
        if summary.findings:
            raise ValueError(f"{cell}: " + "; ".join(summary.findings))
        out[cell] = summary.param_total
    return out


def _network_anchor(project: ProjectModel) -> tuple[str, int]:
    info = project.module(NETWORK_MODULE)
    assert info is not None
    builder = info.functions.get("build_dras_network")
    return info.path, builder.lineno if builder is not None else 1


@register_project
class LayerShapeRule(ProjectRule):
    """Inter-layer shape compatibility of ``build_dras_network``."""

    id = "RPR301"
    slug = "nn-shape"
    rationale = (
        "a Dense whose input width disagrees with the previous layer only "
        "fails when the network is actually built; prove compatibility "
        "statically for every Table III configuration"
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Interpret every Table III config; report shape breaks."""
        if project.module(NETWORK_MODULE) is None:
            return
        configs = static_table3_configs(project)
        path, lineno = _network_anchor(project)
        if configs is None:
            if project.module(CONFIG_MODULE) is not None:
                yield ProjectFinding(path, lineno, 0, (
                    "could not statically evaluate the Table III "
                    "configurations from repro.core.config"
                ))
            return
        seen: set[str] = set()
        for cell, dims in configs.items():
            summary = interpret_network(project, cell, dims)
            if summary is None:
                return
            for message in summary.findings:
                if message not in seen:
                    seen.add(message)
                    yield ProjectFinding(path, lineno, 0, message)


@register_project
class ParamCountRule(ProjectRule):
    """Table III parameter counts, proved from the AST alone."""

    id = "RPR302"
    slug = "nn-params"
    rationale = (
        "the paper's headline 21,890,053-parameter count must hold for the "
        "code as written, not just for the code as last tested"
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Compare layer-derived totals to the formula and the paper."""
        if project.module(NETWORK_MODULE) is None or \
                project.module(CONFIG_MODULE) is None:
            return
        configs = static_table3_configs(project)
        if configs is None:
            return  # RPR301 already reports the extraction failure
        path, lineno = _network_anchor(project)
        formula = static_formula_counts(project, configs)
        paper = paper_param_counts(project)
        for cell, dims in configs.items():
            summary = interpret_network(project, cell, dims)
            if summary is None or summary.param_total is None or summary.findings:
                continue  # shape findings already reported by RPR301
            derived = summary.param_total
            if formula is not None and formula.get(cell) not in (None, derived):
                yield ProjectFinding(path, lineno, 0, (
                    f"{cell}: layer-derived parameter count {derived:,} "
                    f"disagrees with NetworkDims.param_count = "
                    f"{formula[cell]:,}"
                ))
            if (
                paper is not None
                and cell in PAPER_CONSISTENT_CELLS
                and cell in paper
                and paper[cell] != derived
            ):
                yield ProjectFinding(path, lineno, 0, (
                    f"{cell}: layer-derived parameter count {derived:,} "
                    f"disagrees with Table III's {paper[cell]:,}"
                ))


def _forward_call_sites(info: ModuleInfo) -> list[tuple[int, str | None]]:
    """Every ``<expr>.forward(...)`` call with its enclosing function.

    Returns ``(lineno, function_name)`` pairs; the name is ``None`` for
    module-level calls.  Nested functions report the innermost name.
    """
    sites: list[tuple[int, str | None]] = []

    def walk(node: ast.AST, current: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            name = current
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "forward"
            ):
                sites.append((child.lineno, name))
            walk(child, name)

    walk(info.tree, None)
    return sites


def _has_score_window(info: ModuleInfo) -> bool:
    """Whether any class in the module defines a ``score_window`` method."""
    for cls in info.classes.values():
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt.name == "score_window":
                return True
    return False


@register_project
class BatchedShapeRule(ProjectRule):
    """The batched inference contract, proved from the AST alone."""

    id = "RPR303"
    slug = "nn-batch"
    rationale = (
        "batched scoring is the hot path: the network must map "
        "[B, rows, 2] -> [B, outputs] with the batch axis untouched by "
        "every layer, and the agents must funnel all inference through "
        "the batched score_window entry point so no single-sample "
        "network path can reappear"
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Re-derive batched shapes; audit agent forward call sites."""
        yield from self._check_network(project)
        yield from self._check_agents(project)

    def _check_network(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Assert ``[B, rows, 2] -> [B, outputs]`` for every Table III cell."""
        if project.module(NETWORK_MODULE) is None:
            return
        configs = static_table3_configs(project)
        if configs is None:
            return  # RPR301 already reports the extraction failure
        path, lineno = _network_anchor(project)
        for cell, dims in configs.items():
            summary = interpret_network(project, cell, dims)
            if summary is None or summary.findings:
                continue  # shape breaks are RPR301's findings
            for layer in summary.layers:
                if layer.out_shape is not None and (
                    not layer.out_shape or layer.out_shape[0] != BATCH_DIM
                ):
                    yield ProjectFinding(path, layer.lineno, 0, (
                        f"{cell}: {layer.kind} does not preserve the "
                        f"symbolic batch dimension "
                        f"({format_shape(layer.in_shape)} -> "
                        f"{format_shape(layer.out_shape)})"
                    ))
            expected = (BATCH_DIM, dims.get("outputs"))
            if (
                summary.output_shape is not None
                and dims.get("outputs") is not None
                and summary.output_shape != expected
            ):
                yield ProjectFinding(path, lineno, 0, (
                    f"{cell}: network maps "
                    f"{format_shape((BATCH_DIM, dims.get('rows'), 2))} to "
                    f"{format_shape(summary.output_shape)}, expected "
                    f"{format_shape(expected)}"
                ))

    def _check_agents(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Every agent ``forward`` call must sit in score_window/update."""
        for dotted in AGENT_MODULES:
            info = project.module(dotted)
            if info is None:
                continue  # not applicable on scratch trees
            if not _has_score_window(info):
                yield ProjectFinding(info.path, 1, 0, (
                    f"{dotted} defines no batched score_window entry "
                    "point; batched inference has no single place to "
                    "route through"
                ))
            for lineno, func in _forward_call_sites(info):
                if func not in FORWARD_CALLERS:
                    where = f"in {func}()" if func else "at module level"
                    yield ProjectFinding(info.path, lineno, 0, (
                        f"network.forward called {where}; route "
                        "inference through the batched score_window "
                        "entry point (or the batched update step)"
                    ))
