"""Benchmark: regenerate Fig 2 (job counts / core hours by size)."""

import pytest
from conftest import SCALE, save_report

from repro.experiments import fig2


def test_fig2(benchmark, report_dir):
    shares = benchmark.pedantic(lambda: fig2.run(SCALE), rounds=1, iterations=1)
    text = fig2.report(shares)
    save_report(report_dir, "fig2", text)

    for s in shares.values():
        assert sum(s.job_share) == pytest.approx(1.0)
        assert sum(s.core_hour_share) == pytest.approx(1.0)
    # Cori (capacity): the smallest category dominates the job count
    assert shares["cori"].job_share[0] > 0.5
    # Theta (capability): large categories take a bigger slice of core
    # hours than of job counts — the paper's inner/outer circle contrast
    theta = shares["theta"]
    assert sum(theta.core_hour_share[2:]) > sum(theta.job_share[2:])
