"""Tracer round-trip, span-tree reconstruction, and bit-identity."""

import io
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.obs.trace import (
    TRACE_SCHEMA,
    Tracer,
    TraceWarning,
    build_span_tree,
    global_tracer,
    read_trace,
    set_global_tracer,
)
from repro.schedulers.fcfs import FCFSEasy
from repro.sim.engine import run_simulation
from repro.workload.models import ThetaModel


REPO = Path(__file__).resolve().parent.parent


def _jobs(n=120, nodes=32, seed=0):
    model = ThetaModel.scaled(nodes)
    return model.generate(n, np.random.default_rng(seed))


class TestTracerEmission:
    def test_meta_record_first(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path):
            pass
        records = read_trace(path)
        assert records[0] == {"type": "meta", "schema": TRACE_SCHEMA}

    def test_round_trip_span_tree(self, tmp_path):
        """emit -> parse JSONL -> reconstruct the exact span tree."""
        path = tmp_path / "t.jsonl"
        with Tracer(path) as tr:
            outer = tr.begin("outer", t=1.0)
            tr.event("boom", job=7)
            with tr.span("inner", depth=2):
                tr.counter("queue", 3)
            tr.end(outer)
            tr.event("orphan")  # outside any span: dropped by the builder

        roots = build_span_tree(read_trace(path))
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "outer"
        assert root.fields == {"t": 1.0}
        assert root.wall_end is not None and root.duration >= 0.0
        assert [e["name"] for e in root.events] == ["boom"]
        assert root.events[0]["job"] == 7
        assert [c.name for c in root.children] == ["inner"]
        inner = root.children[0]
        assert inner.pid == root.sid
        assert inner.fields == {"depth": 2}
        assert [c["value"] for c in inner.counters] == [3]
        assert [s.name for s in root.walk()] == ["outer", "inner"]

    def test_end_must_match_innermost(self):
        tr = Tracer(io.StringIO())
        a = tr.begin("a")
        tr.begin("b")
        with pytest.raises(ValueError, match="innermost"):
            tr.end(a)

    def test_file_like_sink_not_closed(self):
        sink = io.StringIO()
        with Tracer(sink, buffer_lines=1) as tr:
            tr.event("x")
        assert not sink.closed
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert [r["type"] for r in lines] == ["meta", "event"]

    def test_buffering_flushes_on_threshold(self):
        sink = io.StringIO()
        tr = Tracer(sink, buffer_lines=4)
        assert sink.getvalue() == ""  # meta still buffered
        for _ in range(3):
            tr.event("e")
        assert len(sink.getvalue().splitlines()) == 4

    def test_numpy_fields_serialized(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path) as tr:
            tr.event("e", size=np.int64(5), frac=np.float64(0.5))
        record = read_trace(path)[1]
        assert record["size"] == 5 and record["frac"] == 0.5

    def test_invalid_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(path)

    def test_unclosed_span_has_zero_duration(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tr = Tracer(path)
        tr.begin("crashed")
        tr.close()
        (root,) = build_span_tree(read_trace(path))
        assert root.wall_end is None and root.duration == 0.0


class TestGlobalTracer:
    def test_set_and_restore(self):
        sink = io.StringIO()
        tr = Tracer(sink)
        previous = set_global_tracer(tr)
        try:
            assert global_tracer() is tr
        finally:
            set_global_tracer(previous)
        assert global_tracer() is previous


class TestEngineTracing:
    def test_traced_run_bit_identical(self, tmp_path):
        """Tracing must not perturb the simulation in any way."""
        jobs = _jobs()
        plain = run_simulation(32, FCFSEasy(), [j.copy_fresh() for j in jobs])
        traced = run_simulation(
            32, FCFSEasy(), [j.copy_fresh() for j in jobs],
            trace=tmp_path / "t.jsonl",
        )
        for a, b in zip(plain.jobs, traced.jobs):
            assert (a.start_time, a.end_time, a.mode) == (
                b.start_time, b.end_time, b.mode)
        assert plain.makespan == traced.makespan
        assert plain.num_instances == traced.num_instances

    def test_engine_emits_instance_spans_and_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        result = run_simulation(32, FCFSEasy(), _jobs(), trace=path)
        roots = build_span_tree(read_trace(path))
        instances = [s for s in roots if s.name == "engine.instance"]
        assert len(instances) == result.num_instances
        events = [e for s in instances for e in s.events]
        names = {e["name"] for e in events}
        assert "engine.allocate" in names
        assert "engine.release" in names
        allocs = [e for e in events if e["name"] == "engine.allocate"]
        assert len(allocs) == len(result.finished_jobs)
        # every event carries the engine clock alongside the wall clock
        assert all("t" in e and "wall" in e for e in events)


class TestTraceDurability:
    def test_exit_flushes_under_exception(self, tmp_path):
        """The ``with`` block persists the buffered tail when it raises."""
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError):
            with Tracer(path, buffer_lines=10_000) as tr:
                tr.begin("doomed")
                tr.event("last_words", n=1)
                raise RuntimeError("boom")
        records = read_trace(path)
        assert [r["type"] for r in records] == ["meta", "begin", "event"]
        assert records[2]["n"] == 1

    def test_crashed_process_leaves_parseable_trace(self, tmp_path):
        """REPRO_TRACE + an unhandled exception: atexit flush still
        persists everything emitted before the crash."""
        out = tmp_path / "crash.jsonl"
        code = (
            "import numpy as np\n"
            "from repro.schedulers.fcfs import FCFSEasy\n"
            "from repro.sim.engine import run_simulation\n"
            "from repro.workload.models import ThetaModel\n"
            "class Exploding(FCFSEasy):\n"
            "    def schedule(self, view):\n"
            "        if view.now > 0:\n"
            "            raise RuntimeError('mid-run crash')\n"
            "        return super().schedule(view)\n"
            "jobs = ThetaModel.scaled(32).generate("
            "40, np.random.default_rng(0))\n"
            "run_simulation(32, Exploding(), jobs)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": str(REPO / "src"),
                 "REPRO_TRACE": str(out), "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode != 0
        assert "mid-run crash" in proc.stderr
        records = read_trace(out)  # strict parse: every line survived whole
        assert records[0]["type"] == "meta"
        instances = [s for s in build_span_tree(records)
                     if s.name == "engine.instance"]
        assert instances, "spans emitted before the crash must survive"
        # the span the policy raised inside is unclosed but present
        assert any(s.wall_end is None for s in instances)


class TestLenientParsing:
    def test_lenient_read_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path) as tr:
            with tr.span("ok"):
                tr.event("e")
        # simulate a crash mid-write: corrupt tail + a stray array line
        with path.open("a", encoding="utf-8") as fh:
            fh.write('[1, 2]\n{"type": "beg')
        with pytest.warns(TraceWarning):
            records = read_trace(path, strict=False)
        assert [r["type"] for r in records] == [
            "meta", "begin", "event", "end"]

    def test_build_span_tree_survives_malformed_records(self):
        records = [
            {"type": "begin", "name": "a", "sid": 1, "wall": 0.0},
            {"type": "begin", "name": "no_sid"},          # dropped
            {"type": "end", "sid": 99, "wall": 1.0},      # unknown span
            {"type": "end", "sid": "x", "wall": 1.0},     # bogus sid type
            {"type": "event", "name": "e", "pid": 1},
            {"type": "event", "name": "orphan", "pid": 42},
            "not a dict",
            {"type": "end", "sid": 1, "wall": 2.0},
        ]
        (root,) = build_span_tree(records)
        assert root.name == "a"
        assert root.wall_end == 2.0
        assert [e["name"] for e in root.events] == ["e"]
