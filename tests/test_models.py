"""Unit tests for the Theta/Cori workload models."""

import numpy as np
import pytest

from repro.sim.job import Job
from repro.workload.models import CoriModel, ThetaModel, WorkloadModel


class TestThetaModel:
    def test_paper_dimensions(self):
        model = ThetaModel.paper()
        assert model.num_nodes == 4360
        # smallest job on Theta is 128 nodes
        assert min(model.sizes.sizes) == 128
        assert model.runtimes.max_runtime == 24 * 3600.0
        assert model.dependency_prob == pytest.approx(0.0225)

    def test_scaled_sizes_within_system(self):
        for n in (64, 256, 1024):
            model = ThetaModel.scaled(n)
            assert max(model.sizes.sizes) <= n

    def test_offered_load_matches_target(self):
        model = ThetaModel.scaled(256, utilization=0.9)
        assert model.offered_load() == pytest.approx(0.9, rel=0.05)

    def test_generate_basic_invariants(self, rng):
        model = ThetaModel.scaled(128)
        jobs = model.generate(300, rng)
        assert len(jobs) == 300
        assert all(isinstance(j, Job) for j in jobs)
        assert all(1 <= j.size <= 128 for j in jobs)
        assert all(j.runtime <= j.walltime for j in jobs)
        assert all(j.runtime <= ThetaModel.MAX_RUNTIME for j in jobs)
        submits = [j.submit_time for j in jobs]
        assert submits == sorted(submits)

    def test_priority_threshold(self, rng):
        model = ThetaModel.scaled(128)
        jobs = model.generate(500, rng)
        for j in jobs:
            assert j.priority == (1 if j.size >= model.priority_threshold else 0)

    def test_dependencies_reference_earlier_jobs(self, rng):
        model = ThetaModel.scaled(128)
        jobs = model.generate(500, rng)
        ids_seen = set()
        for j in jobs:
            for dep in j.dependencies:
                assert dep in ids_seen
            ids_seen.add(j.job_id)

    def test_load_factor_scales_rate(self, rng):
        model = ThetaModel.scaled(128)
        slow = model.generate(400, np.random.default_rng(1), load_factor=0.5)
        fast = model.generate(400, np.random.default_rng(1), load_factor=2.0)
        assert fast[-1].submit_time < slow[-1].submit_time


class TestCoriModel:
    def test_paper_dimensions(self):
        model = CoriModel.paper()
        assert model.num_nodes == 12076
        assert min(model.sizes.sizes) == 1
        assert model.runtimes.max_runtime == 7 * 24 * 3600.0

    def test_one_node_jobs_dominate(self, rng):
        model = CoriModel.scaled(256)
        jobs = model.generate(2000, rng)
        share_one = sum(1 for j in jobs if j.size == 1) / len(jobs)
        assert share_one > 0.5


class TestWorkloadModelValidation:
    def test_size_mix_exceeding_system_rejected(self):
        base = ThetaModel.scaled(128)
        with pytest.raises(ValueError, match="size mix"):
            WorkloadModel(
                name="bad",
                num_nodes=4,
                arrivals=base.arrivals,
                sizes=base.sizes,
                runtimes=base.runtimes,
                priority_threshold=1,
            )

    def test_generate_rejects_bad_args(self, rng):
        model = ThetaModel.scaled(64)
        with pytest.raises(ValueError):
            model.generate(0, rng)
        with pytest.raises(ValueError):
            model.generate(10, rng, load_factor=0.0)

    def test_generate_span_bounds_times(self, rng):
        model = ThetaModel.scaled(64)
        jobs = model.generate_span(3600.0 * 12, rng, start=100.0)
        assert jobs, "span should produce at least one job"
        assert all(100.0 <= j.submit_time < 100.0 + 12 * 3600.0 for j in jobs)
