"""Crash-safe training checkpoints.

A training run is hours of episodes; a crash (OOM kill, node reboot,
SIGKILL) must not lose it.  :func:`save_checkpoint` persists everything
needed to continue *bit-identically*:

* the complete agent state (weights, Adam moments, PG baseline or DQL
  epsilon) via the :mod:`repro.core.persistence` array helpers;
* the agent's RNG stream (``bit_generator.state``), so action sampling
  after resume continues exactly where the interrupted run left off;
* the episode history (one record per completed episode), which tells
  the trainer how many jobsets to skip on resume;
* the telemetry byte offset, so a resumed run truncates half-written
  telemetry tails instead of duplicating episodes;
* the fault config active during training, for manifest round-trips.

Writes go through :func:`repro.core.persistence.atomic_savez`
(tmp file + fsync + ``os.replace``): a SIGKILL mid-save leaves the
previous checkpoint intact.  An interrupted run resumed from its latest
checkpoint reaches the same final validation score as an uninterrupted
run with the same seed — the property ``tests/test_checkpoint_resume``
proves with a real SIGKILLed subprocess.

Pickle-safety contract: every object type named here (the agents via
the :data:`repro.core.persistence._KINDS` registry,
:class:`~repro.sim.faults.FaultConfig`, :class:`LoadedCheckpoint`,
episode records) crosses serialization — and, for the multiprocessing
sweep runner, fork — boundaries, so none may capture open file
handles, locks, lambdas or generator iterators in instance
attributes.  RPR604 (``unpicklable-capture``,
:mod:`repro.check.taint`) enforces this statically over the whole
closure of classes reachable from this module;
``tests/test_pickle_safety.py`` round-trips the real objects.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core import persistence as _persist
from repro.sim.faults import FaultConfig

CHECKPOINT_VERSION = 1


@dataclass
class LoadedCheckpoint:
    """Everything :func:`load_checkpoint` recovers from disk."""

    agent: object               #: fully restored agent (incl. RNG stream)
    episodes: list[dict]        #: completed-episode records (JSON form)
    telemetry_offset: int       #: byte offset of the telemetry file
    faults: FaultConfig | None  #: fault config active during training

    @property
    def episodes_done(self) -> int:
        """Number of episodes completed before the checkpoint."""
        return len(self.episodes)


def save_checkpoint(
    path: str | Path,
    agent,
    episodes: list[dict],
    telemetry_offset: int = 0,
    faults: FaultConfig | None = None,
) -> None:
    """Atomically write a resumable training checkpoint.

    ``episodes`` are JSON-serialisable records of completed episodes
    (the trainer passes ``dataclasses.asdict`` of its
    :class:`~repro.rl.trainer.EpisodeStats`).
    """
    meta = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "agent": _persist.agent_meta(agent),
        "episodes": episodes,
        "rng_state": _rng_state_json(agent.rng),
        "telemetry_offset": int(telemetry_offset),
        "faults": faults.as_dict() if faults is not None else None,
    }
    arrays = _persist.agent_arrays(agent)
    arrays["__meta__"] = np.array(json.dumps(meta))
    _persist.atomic_savez(path, arrays)


def load_checkpoint(path: str | Path) -> LoadedCheckpoint:
    """Restore a training checkpoint written by :func:`save_checkpoint`.

    Raises :class:`repro.core.persistence.CheckpointError` with an
    actionable message on missing/truncated/corrupted files.
    """
    path = Path(path)
    try:
        with _persist.load_npz_checkpoint(path) as data:
            meta = json.loads(str(data["__meta__"]))
            version = meta.get("checkpoint_version")
            if version != CHECKPOINT_VERSION:
                raise _persist.CheckpointError(
                    f"unsupported training-checkpoint version {version!r} "
                    f"(this build reads {CHECKPOINT_VERSION})"
                )
            agent = _persist.restore_agent(meta["agent"], data)
            agent.rng.bit_generator.state = _rng_state_from_json(
                meta["rng_state"]
            )
            faults = None
            if meta.get("faults") is not None:
                faults = FaultConfig.from_dict(meta["faults"])
            return LoadedCheckpoint(
                agent=agent,
                episodes=list(meta["episodes"]),
                telemetry_offset=int(meta.get("telemetry_offset", 0)),
                faults=faults,
            )
    except _persist.CheckpointError:
        raise
    except (KeyError, json.JSONDecodeError, ValueError, EOFError) as exc:
        raise _persist.CheckpointError(
            f"training checkpoint {path} is incomplete or corrupted "
            f"({exc}); fall back to an earlier checkpoint or restart "
            "training"
        ) from exc


def _rng_state_json(rng: np.random.Generator) -> dict:
    """``bit_generator.state`` with numpy ints coerced to JSON-able types."""
    return json.loads(json.dumps(rng.bit_generator.state, default=int))


def _rng_state_from_json(state: dict) -> dict:
    """Inverse of :func:`_rng_state_json` (the setter accepts plain ints)."""
    return state


def episode_stats_from_json(records: list[dict]):
    """Rebuild :class:`~repro.rl.trainer.EpisodeStats` from JSON records.

    Imported lazily to keep this module free of a circular import with
    the trainer.
    """
    from repro.rl.trainer import EpisodeStats

    return [EpisodeStats(**{
        field.name: record[field.name]
        for field in dataclasses.fields(EpisodeStats)
    }) for record in records]
