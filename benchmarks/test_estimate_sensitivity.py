"""Benchmark: extension — walltime-estimate sensitivity sweep."""

import numpy as np
from conftest import SCALE, save_report

from repro.experiments import estimate_sensitivity


def test_estimate_sensitivity(benchmark, report_dir):
    rows = benchmark.pedantic(
        lambda: estimate_sensitivity.run(SCALE), rounds=1, iterations=1
    )
    text = estimate_sensitivity.report(rows)
    save_report(report_dir, "estimate_sensitivity", text)

    assert [r.factor for r in rows] == list(
        estimate_sensitivity.OVERESTIMATE_FACTORS
    )
    for row in rows:
        for avg_wait, max_wait, util in row.metrics.values():
            assert np.isfinite(avg_wait) and avg_wait >= 0
            assert np.isfinite(max_wait) and max_wait >= 0
            assert 0 <= util <= 1
    # both methods keep scheduling sanely even with perfect estimates
    # (factor 0 removes all backfill slack for long jobs)
    perfect = rows[0]
    assert all(m[0] > 0 for m in perfect.metrics.values())
