#!/usr/bin/env python3
"""End-to-end smoke test for the live telemetry surface (CI job ``live``).

Drives the real CLI the way an operator would and asserts the whole
in-flight observability chain works against a running process:

1. generates a seeded workload and starts ``repro simulate --live PORT
   --live-record shard.jsonl`` as a subprocess;
2. polls ``/metrics`` and ``/status`` on the live HTTP server *while
   the simulation is still running*, validating the Prometheus page
   with :func:`repro.obs.promtext.lint_prometheus` and the status
   document's schema/snapshot shape;
3. waits for the run to finish and merges the recorded shard with
   ``repro live summarize``;
4. re-runs the identical simulation dark (no live view) with
   ``--manifest`` on both runs and asserts the manifest
   ``stable_digest`` matches — watching a run must not change it.

Exit code 0 on success; any failure raises (non-zero exit).
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.manifest import RunManifest  # noqa: E402
from repro.obs.promtext import lint_prometheus  # noqa: E402

PORT = 9099
N_JOBS = 20_000   # big enough that the run is still live while we scrape


def _cli(*args: str, **kwargs):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          check=True, **kwargs)


def _get(path: str, timeout: float = 2.0) -> tuple[str, str]:
    url = f"http://127.0.0.1:{PORT}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8"), resp.headers.get("Content-Type", "")


def _scrape_during_run(proc: subprocess.Popen) -> tuple[str, dict]:
    """Poll until both endpoints answer while the run is still alive."""
    deadline = time.time() + 60.0
    last_error: Exception | None = None
    while time.time() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                f"simulate exited (rc={proc.returncode}) before the live "
                f"endpoints could be scraped; last error: {last_error}"
            )
        try:
            status_body, ctype = _get("/status")
            assert ctype.startswith("application/json"), ctype
            status = json.loads(status_body)
            if "engine" not in status.get("metrics", {}) \
                    or "sim" not in status.get("snapshots", {}):
                # server is up but the engine has not published yet
                time.sleep(0.05)
                continue
            metrics, ctype = _get("/metrics")
            assert ctype.startswith("text/plain; version=0.0.4"), ctype
            return metrics, status
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            last_error = exc
            time.sleep(0.05)
    raise SystemExit(f"live endpoints never came up: {last_error}")


def main(tmp: Path) -> None:
    trace = tmp / "trace.swf"
    shard = tmp / "live-shard.jsonl"
    _cli("generate", "theta", str(N_JOBS), "--nodes", "64",
         "--out", str(trace))

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "simulate", str(trace),
         "--nodes", "64", "--policy", "fcfs",
         "--live", str(PORT), "--live-record", str(shard)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        metrics, status = _scrape_during_run(proc)
        problems = lint_prometheus(metrics)
        assert problems == [], f"/metrics failed the linter: {problems}"
        assert "repro_engine_engine_events_submit" in metrics, metrics[:400]
        assert status["schema"] == "repro.live/v1", status
        sim = status["snapshots"]["sim"]
        assert sim["kind"] == "sim" and sim["seq"] >= 1, sim
        assert "engine" in status["metrics"], sorted(status["metrics"])
        print(f"scraped live run: seq={sim['seq']} events={sim.get('events')} "
              f"done={sim.get('done')}/{sim.get('total')}")
        rc = proc.wait(timeout=600)
        assert rc == 0, f"simulate exited {rc}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    summary = subprocess.run(
        [sys.executable, "-m", "repro", "live", "summarize", str(shard)],
        check=True, capture_output=True, text=True,
    ).stdout
    assert "live rollup" in summary and "[sim]" in summary, summary
    print(summary.rstrip())

    # digest parity: the watched run and a dark run agree bit-for-bit
    dark, watched = tmp / "dark.json", tmp / "watched.json"
    _cli("simulate", str(trace), "--nodes", "64", "--policy", "fcfs",
         "--manifest", str(watched), "--live-record", str(tmp / "s2.jsonl"),
         stdout=subprocess.DEVNULL)
    _cli("simulate", str(trace), "--nodes", "64", "--policy", "fcfs",
         "--manifest", str(dark), stdout=subprocess.DEVNULL)
    d1 = RunManifest.read(dark).stable_digest()
    d2 = RunManifest.read(watched).stable_digest()
    assert d1 == d2, f"manifest digest diverged: dark={d1} watched={d2}"
    print(f"manifest digest parity OK: {d1[:16]}…")
    print("live smoke OK")


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-live-smoke-") as tmp:
        main(Path(tmp))
