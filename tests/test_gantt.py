"""Unit tests for the text Gantt renderer."""

import pytest

from repro.analysis.gantt import render_gantt
from repro.schedulers import FCFSEasy
from repro.sim.engine import run_simulation
from tests.conftest import make_job


class TestRenderGantt:
    def test_basic_render(self):
        jobs = [make_job(size=2, walltime=100.0, submit=0.0),
                make_job(size=2, walltime=100.0, submit=0.0)]
        result = run_simulation(4, FCFSEasy(), jobs)
        out = render_gantt(result, width=20)
        lines = out.splitlines()
        assert lines[0].startswith("gantt:")
        assert len(lines) == 4 + 2  # 4 node rows + header + time axis
        assert "A" in out and "B" in out

    def test_concurrent_jobs_on_distinct_rows(self):
        a = make_job(size=2, walltime=100.0, submit=0.0)
        b = make_job(size=2, walltime=100.0, submit=0.0)
        result = run_simulation(4, FCFSEasy(), [a, b])
        out = render_gantt(result, width=10)
        node_lines = out.splitlines()[1:-1]
        glyph_rows = {line[-10:].strip(".")[0:1] for line in node_lines}
        assert {"A", "B"} <= glyph_rows

    def test_backfilled_jobs_lowercase(self):
        blocker = make_job(size=3, walltime=100.0, submit=0.0)
        big = make_job(size=4, walltime=10.0, submit=1.0)
        tiny = make_job(size=1, walltime=50.0, submit=2.0)
        result = run_simulation(4, FCFSEasy(), [blocker, big, tiny])
        out = render_gantt(result, width=30)
        assert any(ch.islower() for ch in out if ch.isalpha() and ch != "t")

    def test_row_subsampling(self):
        jobs = [make_job(size=64, walltime=10.0, submit=0.0)]
        result = run_simulation(64, FCFSEasy(), jobs)
        out = render_gantt(result, width=10, max_rows=8)
        assert len(out.splitlines()) == 8 + 2

    def test_idle_cells_dotted(self):
        job = make_job(size=1, walltime=10.0, submit=0.0)
        result = run_simulation(4, FCFSEasy(), [job])
        out = render_gantt(result, width=10)
        assert "." in out

    def test_empty_result_rejected(self):
        result = run_simulation(4, FCFSEasy(), [])
        with pytest.raises(ValueError, match="no finished jobs"):
            render_gantt(result)

    def test_validation(self):
        result = run_simulation(4, FCFSEasy(), [make_job(size=1)])
        with pytest.raises(ValueError):
            render_gantt(result, width=0)

    def test_realistic_trace_renders(self, rng):
        from repro.workload.models import ThetaModel

        model = ThetaModel.scaled(32)
        jobs = model.generate(60, rng)
        result = run_simulation(32, FCFSEasy(), jobs)
        out = render_gantt(result, width=60, max_rows=16)
        assert len(out.splitlines()) == 16 + 2
