"""The fault-tolerant sweep pool: determinism, retries, quarantine.

The headline invariant (ISSUE 10): the merged rollup of a sweep is a
pure function of its spec — byte-identical across worker counts, retry
schedules and injected worker crashes/hangs.  The real parent-SIGKILL
crash-resume test lives in ``test_pool_resume.py``; this module covers
the orchestrator's in-process contracts.
"""

import json

import pytest

from repro.experiments import faultsweep, pool
from repro.obs.live import LiveBus


def selftest_spec(**overrides):
    defaults = dict(kind="selftest", scale="tiny", seed=11,
                    params={"cells": 6}, backoff_s=0.0)
    defaults.update(overrides)
    return pool.SweepSpec(**defaults)


class TestSeedDerivation:
    def test_pure_function_of_seed_and_key(self):
        key = pool.cell_key({"policy": "FCFS", "mtbf": 2000.0})
        assert pool.derive_cell_seed(3, key) == pool.derive_cell_seed(3, key)

    def test_distinct_across_cells_and_seeds(self):
        keys = [pool.cell_key({"i": i}) for i in range(32)]
        seeds = {pool.derive_cell_seed(0, k) for k in keys}
        assert len(seeds) == len(keys)
        assert pool.derive_cell_seed(0, keys[0]) \
            != pool.derive_cell_seed(1, keys[0])

    def test_key_is_canonical(self):
        assert pool.cell_key({"b": 1, "a": 2}) == pool.cell_key(
            {"a": 2, "b": 1})


class TestSweepSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(pool.SweepError, match="unknown sweep kind"):
            pool.SweepSpec(kind="nope")

    @pytest.mark.parametrize("field,value", [
        ("timeout_s", -1.0), ("retries", -1), ("backoff_s", -0.5)])
    def test_negative_knobs_rejected(self, field, value):
        with pytest.raises(pool.SweepError):
            pool.SweepSpec(kind="selftest", **{field: value})

    def test_identity_excludes_execution_policy(self):
        a = selftest_spec(retries=0, backoff_s=0.0)
        b = selftest_spec(retries=5, backoff_s=2.0)
        assert a.digest() == b.digest()

    def test_identity_includes_timeout(self):
        assert selftest_spec(timeout_s=0.0).digest() \
            != selftest_spec(timeout_s=9.0).digest()

    def test_params_canonicalised(self):
        a = pool.SweepSpec(kind="selftest", params={"cells": 4})
        b = pool.SweepSpec(kind="selftest", params={"cells": 4})
        assert a.digest() == b.digest()


class TestExpand:
    def test_selftest_cells(self):
        cells = pool.expand_cells(selftest_spec())
        assert cells == [{"i": i} for i in range(6)]

    def test_duplicate_cells_rejected(self):
        pool.register_sweep_kind(
            "dup-kind-test",
            lambda spec: [{"i": 1}, {"i": 1}],
            lambda spec, cell, seed, attempt: {},
        )
        try:
            with pytest.raises(pool.SweepError, match="duplicate"):
                pool.expand_cells(pool.SweepSpec(kind="dup-kind-test"))
        finally:
            del pool._EXPANDERS["dup-kind-test"]
            del pool._RUNNERS["dup-kind-test"]

    def test_reregistration_rejected(self):
        with pytest.raises(pool.SweepError, match="already registered"):
            pool.register_sweep_kind(
                "selftest", lambda s: [], lambda s, c, d, a: {})


class TestParity:
    """Same spec => byte-identical rollup, however it was executed."""

    def test_serial_equals_parallel(self, tmp_path):
        spec = selftest_spec()
        serial = pool.run_sweep(spec, tmp_path / "serial", workers=0)
        par = pool.run_sweep(spec, tmp_path / "par", workers=3)
        assert serial.digest == par.digest
        assert serial.rollup_path.read_bytes() == par.rollup_path.read_bytes()
        assert serial.completed == par.completed == 6

    def test_injected_crash_converges_to_clean_results(self, tmp_path):
        # the injection knobs are spec params, so the full rollup digest
        # legitimately differs; the *result* payloads must not
        clean = pool.run_sweep(selftest_spec(), tmp_path / "clean",
                               workers=0)
        crashy = pool.run_sweep(
            selftest_spec(params={"cells": 6, "crash_once": [1, 4]}),
            tmp_path / "crashy", workers=2)
        assert pool.results_digest(crashy.rollup) \
            == pool.results_digest(clean.rollup)
        assert crashy.digest != clean.digest  # identity includes params
        assert not crashy.quarantined

    def test_injected_hang_reaped_and_retried(self, tmp_path):
        clean = pool.run_sweep(selftest_spec(timeout_s=3.0),
                               tmp_path / "clean", workers=0)
        hangy = pool.run_sweep(
            selftest_spec(params={"cells": 6, "hang_once": [2]},
                          timeout_s=3.0),
            tmp_path / "hangy", workers=2)
        assert pool.results_digest(hangy.rollup) \
            == pool.results_digest(clean.rollup)
        assert not hangy.quarantined

    def test_worker_count_does_not_leak_into_rollup(self, tmp_path):
        spec = selftest_spec(params={"cells": 5})
        digests = {
            pool.run_sweep(spec, tmp_path / f"w{n}", workers=n).digest
            for n in (0, 1, 4)
        }
        assert len(digests) == 1


class TestRetryAndQuarantine:
    def test_always_failing_cell_quarantined(self, tmp_path):
        spec = selftest_spec(params={"cells": 4, "fail": [2]}, retries=1)
        result = pool.run_sweep(spec, tmp_path / "q", workers=0)
        assert result.completed == 3
        assert list(result.quarantined) == [pool.cell_key({"i": 2})]
        assert "RuntimeError" in result.quarantined[pool.cell_key({"i": 2})]
        [record] = result.rollup["quarantined"]
        assert record["status"] == "quarantined"
        assert record["error_type"] == "RuntimeError"

    def test_quarantine_rollup_strips_volatile_diagnostics(self, tmp_path):
        spec = selftest_spec(params={"cells": 2, "fail": [0]}, retries=0)
        result = pool.run_sweep(spec, tmp_path / "v", workers=0)
        [record] = result.rollup["quarantined"]
        for volatile in pool.VOLATILE_RECORD_FIELDS:
            assert volatile not in record

    def test_quarantine_is_deterministic_across_workers(self, tmp_path):
        spec = selftest_spec(params={"cells": 4, "fail": [1, 3]}, retries=0)
        serial = pool.run_sweep(spec, tmp_path / "s", workers=0)
        par = pool.run_sweep(spec, tmp_path / "p", workers=2)
        assert serial.digest == par.digest
        assert serial.completed == 2

    def test_attempt_budget_is_one_plus_retries(self, tmp_path):
        spec = selftest_spec(params={"cells": 1, "fail": [0]}, retries=3)
        result = pool.run_sweep(spec, tmp_path / "b", workers=0)
        scan = pool.SweepStore(tmp_path / "b").scan()
        [key] = scan.quarantined
        # the shard (not the rollup) keeps the volatile attempt count
        raw = [json.loads(line)
               for path in pool.SweepStore(tmp_path / "b").shard_paths()
               for line in path.read_text().splitlines()]
        [qrec] = [r for r in raw if r.get("type") == "quarantine"]
        assert qrec["attempts"] == 4
        assert result.completed == 0


class TestStoreGuards:
    def test_non_resume_on_populated_store_rejected(self, tmp_path):
        spec = selftest_spec()
        pool.run_sweep(spec, tmp_path / "s", workers=0)
        with pytest.raises(pool.SweepError, match="resume"):
            pool.run_sweep(spec, tmp_path / "s", workers=0)

    def test_store_bound_to_one_spec(self, tmp_path):
        pool.run_sweep(selftest_spec(), tmp_path / "s", workers=0)
        other = selftest_spec(seed=99)
        with pytest.raises(pool.SweepError, match="different sweep"):
            pool.run_sweep(other, tmp_path / "s", workers=0, resume=True)

    def test_resume_skips_completed_cells(self, tmp_path):
        spec = selftest_spec()
        first = pool.run_sweep(spec, tmp_path / "s", workers=0)
        again = pool.run_sweep(spec, tmp_path / "s", workers=2, resume=True)
        assert again.resumed == 6 and again.ran == 0
        assert again.digest == first.digest

    def test_resume_retries_quarantined_cells(self, tmp_path):
        bad = selftest_spec(params={"cells": 3, "fail": [1]}, retries=0)
        first = pool.run_sweep(bad, tmp_path / "s", workers=0)
        assert first.completed == 2
        # the store's identity ignores retries, so the same sweep can be
        # resumed after the flaky dependency is fixed; here the retried
        # cell simply fails again and stays quarantined
        second = pool.run_sweep(bad, tmp_path / "s", workers=0, resume=True)
        assert second.resumed == 2 and second.completed == 2
        assert second.digest == first.digest

    def test_torn_shard_tail_is_skipped(self, tmp_path):
        spec = selftest_spec()
        result = pool.run_sweep(spec, tmp_path / "s", workers=0)
        store = pool.SweepStore(tmp_path / "s")
        [shard] = store.shard_paths()
        with open(shard, "a", encoding="utf-8") as fh:
            fh.write('{"type": "cell", "key": "{\\"i\\": 99')  # torn line
        scan = store.scan()
        assert scan.skipped == 1
        assert len(scan.completed) == 6
        assert pool.rollup_digest(pool.merge_store(store, total=6)) \
            == result.digest


class TestLiveAggregation:
    class Recorder:
        def __init__(self):
            self.records = []

        def on_snapshot(self, record):
            self.records.append(dict(record))

    def test_sweep_progress_and_worker_forwarding(self, tmp_path):
        bus = LiveBus()
        sink = self.Recorder()
        bus.attach(sink)
        pool.run_sweep(selftest_spec(params={"cells": 4}),
                       tmp_path / "s", workers=2, live=bus)
        sweeps = [r for r in sink.records if r["kind"] == "sweep"]
        assert sweeps, "no aggregate sweep snapshots published"
        assert sweeps[-1]["done"] == sweeps[-1]["total"] == 4
        assert sweeps[-1]["final"] is True
        forwarded = [r for r in sink.records if r["kind"].startswith("cell_w")]
        assert forwarded, "no worker snapshots forwarded to the parent bus"

    def test_inline_path_publishes_progress(self, tmp_path):
        bus = LiveBus()
        sink = self.Recorder()
        bus.attach(sink)
        pool.run_sweep(selftest_spec(params={"cells": 3}),
                       tmp_path / "s", workers=0, live=bus)
        sweeps = [r for r in sink.records if r["kind"] == "sweep"]
        assert [r["done"] for r in sweeps] == [1, 2, 3]


class TestFaultsweepCells:
    GRID = {"policies": ["FCFS"], "mtbf_grid": [0.0, 2000.0]}

    def test_cells_and_manifest_record_max_wall_s(self, tmp_path):
        spec = pool.SweepSpec(kind="faultsweep", scale="tiny", seed=0,
                              params=self.GRID)
        result = pool.run_sweep(spec, tmp_path / "fs", workers=0)
        assert result.completed == 2
        for record in result.rollup["cells"]:
            assert record["summary"]["max_wall_s"] \
                == faultsweep.CELL_MAX_WALL_S
            assert record["manifest"]["summary"]["max_wall_s"] \
                == faultsweep.CELL_MAX_WALL_S

    def test_pool_matches_serial_faultsweep_numbers(self, tmp_path):
        spec = pool.SweepSpec(kind="faultsweep", scale="tiny", seed=0,
                              params=self.GRID)
        result = pool.run_sweep(spec, tmp_path / "fs", workers=2)
        rebuilt = faultsweep.result_from_rollup(result.rollup)
        serial = faultsweep.run("tiny", seed=0)
        by_cell = {(c.policy, c.mtbf): c for c in serial.cells}
        assert len(rebuilt.cells) == 2
        for cell in rebuilt.cells:
            ref = by_cell[(cell.policy, cell.mtbf)]
            assert cell.metrics == ref.metrics
            assert cell.resilience == ref.resilience

    def test_unknown_policy_rejected(self):
        spec = pool.SweepSpec(kind="faultsweep",
                              params={"policies": ["Slurm"]})
        with pytest.raises(ValueError, match="unknown faultsweep policies"):
            pool.expand_cells(spec)
