"""Live telemetry bus: in-flight snapshots, progress/ETA, ``/metrics``.

Long simulations and training runs are opaque while they execute: the
tracer, profiler and manifest all land on disk *after* the run.  This
module adds the in-flight view.  Components publish small snapshot
dicts to a :class:`LiveBus` on an **event-count cadence** (every N
simulator events, every training episode, every sweep cell) — never on
a wall-clock timer — so what gets published is a pure function of the
run and a live-enabled run stays bit-identical to a dark one.

The bus fans each snapshot out to attached sinks:

* :class:`ProgressSink` — a terminal progress/ETA line, rendered from
  snapshot deltas (rate and ETA derive from monotonic
  ``time.perf_counter()`` stamps the bus adds at publish time).
* :class:`SnapshotWriter` — an append-only JSONL shard
  (``repro.live/v1``), flushed per record so a ``kill -9`` mid-run
  still leaves a parseable prefix; merged across processes by
  :mod:`repro.obs.aggregate`.
* :class:`LiveServer` — an opt-in stdlib HTTP server exposing
  ``/metrics`` (Prometheus text format, via :mod:`repro.obs.promtext`)
  and ``/status`` (JSON: last snapshot per kind, derived rates/ETA,
  registered :class:`~repro.obs.metrics.MetricsRegistry` snapshots).

Clock discipline (checked by taint rule RPR607): publishers and the
bus itself touch only ``time.perf_counter``; the one true wall-clock
read (``time.time`` for the shard header timestamp) lives inside the
sink, behind a justified ``noqa``.

Activate globally with ``REPRO_LIVE`` (``1`` → progress line; a port
number ≥ 2 → progress line + HTTP server; anything else → a snapshot
shard at that path) or per-run with ``Engine(live=...)`` /
``run_simulation(..., live=...)`` / ``--live [PORT]`` on the CLI.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Mapping, TextIO

from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import render_prometheus

#: schema tag stamped on every snapshot record and shard header
LIVE_SCHEMA = "repro.live/v1"

#: default publish cadence of the simulation engine, in events
LIVE_SIM_EVERY = 2000


# -- the bus -------------------------------------------------------------------

class LiveBus:
    """Fan-out hub for in-flight snapshot records.

    Publishers call :meth:`publish` with a *kind* (``"sim"``,
    ``"train"``, ``"sweep"``) and plain scalar fields; the bus stamps
    the schema, a per-kind sequence number and a monotonic
    ``perf_counter`` timestamp, remembers the first and latest record
    per kind (for rate/ETA derivation), and hands the record to every
    attached sink.  Sinks observe only — a sink that raises disables
    itself rather than aborting the run.
    """

    def __init__(self) -> None:
        self._sinks: list[Any] = []
        self._registries: dict[str, MetricsRegistry] = {}
        self._seq: dict[str, int] = {}
        self._first: dict[str, dict[str, Any]] = {}
        self._last: dict[str, dict[str, Any]] = {}
        self._lock = threading.Lock()

    def attach(self, sink: Any) -> Any:
        """Attach a sink (any object with ``on_snapshot(record)``)."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Any) -> None:
        """Detach a previously attached sink (no-op if absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def register_metrics(self, tag: str, registry: MetricsRegistry) -> None:
        """Expose ``registry`` on ``/metrics`` and ``/status`` as ``tag``."""
        self._registries[tag] = registry

    def registries(self) -> dict[str, MetricsRegistry]:
        """The registered component registries, keyed by tag."""
        # deliberate copy: read from the HTTP server thread while a run
        # mutates the original; called per scrape, not per event
        return dict(self._registries)  # repro: noqa[hot-rebuild]

    def publish(self, kind: str, fields: Mapping[str, Any]) -> dict[str, Any]:
        """Stamp and fan out one snapshot; returns the stamped record.

        The stamp adds ``schema``, ``kind``, ``seq`` (per kind, from 1)
        and ``wall`` (monotonic ``perf_counter`` seconds — *not* the
        host date).  ``fields`` should be flat JSON-friendly scalars;
        by convention ``done``/``total`` drive progress and ETA.
        """
        with self._lock:
            seq = self._seq.get(kind, 0) + 1
            self._seq[kind] = seq
            record: dict[str, Any] = {"schema": LIVE_SCHEMA, "kind": kind,
                                      "seq": seq,
                                      "wall": time.perf_counter()}
            record.update(fields)
            if kind not in self._first:
                self._first[kind] = record
            self._last[kind] = record
            # deliberate copy: fan out after dropping the lock, so a slow
            # sink cannot block a concurrent /metrics scrape; runs once
            # per snapshot (thousands of events), not per event
            sinks = list(self._sinks)  # repro: noqa[hot-rebuild]
        for sink in sinks:
            try:
                sink.on_snapshot(record)
            except Exception:
                # a broken sink must never kill the run it observes;
                # drop it and keep publishing to the others
                self.detach(sink)
        return record

    def snapshots(self) -> dict[str, dict[str, Any]]:
        """The latest snapshot per kind."""
        with self._lock:
            # deliberate copy: handed to the HTTP server thread; called
            # per scrape, not per event
            return dict(self._last)  # repro: noqa[hot-rebuild]

    def derived(self) -> dict[str, float]:
        """Derived per-kind scalars: rate, progress fraction, ETA.

        Pure arithmetic over the stamped records: with first and last
        snapshots of a kind ``elapsed = last.wall - first.wall``,
        ``rate = Δdone / elapsed`` and
        ``eta_s = (total - done) / rate``.  An ``events`` field gets an
        events-per-second rate the same way.  Kinds with fewer than two
        snapshots (or no elapsed time) contribute no rate/ETA.
        """
        out: dict[str, float] = {}
        with self._lock:
            pairs = [(k, self._first[k], self._last[k]) for k in self._last]
        for kind, first, last in pairs:
            done = last.get("done")
            total = last.get("total")
            if isinstance(done, (int, float)) and isinstance(
                    total, (int, float)) and total:
                out[f"live_{kind}_progress"] = done / total
            elapsed = last["wall"] - first["wall"]
            if elapsed <= 0.0:
                continue
            for field, name in (("done", "rate"),
                                ("events", "events_per_s")):
                lo, hi = first.get(field), last.get(field)
                if isinstance(lo, (int, float)) and isinstance(
                        hi, (int, float)) and hi > lo:
                    out[f"live_{kind}_{name}"] = (hi - lo) / elapsed
            rate = out.get(f"live_{kind}_rate")
            if rate and isinstance(done, (int, float)) and isinstance(
                    total, (int, float)) and total >= done:
                out[f"live_{kind}_eta_s"] = (total - done) / rate
        return out

    def close(self) -> None:
        """Close every sink that has a ``close`` method, then detach all."""
        for sink in list(self._sinks):
            closer = getattr(sink, "close", None)
            if closer is not None:
                try:
                    closer()
                except Exception:  # repro: noqa[bare-except]
                    # best-effort teardown: a sink that cannot close
                    # (broken pipe, dead socket) must not mask the
                    # run's own result or the other sinks' teardown
                    pass
        self._sinks.clear()


# -- sinks ---------------------------------------------------------------------

class ProgressSink:
    """Renders snapshots as a one-line terminal progress/ETA readout.

    On a TTY the line redraws in place (carriage return); otherwise
    each rendered snapshot is its own line.  Rendering is rate-limited
    to one line per ``min_interval_s`` of monotonic time, except that
    records marked ``final`` always render (so the 100% line is never
    dropped).
    """

    def __init__(self, stream: TextIO | None = None,
                 min_interval_s: float = 0.5) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval_s = min_interval_s
        self._next_render = 0.0
        self._first: dict[str, dict[str, Any]] = {}
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._width = 0

    def on_snapshot(self, record: Mapping[str, Any]) -> None:
        """Render ``record`` unless inside the rate-limit window."""
        kind = str(record.get("kind", "?"))
        if kind not in self._first:
            self._first[kind] = dict(record)
        now = time.perf_counter()
        if not record.get("final") and now < self._next_render:
            return
        self._next_render = now + self._min_interval_s
        line = self.format_line(record)
        try:
            if self._tty:
                pad = " " * max(0, self._width - len(line))
                end = "\n" if record.get("final") else ""
                self._stream.write("\r" + line + pad + end)
                self._width = 0 if record.get("final") else len(line)
            else:
                self._stream.write(line + "\n")
            self._stream.flush()
        except (OSError, ValueError):
            pass  # a closed/broken stream must not abort the run

    def format_line(self, record: Mapping[str, Any]) -> str:
        """One human-oriented progress line for ``record``.

        ``[<kind>] <key fields> done <done>/<total> (<pct>%) <rate> ETA <s>``
        with rate and ETA derived from the monotonic ``wall`` stamps of
        the first and current snapshot of the kind (see
        :meth:`LiveBus.derived` for the math).
        """
        kind = str(record.get("kind", "?"))
        parts = [f"[{kind}]"]
        for key, fmt in (("t", "t={:.1f}s"), ("events", "ev={}"),
                         ("episode", "ep={}"), ("cell", "cell={}"),
                         ("policy", "{}"), ("mtbf", "mtbf={:g}"),
                         ("queue_depth", "q={}"), ("running", "run={}"),
                         ("utilization", "util={:.1%}"),
                         ("loss", "loss={:.4g}"),
                         ("train_reward", "reward={:.4g}"),
                         ("faults", "faults={}"), ("requeues", "requeues={}")):
            value = record.get(key)
            if value is not None:
                parts.append(fmt.format(value))
        done, total = record.get("done"), record.get("total")
        if isinstance(done, (int, float)) and isinstance(total, (int, float)):
            pct = f" ({done / total:.0%})" if total else ""
            parts.append(f"done {done:g}/{total:g}{pct}")
            first = self._first.get(kind, record)
            elapsed = record["wall"] - first["wall"]
            if elapsed > 0 and done > first.get("done", done):
                rate = (done - first["done"]) / elapsed
                if total >= done and rate > 0:
                    parts.append(f"ETA {(total - done) / rate:.0f}s")
        return " ".join(parts)

    def close(self) -> None:
        """Terminate an in-place TTY line with a newline."""
        if self._tty and self._width:
            try:
                self._stream.write("\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass
            self._width = 0


class ConnectionSink:
    """Forwards snapshots over a :mod:`multiprocessing` connection.

    The worker side of a multi-process sweep: a sweep worker's private
    :class:`LiveBus` attaches one of these around its pipe to the pool
    parent, which republishes each record on the parent bus (worker
    kinds suffixed ``_w<slot>``) so one :class:`ProgressSink` ETA line
    and one ``/status`` endpoint aggregate every worker of the sweep.
    Delivery is best-effort — a dead parent must not break the cell
    that is still running (the worker notices the broken pipe on its
    next ``recv`` and exits).
    """

    #: tag of forwarded records on the wire (first tuple element)
    TAG = "live"

    def __init__(self, conn: Any) -> None:
        self._conn = conn

    def on_snapshot(self, record: Mapping[str, Any]) -> None:
        """Ship one snapshot to the peer (best-effort)."""
        try:
            self._conn.send((self.TAG, dict(record)))
        except (OSError, ValueError):
            pass


class SnapshotWriter:
    """Appends snapshots to a JSONL shard (``repro.live/v1``).

    The first line is a ``meta`` header naming the schema, the shard's
    ``source`` label and the one wall-clock timestamp of the file (the
    sink is where wall-clock reads are allowed; rule RPR607).  Every
    snapshot is one sorted-key JSON line, flushed immediately — a
    process killed mid-run leaves a parseable prefix (at worst one
    truncated final line, which the lenient reader in
    :mod:`repro.obs.aggregate` skips).
    """

    def __init__(self, path: "str | os.PathLike[str]",
                 source: str | None = None) -> None:
        self.path = os.fspath(path)
        self.source = source if source is not None else f"pid{os.getpid()}"
        self._fh: TextIO | None = open(self.path, "w", encoding="utf-8")
        # sink-confined wall-clock stamp: lets humans correlate shards
        # from different hosts; nothing downstream feeds it back into
        # a simulation
        unix = time.time()  # repro: noqa[wall-clock, sim-wall-clock]
        self._write_line({"type": "meta", "schema": LIVE_SCHEMA,
                          "source": self.source, "unix": unix})

    def _write_line(self, record: Mapping[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def on_snapshot(self, record: Mapping[str, Any]) -> None:
        """Append one snapshot record to the shard."""
        row = {"type": "snapshot", "source": self.source}
        row.update(record)
        self._write_line(row)

    def close(self) -> None:
        """Close the shard file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class LiveServer:
    """Opt-in stdlib HTTP server exposing a :class:`LiveBus`.

    Serves ``GET /metrics`` (Prometheus text exposition 0.0.4 over the
    bus's registered registries plus derived rate/progress/ETA gauges)
    and ``GET /status`` (a JSON document with the latest snapshot per
    kind, the derived scalars and full registry snapshots).  Runs on a
    daemon thread; request logging is silenced.  Port 0 binds an
    ephemeral port, readable from :attr:`port` after :meth:`start`.
    """

    def __init__(self, bus: LiveBus, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self._bus = bus
        self._host = host
        self._server: Any = None
        self._thread: threading.Thread | None = None
        self.port = port

    def start(self) -> "LiveServer":
        """Bind the socket and start serving on a daemon thread."""
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        bus = self._bus

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = render_prometheus(bus.registries(),
                                             extra=bus.derived())
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/status":
                    body = json.dumps(
                        {"schema": LIVE_SCHEMA,
                         "snapshots": bus.snapshots(),
                         "derived": bus.derived(),
                         "metrics": {tag: reg.snapshot() for tag, reg
                                     in bus.registries().items()}},
                        sort_keys=True) + "\n"
                    ctype = "application/json; charset=utf-8"
                else:
                    self.send_error(404, "unknown path (try /metrics "
                                         "or /status)")
                    return
                payload = body.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args: Any) -> None:
                pass  # no per-request stderr noise during a run

        self._server = ThreadingHTTPServer((self._host, self.port), _Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-live-server", daemon=True)
        self._thread.start()
        return self

    def on_snapshot(self, record: Mapping[str, Any]) -> None:
        """No-op: the server reads bus state on request, not on publish."""

    def close(self) -> None:
        """Shut the server down and release the socket (idempotent)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# -- building a bus from a CLI/env spec ----------------------------------------

def live_from_spec(spec: str, stream: TextIO | None = None,
                   source: str | None = None) -> LiveBus | None:
    """Build a :class:`LiveBus` from a ``--live`` / ``REPRO_LIVE`` value.

    * ``""``, ``"0"``, ``"off"`` → ``None`` (live view disabled);
    * ``"1"`` or ``"progress"`` → progress/ETA line only (the
      no-server default);
    * any other integer → progress line **plus** an HTTP server on
      that port (``/metrics`` + ``/status``);
    * anything else → a :class:`SnapshotWriter` shard at that path.

    The server (when requested) is started before returning, so the
    caller can log the bound port via the returned bus's
    :attr:`LiveBus.server` attribute.
    """
    value = spec.strip()
    if value in ("", "0", "off"):
        return None
    bus = LiveBus()
    bus.server = None  # type: ignore[attr-defined]
    if value in ("1", "progress"):
        bus.attach(ProgressSink(stream))
        return bus
    try:
        port = int(value)
    except ValueError:
        bus.attach(SnapshotWriter(value, source=source))
        return bus
    if not 1 < port < 65536:
        raise ValueError(f"invalid live port {port} (expected 2..65535)")
    bus.attach(ProgressSink(stream))
    bus.server = bus.attach(LiveServer(bus, port=port).start())  # type: ignore[attr-defined]
    return bus


# -- global (environment-driven) bus -------------------------------------------

_GLOBAL: LiveBus | None = None
_GLOBAL_LOADED = False


def global_live_bus() -> LiveBus | None:
    """The process-wide live bus, or ``None`` when the live view is off.

    On first call the ``REPRO_LIVE`` environment variable is consulted
    (see :func:`live_from_spec` for the accepted values); subsequent
    calls return the cached result, so the disabled path costs one
    global lookup and a ``None`` check — the same contract as
    :func:`repro.obs.trace.global_tracer`.
    """
    global _GLOBAL, _GLOBAL_LOADED
    if not _GLOBAL_LOADED:
        _GLOBAL_LOADED = True
        # sanctioned observability gate: selects whether the run is
        # *watched*; run behaviour and outputs are unchanged by REPRO_LIVE
        spec = os.environ.get("REPRO_LIVE", "").strip()  # repro: noqa[ambient-env-read]
        if spec:
            _GLOBAL = live_from_spec(spec)
    return _GLOBAL


def set_global_live_bus(bus: LiveBus | None) -> LiveBus | None:
    """Install (or clear, with ``None``) the global live bus.

    Returns the previous bus so tests can restore it.  Passing a bus
    bypasses ``REPRO_LIVE``; passing ``None`` disables the global live
    view until the next explicit install (the environment variable is
    *not* re-read).
    """
    global _GLOBAL, _GLOBAL_LOADED
    previous = _GLOBAL
    _GLOBAL = bus
    _GLOBAL_LOADED = True
    return previous
