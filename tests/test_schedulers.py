"""Unit tests for the heuristic baseline schedulers."""

import itertools

import numpy as np
import pytest

from repro.schedulers import (
    BinPacking,
    FCFSEasy,
    KnapsackOptimization,
    RandomScheduler,
    solve_knapsack,
)
from repro.sim.engine import run_simulation
from repro.sim.job import ExecMode
from tests.conftest import make_job


class TestFCFSEasy:
    def test_strict_arrival_order_when_no_backfill(self):
        jobs = [make_job(size=4, walltime=10.0, submit=float(i)) for i in range(4)]
        run_simulation(4, FCFSEasy(), jobs)
        starts = [j.start_time for j in jobs]
        assert starts == sorted(starts)

    def test_head_blocks_non_backfillable_successors(self):
        blocker = make_job(size=3, walltime=100.0, submit=0.0)
        head = make_job(size=4, walltime=10.0, submit=1.0)
        # fits the nodes but would delay head's reservation
        sneaky = make_job(size=1, walltime=1000.0, submit=2.0)
        run_simulation(4, FCFSEasy(), [blocker, head, sneaky])
        assert head.start_time == pytest.approx(100.0)
        assert sneaky.start_time > head.start_time

    def test_first_fit_backfill_order(self):
        blocker = make_job(size=3, walltime=100.0, submit=0.0)
        head = make_job(size=4, walltime=10.0, submit=1.0)
        bf1 = make_job(size=1, walltime=40.0, submit=2.0)
        bf2 = make_job(size=1, walltime=40.0, submit=3.0)
        run_simulation(4, FCFSEasy(), [blocker, head, bf1, bf2])
        # only one 1-node hole: earliest-arrived candidate wins
        assert bf1.start_time == pytest.approx(2.0)
        assert bf2.start_time >= 42.0

    def test_easy_single_reservation_only(self):
        # two blocked big jobs: only the head gets a reservation
        blocker = make_job(size=3, walltime=100.0, submit=0.0)
        big1 = make_job(size=4, walltime=10.0, submit=1.0)
        big2 = make_job(size=4, walltime=10.0, submit=2.0)
        run_simulation(4, FCFSEasy(), [blocker, big1, big2])
        assert big1.mode is ExecMode.RESERVED
        assert big1.start_time < big2.start_time


class TestBinPacking:
    def test_largest_runnable_first(self):
        small = make_job(size=1, walltime=10.0, submit=0.0)
        large = make_job(size=4, walltime=10.0, submit=0.0)
        run_simulation(4, BinPacking(), [small, large])
        assert large.start_time == 0.0
        assert small.start_time == pytest.approx(10.0)

    def test_packs_greedily(self):
        jobs = [make_job(size=s, walltime=10.0, submit=0.0) for s in (3, 2, 2, 1)]
        run_simulation(4, BinPacking(), jobs)
        # picks 3 then 1 at t=0; the two 2s at t=10
        assert jobs[0].start_time == 0.0
        assert jobs[3].start_time == 0.0
        assert jobs[1].start_time == pytest.approx(10.0)
        assert jobs[2].start_time == pytest.approx(10.0)

    def test_never_reserves(self):
        jobs = [make_job(size=4, walltime=10.0, submit=float(i)) for i in range(3)]
        run_simulation(4, BinPacking(), jobs)
        assert all(j.mode is ExecMode.READY for j in jobs)

    def test_starves_large_jobs_under_small_job_stream(self):
        # a steady stream of 2-node jobs keeps 2 nodes busy at all times,
        # so the whole-system job never sees 4 free nodes
        small = [
            make_job(size=2, walltime=100.0, submit=float(i * 50))
            for i in range(10)
        ]
        big = make_job(size=4, walltime=10.0, submit=1.0)
        run_simulation(4, BinPacking(), small + [big])
        assert big.start_time > small[-1].start_time


class TestRandomScheduler:
    def test_deterministic_with_seed(self):
        def run(seed):
            jobs = [make_job(size=s, walltime=10.0, submit=0.0) for s in (1, 2, 3, 1)]
            run_simulation(4, RandomScheduler(seed=seed), jobs)
            return [j.start_time for j in jobs]

        assert run(7) == run(7)

    def test_all_jobs_finish(self):
        jobs = [make_job(size=s, walltime=10.0, submit=0.0) for s in (4, 3, 2, 1)]
        result = run_simulation(4, RandomScheduler(seed=1), jobs)
        assert len(result.finished_jobs) == 4

    def test_never_reserves(self):
        jobs = [make_job(size=4, walltime=10.0, submit=float(i)) for i in range(3)]
        run_simulation(4, RandomScheduler(seed=0), jobs)
        assert all(j.mode is ExecMode.READY for j in jobs)


class TestSolveKnapsack:
    def test_empty(self):
        assert solve_knapsack([], [], 10) == []

    def test_zero_capacity(self):
        assert solve_knapsack([1], [1.0], 0) == []

    def test_simple_optimum(self):
        # capacity 5: {3,2} with values 4+3=7 beats {5}=6
        chosen = solve_knapsack([3, 2, 5], [4.0, 3.0, 6.0], 5)
        assert sorted(chosen) == [0, 1]

    def test_single_big_item(self):
        chosen = solve_knapsack([5, 1], [100.0, 1.0], 5)
        assert chosen == [0]

    def test_item_wider_than_capacity_skipped(self):
        chosen = solve_knapsack([10, 2], [100.0, 1.0], 5)
        assert chosen == [1]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            solve_knapsack([1, 2], [1.0], 5)

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            solve_knapsack([1], [1.0], -1)

    def test_nonpositive_weight(self):
        with pytest.raises(ValueError):
            solve_knapsack([0], [1.0], 5)

    def test_matches_brute_force(self, rng):
        for _ in range(25):
            n = int(rng.integers(1, 8))
            weights = [int(w) for w in rng.integers(1, 6, size=n)]
            values = [float(v) for v in rng.random(n)]
            capacity = int(rng.integers(0, 12))
            chosen = solve_knapsack(weights, values, capacity)
            assert sum(weights[i] for i in chosen) <= capacity
            best = 0.0
            for subset in itertools.product((0, 1), repeat=n):
                w = sum(wi for wi, s in zip(weights, subset) if s)
                if w <= capacity:
                    best = max(best, sum(vi for vi, s in zip(values, subset) if s))
            got = sum(values[i] for i in chosen)
            assert got == pytest.approx(best)


class TestKnapsackOptimization:
    def test_capability_prefers_valuable_subset(self):
        sched = KnapsackOptimization("capability")
        # one 4-node job vs two 2-node jobs: capability value favours
        # whichever packing maximizes sum of size fractions (tied) plus
        # wait; with identical waits the full pack wins either way.
        jobs = [make_job(size=4, walltime=10.0, submit=0.0),
                make_job(size=2, walltime=10.0, submit=0.0),
                make_job(size=2, walltime=10.0, submit=0.0)]
        result = run_simulation(4, sched, jobs)
        started_at_0 = [j for j in jobs if j.start_time == 0.0]
        assert sum(j.size for j in started_at_0) == 4  # capacity saturated

    def test_capacity_prefers_short_jobs(self):
        sched = KnapsackOptimization("capacity")
        short = make_job(size=4, walltime=10.0, submit=0.0)
        long = make_job(size=4, walltime=10000.0, submit=0.0)
        run_simulation(4, sched, [long, short])
        assert short.start_time == 0.0
        assert long.start_time == pytest.approx(10.0)

    def test_never_reserves(self):
        jobs = [make_job(size=4, walltime=10.0, submit=float(i)) for i in range(3)]
        run_simulation(4, KnapsackOptimization("capability"), jobs)
        assert all(j.mode is ExecMode.READY for j in jobs)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            KnapsackOptimization("capability", window=0)

    def test_invalid_objective_raises_at_schedule(self):
        sched = KnapsackOptimization("nonsense")
        with pytest.raises(ValueError, match="unknown objective"):
            run_simulation(4, sched, [make_job(size=1)])
