"""Extension experiment: sensitivity to runtime-estimate inaccuracy.

Backfilling (EASY and DRAS's learned variant alike) plans against
*user-supplied walltime estimates*, which production studies — e.g. the
authors' own CLUSTER'17 work on runtime-estimate accuracy, cited by the
paper — find to be over-estimated by large, heavy-tailed factors.  This
experiment sweeps the mean over-estimation factor of the workload model
and reports how FCFS and the DRAS agents degrade, isolating how robust
the learned policy is to estimate noise.

This is not a figure in the paper; it is the natural follow-up the
paper's §II-C backfilling discussion invites, and DESIGN.md lists it as
an extension ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.comparison import evaluate_method
from repro.analysis.tables import format_table
from repro.experiments.common import fresh_trained_agent, get_scale, system_setup
from repro.schedulers import FCFSEasy

#: mean multiplicative over-estimation factors swept (0 = perfect
#: estimates; the workload default is 1.0, i.e. walltime ~ 2x runtime)
OVERESTIMATE_FACTORS: tuple[float, ...] = (0.0, 1.0, 3.0)


@dataclass(frozen=True)
class SensitivityRow:
    factor: float
    #: {method: (avg wait h, max wait d, utilization)}
    metrics: dict[str, tuple[float, float, float]]


def run(scale: str = "default", seed: int = 0) -> list[SensitivityRow]:
    get_scale(scale)
    setup = system_setup("theta", scale, seed)
    agent = fresh_trained_agent("pg", "theta", scale, seed)

    rows = []
    for factor in OVERESTIMATE_FACTORS:
        runtimes = replace(setup.model.runtimes, mean_overestimate=factor)
        model = replace(setup.model, runtimes=runtimes)
        trace = model.generate(len(setup.test_trace),
                               np.random.default_rng(seed + 13))
        metrics: dict[str, tuple[float, float, float]] = {}
        for scheduler in (FCFSEasy(), agent.eval(online_learning=True)):
            res = evaluate_method(scheduler, trace, model.num_nodes)
            metrics[scheduler.name] = (
                res.metrics.avg_wait / 3600.0,
                res.metrics.max_wait / 86400.0,
                res.metrics.utilization,
            )
        rows.append(SensitivityRow(factor=factor, metrics=metrics))
    return rows


def report(rows: list[SensitivityRow]) -> str:
    methods = list(rows[0].metrics)
    table_rows = []
    for row in rows:
        for method in methods:
            aw, mw, util = row.metrics[method]
            table_rows.append(
                [f"{row.factor:.1f}x", method, f"{aw:.2f}", f"{mw:.2f}",
                 f"{util:.3f}"]
            )
    return format_table(
        ["mean overestimate", "method", "avg wait (h)", "max wait (d)",
         "utilization"],
        table_rows,
        title="Extension: sensitivity to walltime over-estimation (Theta)",
    )
