"""Conservative backfilling: every queued job holds a reservation.

The classic stricter alternative to EASY (used as an extension /
ablation here): jobs are planned in arrival order against a
free-capacity profile, each receiving a reservation at its earliest
feasible start, and a job starts now only if its planned start *is*
now.  No job can ever be delayed by a later arrival, at the cost of
fewer backfilling opportunities than EASY.

Anything this policy starts is also legal under the engine's EASY
check, since conservative feasibility is strictly stronger; the head
job's engine reservation is kept so execution-mode attribution stays
comparable with FCFS/DRAS.
"""

from __future__ import annotations

from repro.schedulers.base import BaseScheduler
from repro.sim.engine import SchedulingView
from repro.sim.profile import ResourceProfile


class ConservativeBackfill(BaseScheduler):
    """FCFS order with per-job reservations (conservative backfilling)."""

    name = "Conservative"

    def schedule(self, view: SchedulingView) -> None:
        # Start head jobs while they fit (identical to FCFS phase 1).
        while True:
            waiting = view.waiting()
            if not waiting:
                return
            head = waiting[0]
            if head.size <= view.free_nodes:
                view.start(head)
            else:
                break

        # Head is blocked: register the engine-level reservation (for
        # mode attribution and the EASY safety check), then plan every
        # queued job against the availability profile.
        view.reserve(head)
        while True:
            profile = ResourceProfile.from_cluster(view.cluster, view.now)
            started_one = False
            for job in view.waiting():
                start = profile.earliest_start(job.size, job.walltime)
                if start <= view.now and job.size <= view.free_nodes:
                    # the engine's EASY check also applies; conservative
                    # placement can never violate it
                    view.start(job)
                    started_one = True
                    break  # cluster changed; rebuild the profile
                profile.reserve(start, job.size, job.walltime)
            if not started_one:
                return
