#!/usr/bin/env python
"""Working with real traces: SWF in, schedule out, SWF back.

The paper's experiments consume the Theta and Cori production logs.
Those are not redistributable, but any Standard Workload Format (SWF)
log — e.g. from the Parallel Workloads Archive — drops straight into
this reproduction:

1. write a synthetic trace to SWF (stand-in for a downloaded log);
2. read it back with ``read_swf`` exactly as you would a real log;
3. replay it under FCFS and DRAS-DQL;
4. write the *scheduled* trace back to SWF, with the simulated wait
   times filled in, for analysis with standard SWF tooling.

Run::

    python examples/swf_trace_analysis.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    DRASConfig,
    DRASDQL,
    FCFSEasy,
    RunMetrics,
    ThetaModel,
    read_swf,
    run_simulation,
    write_swf,
)

NODES = 128


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="dras-swf-"))
    rng = np.random.default_rng(5)

    # 1. Stand-in for a production log.
    model = ThetaModel.scaled(NODES)
    original = model.generate(800, rng)
    raw_path = workdir / "theta_like.swf"
    write_swf(original, raw_path, header="synthetic Theta-like trace")
    print(f"wrote {len(original)} jobs to {raw_path}")

    # 2. Read it back the way a real archive log would be read.
    #    (queue id 1 encodes high priority in our writer.)
    trace = read_swf(raw_path, high_priority_queues=frozenset({1}))
    print(f"parsed {len(trace)} jobs; "
          f"max size {max(j.size for j in trace)} nodes; "
          f"span {trace[-1].submit_time / 86400:.1f} days")

    # 3. Replay under two policies.
    agent = DRASDQL(DRASConfig.scaled(NODES, window=10))
    for _ in range(4):  # a few quick training passes over the same trace
        run_simulation(NODES, agent, [j.copy_fresh() for j in trace])
    agent.eval(online_learning=True)

    for scheduler in (FCFSEasy(), agent):
        jobs = [j.copy_fresh() for j in trace]
        result = run_simulation(NODES, scheduler, jobs)
        m = RunMetrics.from_result(result)
        out_path = workdir / f"scheduled_{scheduler.name.lower()}.swf"
        # 4. Persist the schedule: wait times now filled in.
        write_swf(
            result.finished_jobs, out_path,
            header=f"scheduled by {scheduler.name}",
        )
        print(f"{scheduler.name:10s} avg wait {m.avg_wait / 3600:6.2f} h, "
              f"utilization {m.utilization:.3f} -> {out_path.name}")

    # sanity: the written schedule round-trips
    replayed = read_swf(workdir / "scheduled_fcfs.swf")
    print(f"\nround-trip check: re-read {len(replayed)} scheduled jobs "
          f"from SWF (wait times preserved in field 3)")


if __name__ == "__main__":
    main()
