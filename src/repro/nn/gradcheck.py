"""Numerical gradient checking.

Hand-written backward passes are the classic source of silent RL bugs;
these helpers verify every analytic gradient against central finite
differences.  Used heavily by the test suite.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.network import Network


def numeric_gradient(
    f: Callable[[], float], value: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``value``.

    ``value`` is perturbed in place entry by entry; ``f`` must read it
    afresh on each call.
    """
    grad = np.zeros_like(value)
    flat = value.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = f()
        flat[i] = orig - eps
        minus = f()
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(
    network: Network,
    x: np.ndarray,
    loss_fn: Callable[[np.ndarray], tuple[float, np.ndarray]],
    rtol: float = 1e-4,
    atol: float = 1e-6,
    max_entries: int = 64,
    rng: np.random.Generator | None = None,
) -> float:
    """Compare analytic and numeric parameter gradients.

    ``loss_fn`` maps the network output to ``(loss, dloss/doutput)``.
    A random subsample of ``max_entries`` entries per parameter keeps
    the check fast on large layers.  Returns the worst absolute error
    and raises ``AssertionError`` when tolerances are exceeded.
    """
    rng = rng or np.random.default_rng(0)

    def full_loss() -> float:
        return loss_fn(network.forward(x))[0]

    network.zero_grad()
    out = network.forward(x)
    _, grad_out = loss_fn(out)
    network.backward(grad_out)

    worst = 0.0
    for param in network.parameters():
        flat = param.value.ravel()
        analytic = param.grad.ravel()
        n = flat.size
        idx = np.arange(n) if n <= max_entries else rng.choice(
            n, size=max_entries, replace=False
        )
        for i in idx:
            orig = flat[i]
            eps = 1e-6 * max(1.0, abs(orig))
            flat[i] = orig + eps
            plus = full_loss()
            flat[i] = orig - eps
            minus = full_loss()
            flat[i] = orig
            numeric = (plus - minus) / (2 * eps)
            err = abs(numeric - analytic[i])
            tol = atol + rtol * max(abs(numeric), abs(analytic[i]))
            assert err <= tol, (
                f"gradient mismatch in {param.name}[{i}]: "
                f"analytic={analytic[i]:.8g} numeric={numeric:.8g}"
            )
            worst = max(worst, err)
    return worst
