"""Correctness tooling for the reproduction: static analysis + sanitizer.

Three layers, all in service of bit-reproducible simulation and
numerically sane training:

* :mod:`repro.check.lint` — an AST-based per-file linter with a
  pluggable rule registry (:mod:`repro.check.rules`).  It flags the
  regressions that historically break RL-scheduling reproducibility:
  global-RNG usage, wall-clock reads, mutable default arguments, exact
  float comparisons on simulation timestamps, and swallowed exceptions.
* :mod:`repro.check.project` — a whole-program model (import graph,
  cross-module symbol resolution, class hierarchy) powering the
  project-level rule families: units-of-measure checking
  (:mod:`repro.check.units`, RPR2xx), static NN shape/parameter
  verification (:mod:`repro.check.shapes`, RPR3xx), API-contract
  rules (:mod:`repro.check.contracts`, RPR4xx), profile-guided
  performance rules (:mod:`repro.check.perf`, RPR5xx — built on the
  intraprocedural CFG/dataflow engine of :mod:`repro.check.flow` and
  the call-graph hotness model of :mod:`repro.check.hotness`) and
  determinism-taint rules (:mod:`repro.check.taint`, RPR6xx — built on
  the interprocedural effect inference of :mod:`repro.check.effects`).
  Run everything with ``python -m repro check --strict [paths...]``.
* :mod:`repro.check.sanitize` — runtime assertion hooks enabled via the
  ``REPRO_SANITIZE=1`` environment variable or ``Engine(sanitize=True)``,
  verifying node conservation, event-time monotonicity, metric
  non-negativity and NaN/Inf-free network math while a run executes.

The sanitizer names are re-exported lazily (PEP 562): the static
analysis layers are pure-stdlib and must stay importable in
environments without NumPy, which :mod:`repro.check.sanitize` needs.
"""

from __future__ import annotations

from typing import Any

from repro.check.effects import (
    Effect,
    EffectModel,
    compute_effects,
    effects_for_project,
    effects_report,
)
from repro.check.flow import FunctionFlow, build_cfg, loop_depths
from repro.check.hotness import Hotness, compute_hotness, hotness_for_project
from repro.check.lint import LintConfig, Violation, lint_paths, lint_source
from repro.check.project import (
    PROJECT_RULES,
    ProjectRule,
    analyze_project,
    project_rules,
    register_project,
)
from repro.check.rules import RULES, Rule, register

__all__ = [
    "Effect",
    "EffectModel",
    "FunctionFlow",
    "Hotness",
    "LintConfig",
    "PROJECT_RULES",
    "ProjectRule",
    "RULES",
    "Rule",
    "SanitizerError",
    "Violation",
    "analyze_project",
    "build_cfg",
    "compute_effects",
    "compute_hotness",
    "effects_for_project",
    "effects_report",
    "hotness_for_project",
    "lint_paths",
    "lint_source",
    "loop_depths",
    "project_rules",
    "register",
    "register_project",
    "sanitizer_enabled",
]

_SANITIZE_NAMES = ("SanitizerError", "sanitizer_enabled")


def __getattr__(name: str) -> Any:
    """Lazily re-export the NumPy-dependent sanitizer names (PEP 562)."""
    if name in _SANITIZE_NAMES:
        from repro.check import sanitize

        return getattr(sanitize, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
