"""Optimizers updating :class:`~repro.nn.layers.Parameter` in place."""

from __future__ import annotations

import numpy as np

from repro.check import sanitize as _san
from repro.nn.layers import Parameter
from repro.obs import profile as _profile
from repro.obs import trace as _trace


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not params:
            raise ValueError("no parameters to optimize")
        self.params = params
        self.lr = lr

    def step(self) -> None:
        """Apply one update to every parameter from its current grad."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset every managed parameter's gradient accumulator."""
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Plain stochastic gradient descent, optionally with momentum."""

    def __init__(
        self, params: list[Parameter], lr: float = 0.01, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        """One (momentum-)SGD update: ``p -= lr * v`` in place."""
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimizer the paper uses, lr = 0.001."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        grad_clip: float | None = None,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.grad_clip = grad_clip
        #: when True, :attr:`last_grad_norm` is refreshed on every step
        #: (the global pre-clip gradient L2 norm); off by default so the
        #: bench hot path pays nothing for telemetry it does not use
        self.track_grad_norm = False
        #: global L2 norm of the gradient at the most recent tracked
        #: step (NaN until :attr:`track_grad_norm` sees a step)
        self.last_grad_norm = float("nan")
        self._m = [np.zeros_like(p.value) for p in params]
        self._v = [np.zeros_like(p.value) for p in params]
        self._t = 0
        # Scratch buffers sized to the largest parameter, allocated
        # lazily on the first step (so idle optimizers — e.g. ones that
        # only exist to be checkpointed — stay lean).  Reusing them
        # keeps the update free of large temporaries: allocating
        # multi-megabyte arrays every step forces the allocator back to
        # mmap and dominated the pre-batched train-step profile.
        self._scratch: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def step(self) -> None:
        """Apply one Adam update to every parameter (in place)."""
        prof = _profile.global_profiler()
        if prof is not None:
            with prof.scope("nn.adam_step"):
                return self._instrumented_step()
        return self._instrumented_step()

    def _instrumented_step(self) -> None:
        tracer = _trace.global_tracer()
        if tracer is None:
            return self._step()
        with tracer.span("nn.adam_step", t=self._t + 1,
                         params=len(self.params)):
            return self._step()

    def _scratch_for(self, shape: tuple[int, ...]) -> tuple[np.ndarray, ...]:
        """Reusable scratch views matching ``shape`` (no per-step allocs)."""
        if self._scratch is None:
            size = max(p.value.size for p in self.params)
            self._scratch = (np.empty(size), np.empty(size), np.empty(size))
        n = 1
        for dim in shape:
            n *= dim
        return tuple(buf[:n].reshape(shape) for buf in self._scratch)

    def _step(self) -> None:
        """The fused in-place Adam update.

        Mathematically (and bit-for-bit) identical to the textbook
        sequence ``m = β1·m + (1-β1)·g``, ``v = β2·v + (1-β2)·g²``,
        ``p -= lr·(m/bias1) / (sqrt(v/bias2) + ε)``, but every
        elementwise pass writes into a preallocated scratch buffer.
        The scalar multiply/divide order matches the naive expression
        exactly, so training trajectories are reproducible across the
        fused and unfused implementations.
        """
        self._t += 1
        sanitize = _san.sanitizer_enabled()
        track = self.track_grad_norm
        sq_norm_sum = 0.0
        grad_clip = self.grad_clip
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if sanitize:
                _san.check_finite(f"gradient of {p.name} (Adam step {self._t})", g)
            t1, t2, t3 = self._scratch_for(g.shape)
            if track or grad_clip is not None:
                norm = float(np.linalg.norm(g))
                if track:
                    sq_norm_sum += norm * norm
                if grad_clip is not None and norm > grad_clip:
                    np.multiply(g, grad_clip / norm, out=t3)
                    g = t3
            # m = b1*m + (1-b1)*g        (two in-place passes)
            m *= b1
            np.multiply(g, 1 - b1, out=t1)
            m += t1
            # v = b2*v + (1-b2)*g^2
            v *= b2
            np.square(g, out=t1)
            t1 *= 1 - b2
            v += t1
            # p -= lr * (m/bias1) / (sqrt(v/bias2) + eps)
            np.divide(m, bias1, out=t1)
            t1 *= self.lr
            np.divide(v, bias2, out=t2)
            np.sqrt(t2, out=t2)
            t2 += self.eps
            t1 /= t2
            shape_before = p.value.shape
            p.value -= t1
            if sanitize:
                _san.check_same_shape(p.name, shape_before, p.value.shape)
                _san.check_finite(f"value of {p.name} (Adam step {self._t})", p.value)
        if track:
            self.last_grad_norm = float(np.sqrt(sq_norm_sum))
