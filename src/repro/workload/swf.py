"""Standard Workload Format (SWF) reader and writer.

SWF is the interchange format of the Parallel Workloads Archive.  Each
non-comment line has 18 whitespace-separated fields; ``-1`` denotes a
missing value:

==  =======================  ==============================================
#   field                    use here
==  =======================  ==============================================
1   job number               ``Job.job_id``
2   submit time (s)          ``Job.submit_time``
3   wait time (s)            ignored (an output of scheduling, not input)
4   run time (s)             ``Job.runtime``
5   allocated processors     fallback size
6   average CPU time         ignored
7   used memory              ignored
8   requested processors     ``Job.size`` (divided by ``procs_per_node``)
9   requested time (s)       ``Job.walltime``
10  requested memory         ignored
11  status                   jobs with status 0/5 (failed/cancelled) kept
12  user id                  ``Job.user``
13  group id                 ignored
14  executable id            ignored
15  queue id                 optionally mapped to ``priority``
16  partition id             ignored
17  preceding job number     ``Job.dependencies``
18  think time               ignored
==  =======================  ==============================================
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable

from repro.sim.job import Job

_NUM_FIELDS = 18


def read_swf(
    path: str | Path,
    procs_per_node: int = 1,
    max_jobs: int | None = None,
    high_priority_queues: frozenset[int] = frozenset(),
    keep_dependencies: bool = True,
) -> list[Job]:
    """Parse an SWF file into a list of :class:`~repro.sim.job.Job`.

    Parameters
    ----------
    procs_per_node:
        Requested processor counts are divided by this (rounded up) to
        obtain node counts, since the simulator schedules whole nodes.
    max_jobs:
        Stop after this many jobs (useful for taking trace prefixes).
    high_priority_queues:
        SWF queue ids mapped to ``priority=1``.
    keep_dependencies:
        Honor field 17 (preceding job number).
    """
    jobs: list[Job] = []
    seen_ids: set[int] = set()
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(";"):
                continue
            parts = line.split()
            if len(parts) < _NUM_FIELDS:
                raise ValueError(
                    f"{path}:{lineno}: expected {_NUM_FIELDS} fields, got {len(parts)}"
                )
            job = _parse_record(
                parts, procs_per_node, high_priority_queues, keep_dependencies, seen_ids
            )
            if job is not None:
                jobs.append(job)
                seen_ids.add(job.job_id)
                if max_jobs is not None and len(jobs) >= max_jobs:
                    break
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs


def _parse_record(
    parts: list[str],
    procs_per_node: int,
    high_priority_queues: frozenset[int],
    keep_dependencies: bool,
    seen_ids: set[int],
) -> Job | None:
    job_id = int(parts[0])
    submit = float(parts[1])
    run_time = float(parts[3])
    allocated = int(float(parts[4]))
    requested_procs = int(float(parts[7]))
    requested_time = float(parts[8])
    user_id = parts[11]
    queue_id = int(float(parts[14]))
    preceding = int(float(parts[16]))

    procs = requested_procs if requested_procs > 0 else allocated
    if procs <= 0 or run_time <= 0 or submit < 0:
        return None  # malformed / zero-length records are skipped
    walltime = requested_time if requested_time > 0 else run_time
    size = max(1, math.ceil(procs / procs_per_node))

    deps: tuple[int, ...] = ()
    if keep_dependencies and preceding > 0 and preceding in seen_ids:
        deps = (preceding,)

    return Job(
        size=size,
        walltime=walltime,
        runtime=run_time,
        submit_time=submit,
        priority=1 if queue_id in high_priority_queues else 0,
        dependencies=deps,
        user=user_id,
        job_id=job_id,
    )


def write_swf(
    jobs: Iterable[Job],
    path: str | Path,
    procs_per_node: int = 1,
    header: str | None = None,
) -> None:
    """Serialize jobs to SWF.

    Post-scheduling fields (wait time) are emitted when available so a
    simulated schedule can round-trip through standard SWF tooling.
    """
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"; {line}\n")
        for job in jobs:
            wait = -1
            if job.start_time is not None:
                wait = int(job.start_time - job.submit_time)
            dep = job.dependencies[0] if job.dependencies else -1
            fields = [
                job.job_id,
                int(job.submit_time),
                wait,
                int(job.runtime),
                job.size * procs_per_node,   # allocated processors
                -1,
                -1,
                job.size * procs_per_node,   # requested processors
                int(job.walltime),
                -1,
                1,                           # status: completed
                job.user or -1,
                -1,
                -1,
                1 if job.priority else 0,    # queue id encodes priority
                -1,
                dep,
                -1,
            ]
            fh.write(" ".join(str(f) for f in fields) + "\n")
