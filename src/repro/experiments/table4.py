"""Table IV — job distributions across execution modes on Theta.

For every method: the percentage of *jobs* and of *core hours* executed
in each mode (backfilled / ready / reserved).  The paper's shape:

* methods without reservations (Optimization, Decima-PG, BinPacking,
  Random) run 100% of jobs as *ready*;
* FCFS and DRAS backfill the large majority of jobs (~80-85%) while
  *reserved* jobs consume the majority of core hours (~52-55%) —
  i.e. DRAS protects the big capability jobs through reservation while
  churning small jobs through backfill holes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments.common import METHOD_ORDER, full_comparison
from repro.sim.job import ExecMode

PAPER_REFERENCE = {
    # method: (backfilled jobs %, backfilled ch %, ready jobs %, ready ch %,
    #          reserved jobs %, reserved ch %)
    "Optimization": (0.0, 0.0, 100.0, 100.0, 0.0, 0.0),
    "Decima-PG": (0.0, 0.0, 100.0, 100.0, 0.0, 0.0),
    "BinPacking": (0.0, 0.0, 100.0, 100.0, 0.0, 0.0),
    "Random": (0.0, 0.0, 100.0, 100.0, 0.0, 0.0),
    "FCFS": (79.25, 30.45, 9.88, 16.99, 10.87, 52.56),
    "DRAS-PG": (83.76, 33.67, 8.63, 11.29, 7.61, 55.04),
    "DRAS-DQL": (84.83, 34.17, 6.84, 10.91, 15.17, 54.92),
}


@dataclass(frozen=True)
class ModeRow:
    method: str
    backfilled_jobs: float
    backfilled_ch: float
    ready_jobs: float
    ready_ch: float
    reserved_jobs: float
    reserved_ch: float


def run(scale: str = "default", seed: int = 0) -> list[ModeRow]:
    results = full_comparison("theta", scale, seed)
    rows = []
    for name in METHOD_ORDER:
        modes = results[name].modes
        rows.append(
            ModeRow(
                method=name,
                backfilled_jobs=100 * modes.job_share[ExecMode.BACKFILLED],
                backfilled_ch=100 * modes.core_hour_share[ExecMode.BACKFILLED],
                ready_jobs=100 * modes.job_share[ExecMode.READY],
                ready_ch=100 * modes.core_hour_share[ExecMode.READY],
                reserved_jobs=100 * modes.job_share[ExecMode.RESERVED],
                reserved_ch=100 * modes.core_hour_share[ExecMode.RESERVED],
            )
        )
    return rows


def report(rows: list[ModeRow]) -> str:
    table_rows = []
    for r in rows:
        ref = PAPER_REFERENCE.get(r.method)
        table_rows.append(
            [
                r.method,
                f"{r.backfilled_jobs:.1f}%",
                f"{r.backfilled_ch:.1f}%",
                f"{r.ready_jobs:.1f}%",
                f"{r.ready_ch:.1f}%",
                f"{r.reserved_jobs:.1f}%",
                f"{r.reserved_ch:.1f}%",
                "" if ref is None else f"paper: {ref[0]:.0f}/{ref[2]:.0f}/{ref[4]:.0f}",
            ]
        )
    return format_table(
        [
            "method",
            "backfilled jobs",
            "backfilled ch",
            "ready jobs",
            "ready ch",
            "reserved jobs",
            "reserved ch",
            "paper jobs% (bf/rdy/res)",
        ],
        table_rows,
        title="Table IV: job distributions across execution modes (Theta)",
    )
