"""§V-E — runtime overhead of the DRAS agents.

The paper reports, on a personal computer, less than 1 s per DRAS-PG
parameter update and less than 2 s per DRAS-DQL update; production
scheduling must decide within 15-30 s.  This experiment times, on the
*full-size Theta networks*, (a) one decision — a forward pass over a
full window — and (b) one parameter update, and checks them against the
real-time budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.core.config import DRASConfig
from repro.nn.losses import mse_loss, policy_gradient_loss
from repro.nn.network import build_dras_network
from repro.nn.optim import Adam

REALTIME_BUDGET_S = 15.0


@dataclass(frozen=True)
class OverheadResult:
    agent: str
    decision_s: float
    update_s: float
    params: int

    @property
    def within_budget(self) -> bool:
        return self.decision_s < REALTIME_BUDGET_S


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_pg(config: DRASConfig, batch: int = 10, repeats: int = 3) -> OverheadResult:
    dims = config.pg_dims
    rng = np.random.default_rng(0)
    net = build_dras_network(dims.rows, dims.hidden1, dims.hidden2, dims.outputs, rng=rng)
    opt = Adam(net.parameters(), lr=config.learning_rate)
    x1 = rng.random((1, dims.rows, 2))
    xb = rng.random((batch, dims.rows, 2))
    masks = np.ones((batch, dims.outputs), dtype=bool)
    actions = rng.integers(dims.outputs, size=batch)
    advantages = rng.normal(size=batch)

    decision = _time(lambda: net.forward(x1), repeats)

    def update() -> None:
        net.zero_grad()
        logits = net.forward(xb)
        _, grad = policy_gradient_loss(logits, masks, actions, advantages)
        net.backward(grad)
        opt.step()

    return OverheadResult(
        agent="DRAS-PG",
        decision_s=decision,
        update_s=_time(update, repeats),
        params=sum(p.size for p in net.parameters()),
    )


def measure_dql(config: DRASConfig, batch: int = 10, repeats: int = 3) -> OverheadResult:
    dims = config.dql_dims
    rng = np.random.default_rng(0)
    net = build_dras_network(dims.rows, dims.hidden1, dims.hidden2, dims.outputs, rng=rng)
    opt = Adam(net.parameters(), lr=config.learning_rate)
    # one decision = scoring every job in the window
    x_window = rng.random((config.window, dims.rows, 2))
    xb = rng.random((batch, dims.rows, 2))
    targets = rng.normal(size=(batch, 1))

    decision = _time(lambda: net.forward(x_window), repeats)

    def update() -> None:
        net.zero_grad()
        q = net.forward(xb)
        _, grad = mse_loss(q, targets)
        net.backward(grad)
        opt.step()

    return OverheadResult(
        agent="DRAS-DQL",
        decision_s=decision,
        update_s=_time(update, repeats),
        params=sum(p.size for p in net.parameters()),
    )


def run(full_size: bool = True, repeats: int = 3) -> list[OverheadResult]:
    """Measure overheads.

    ``full_size`` times the real Theta architecture (21.9M / 21.4M
    parameters); otherwise a scaled config (useful in tests).
    """
    config = DRASConfig.theta() if full_size else DRASConfig.scaled(256)
    return [measure_pg(config, repeats=repeats), measure_dql(config, repeats=repeats)]


def report(results: list[OverheadResult]) -> str:
    rows = [
        [
            r.agent,
            f"{r.params:,}",
            f"{r.decision_s * 1000:.1f} ms",
            f"{r.update_s * 1000:.1f} ms",
            "yes" if r.within_budget else "NO",
            "paper: <1 s/update" if r.agent == "DRAS-PG" else "paper: <2 s/update",
        ]
        for r in results
    ]
    return format_table(
        ["agent", "parameters", "decision", "parameter update", "within 15 s budget", "reference"],
        rows,
        title="Sec V-E: DRAS runtime overhead (full-size Theta networks)",
    )
