"""Reusable engine observers for instrumentation and analysis.

Observers receive ``on_start`` / ``on_finish`` / ``on_instance``
callbacks from the engine (all optional).  These recorders capture the
time series that the experiments and ad-hoc analyses need: queue depth,
node occupancy, and a structured event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.engine import SchedulingView
from repro.sim.job import Job


class QueueDepthRecorder:
    """Samples the wait-queue depth at every scheduling instance."""

    def __init__(self) -> None:
        self.times: list[float] = []
        self.depths: list[int] = []
        self.held: list[int] = []

    def on_instance(self, view: SchedulingView, started) -> None:
        """Observer hook: record queue depth at this instance."""
        self.times.append(view.now)
        self.depths.append(len(view.waiting()))
        self.held.append(view._engine.queue.total_pending - len(view.waiting()))

    @property
    def max_depth(self) -> int:
        """Deepest queue observed (0 when no instances ran)."""
        return max(self.depths, default=0)

    def mean_depth(self) -> float:
        """Average queue depth over all instances (0 when none ran)."""
        return float(np.mean(self.depths)) if self.depths else 0.0

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, depths)`` as numpy arrays, for plotting."""
        return np.asarray(self.times), np.asarray(self.depths, dtype=np.int64)


class UtilizationTimeline:
    """Piecewise-constant node-occupancy timeline.

    Records a ``(time, used_nodes)`` step whenever occupancy changes,
    enabling exact time-weighted utilization over any interval.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self._times: list[float] = [0.0]
        self._used: list[int] = [0]

    def _record(self, now: float, used: int) -> None:
        if now < self._times[-1]:
            raise ValueError("time went backwards")
        # same engine-clock float observed twice, never recomputed
        if now == self._times[-1]:  # repro: noqa[float-time-eq]
            self._used[-1] = used
        else:
            self._times.append(now)
            self._used.append(used)

    def on_start(self, job: Job, now: float) -> None:
        """Observer hook: occupancy step up by ``job.size``."""
        self._record(now, self._used[-1] + job.size)

    def on_finish(self, job: Job, now: float) -> None:
        """Observer hook: occupancy step down by ``job.size``."""
        self._record(now, self._used[-1] - job.size)

    def on_kill(self, job: Job, now: float) -> None:
        """Observer hook: a fault kill also releases the job's nodes."""
        self._record(now, self._used[-1] - job.size)

    def utilization_between(self, t0: float, t1: float) -> float:
        """Exact time-weighted utilization over ``[t0, t1]``."""
        if t1 <= t0:
            raise ValueError("need t1 > t0")
        times = np.asarray(self._times)
        used = np.asarray(self._used, dtype=np.float64)
        # integrate the step function over [t0, t1]
        edges = np.concatenate([[t0], times[(times > t0) & (times < t1)], [t1]])
        # value on each sub-interval = last step at or before its left edge
        idx = np.searchsorted(times, edges[:-1], side="right") - 1
        idx = np.clip(idx, 0, used.size - 1)
        integral = float(np.sum(used[idx] * np.diff(edges)))
        return integral / (self.num_nodes * (t1 - t0))

    def steps(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, used_nodes)`` breakpoints of the step function."""
        return np.asarray(self._times), np.asarray(self._used, dtype=np.int64)


@dataclass(frozen=True)
class LoggedEvent:
    """One start or finish, as recorded by :class:`EventLog`."""

    time: float
    kind: str           #: "start" | "finish" | "kill"
    job_id: int
    size: int
    mode: str | None = None


@dataclass
class EventLog:
    """Structured start/finish log for offline inspection."""

    events: list[LoggedEvent] = field(default_factory=list)

    def on_start(self, job: Job, now: float) -> None:
        """Observer hook: append a ``start`` record."""
        self.events.append(
            LoggedEvent(now, "start", job.job_id, job.size,
                        job.mode.value if job.mode else None)
        )

    def on_finish(self, job: Job, now: float) -> None:
        """Observer hook: append a ``finish`` record."""
        self.events.append(LoggedEvent(now, "finish", job.job_id, job.size))

    def on_kill(self, job: Job, now: float) -> None:
        """Observer hook: append a ``kill`` record (fault-aborted job)."""
        self.events.append(LoggedEvent(now, "kill", job.job_id, job.size))

    def starts(self) -> list[LoggedEvent]:
        """Only the ``start`` records, in time order."""
        return [e for e in self.events if e.kind == "start"]

    def finishes(self) -> list[LoggedEvent]:
        """Only the ``finish`` records, in time order."""
        return [e for e in self.events if e.kind == "finish"]
