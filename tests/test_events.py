"""Unit tests for the event queue."""

import pytest

from repro.sim.events import EventKind, EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(5.0, EventKind.SUBMIT, 1)
        q.push(2.0, EventKind.SUBMIT, 2)
        q.push(9.0, EventKind.SUBMIT, 3)
        assert [q.pop().job_id for _ in range(3)] == [2, 1, 3]

    def test_finish_before_submit_at_same_time(self):
        # a job finishing at t frees nodes before arrivals at t are seen
        q = EventQueue()
        q.push(10.0, EventKind.SUBMIT, 1)
        q.push(10.0, EventKind.FINISH, 2)
        assert q.pop().kind is EventKind.FINISH

    def test_fifo_among_identical(self):
        q = EventQueue()
        for job_id in (7, 8, 9):
            q.push(1.0, EventKind.SUBMIT, job_id)
        assert [q.pop().job_id for _ in range(3)] == [7, 8, 9]

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.SUBMIT, 1)


class TestSimultaneous:
    def test_pop_simultaneous_groups_by_time(self):
        q = EventQueue()
        q.push(1.0, EventKind.SUBMIT, 1)
        q.push(1.0, EventKind.SUBMIT, 2)
        q.push(2.0, EventKind.SUBMIT, 3)
        batch = q.pop_simultaneous()
        assert [e.job_id for e in batch] == [1, 2]
        assert len(q) == 1

    def test_pop_simultaneous_single(self):
        q = EventQueue()
        q.push(1.0, EventKind.SUBMIT, 1)
        assert len(q.pop_simultaneous()) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().pop_simultaneous()


class TestContainer:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, EventKind.SUBMIT, 1)
        assert q and len(q) == 1

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(3.0, EventKind.SUBMIT, 1)
        assert q.peek().job_id == 1
        assert len(q) == 1

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, EventKind.SUBMIT, 1)
        q.clear()
        assert not q
