"""Run manifests: what produced this result file, exactly.

A :class:`RunManifest` is a small JSON document capturing everything
needed to re-run (or distrust) an experiment or benchmark: the run
kind, the seed, the git commit, the configuration knobs, the
workload-model parameters and a summary-metrics block.

Determinism contract: two manifests created from identical inputs are
identical except for the fields named in :data:`VOLATILE_FIELDS`
(currently the creation timestamp).  :meth:`RunManifest.stable_digest`
hashes the canonical JSON with those fields removed, so a digest
mismatch always means the *inputs* changed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: schema tag stamped into every manifest
MANIFEST_SCHEMA = "repro.manifest/v1"

#: manifest fields excluded from :meth:`RunManifest.stable_digest` and
#: from determinism comparisons (they legitimately differ between runs
#: of the same inputs)
VOLATILE_FIELDS = frozenset({"created_unix"})


def git_sha(cwd: str | Path | None = None) -> str:
    """The current git commit (short SHA), or ``"unknown"``.

    Never raises: missing ``git``, a non-repo directory and a detached
    environment all degrade to the sentinel so manifests can always be
    written.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def describe_workload(model: Any) -> dict[str, Any]:
    """Manifest-friendly parameter summary of a workload model.

    Accepts a :class:`~repro.workload.models.WorkloadModel` (or anything
    shaped like one) and extracts the identifying scalars; unknown
    attributes are simply omitted, so the helper never raises on model
    variants.
    """
    out: dict[str, Any] = {}
    for attr in ("name", "num_nodes", "priority_threshold", "dependency_prob"):
        value = getattr(model, attr, None)
        if value is not None:
            out[attr] = value
    offered = getattr(model, "offered_load", None)
    if callable(offered):
        try:
            out["offered_load"] = float(offered())
        except (TypeError, ValueError, ZeroDivisionError):
            pass  # model variant without a computable load; omit the key
    return out


def _jsonable(value: Any) -> Any:
    """Recursively coerce ``value`` into JSON-serializable plain types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item) and not isinstance(value, (str, bytes)):
        try:
            return item()
        except (TypeError, ValueError):
            pass  # not a zero-d array after all; fall through to repr
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class RunManifest:
    """Provenance record of one experiment/benchmark/training run.

    Parameters
    ----------
    kind:
        What produced this manifest (``"bench"``, ``"simulate"``,
        ``"train"``, ``"reproduce"``, ...).
    seed:
        The run's root seed (``None`` when the run takes no seed).
    git_sha:
        Short commit SHA of the working tree, or ``"unknown"``.
    config:
        Configuration knobs (CLI arguments, ``DRASConfig`` fields, ...).
    workload:
        Workload-model parameters (see :func:`describe_workload`).
    summary:
        Headline result metrics of the run.
    created_unix:
        Wall-clock creation time (unix seconds), or ``None`` for fully
        deterministic manifests.  Excluded from :meth:`stable_digest`.
    """

    kind: str
    seed: int | None
    git_sha: str
    config: dict[str, Any]
    workload: dict[str, Any]
    summary: dict[str, Any]
    created_unix: float | None
    schema: str = MANIFEST_SCHEMA

    @classmethod
    def create(
        cls,
        kind: str,
        seed: int | None = None,
        config: dict[str, Any] | None = None,
        workload: dict[str, Any] | None = None,
        summary: dict[str, Any] | None = None,
        timestamp: bool = True,
        sha: str | None = None,
    ) -> "RunManifest":
        """Build a manifest, filling in the git SHA and timestamp.

        ``timestamp=False`` omits the wall-clock field for byte-identical
        reruns; ``sha`` overrides git discovery (used in tests).
        """
        if timestamp:
            # Provenance metadata only: the timestamp records *when* the
            # artifact was produced and never flows into simulation
            # state; VOLATILE_FIELDS excludes it from digests.
            created: float | None = time.time()  # repro: noqa[wall-clock]
        else:
            created = None
        return cls(
            kind=kind,
            seed=seed,
            git_sha=sha if sha is not None else git_sha(),
            config=_jsonable(config or {}),
            workload=_jsonable(workload or {}),
            summary=_jsonable(summary or {}),
            created_unix=created,
        )

    def as_dict(self) -> dict[str, Any]:
        """The manifest as a plain JSON-ready dict."""
        return {
            "schema": self.schema,
            "kind": self.kind,
            "seed": self.seed,
            "git_sha": self.git_sha,
            "config": self.config,
            "workload": self.workload,
            "summary": self.summary,
            "created_unix": self.created_unix,
        }

    def stable_digest(self) -> str:
        """SHA-256 over the canonical JSON, minus volatile fields.

        Two runs of the same code on the same inputs produce the same
        digest even though their timestamps differ.
        """
        doc = {k: v for k, v in self.as_dict().items() if k not in VOLATILE_FIELDS}
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def write(self, path: str | Path) -> Path:
        """Write the manifest as pretty-printed JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    @staticmethod
    def read(path: str | Path) -> "RunManifest":
        """Load a manifest previously written with :meth:`write`."""
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        if doc.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"{path}: unknown manifest schema {doc.get('schema')!r}"
            )
        return RunManifest(
            kind=doc["kind"],
            seed=doc.get("seed"),
            git_sha=doc.get("git_sha", "unknown"),
            config=doc.get("config", {}),
            workload=doc.get("workload", {}),
            summary=doc.get("summary", {}),
            created_unix=doc.get("created_unix"),
        )
