"""Per-layer gradient checks for every layer type in ``repro.nn.layers``.

``check_gradients`` is exercised elsewhere on full DRAS stacks; these
tests isolate each layer (Conv1x2, Dense with and without bias,
LeakyReLU) so a broken backward pass is attributed to the exact layer,
and additionally verify *input* gradients via ``numeric_gradient``,
which the parameter-only checker does not cover.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients, numeric_gradient
from repro.nn.layers import Conv1x2, Dense, LeakyReLU
from repro.nn.network import Network, build_dras_network


def quadratic_loss(y: np.ndarray) -> tuple[float, np.ndarray]:
    """``0.5 * sum(y^2)`` and its gradient — a generic smooth probe."""
    return 0.5 * float(np.sum(y * y)), y


def away_from_kink(x: np.ndarray, margin: float = 0.05) -> np.ndarray:
    """Push values away from 0 so LeakyReLU's kink can't bias the check."""
    return np.where(np.abs(x) < margin, x + 2 * margin, x)


class TestParameterGradients:
    def test_conv1x2_alone(self):
        rng = np.random.default_rng(7)
        net = Network([Conv1x2(rng=rng)])
        x = rng.normal(size=(4, 6, 2))
        worst = check_gradients(net, x, quadratic_loss, rng=rng)
        assert worst < 1e-3

    def test_dense_no_bias(self):
        rng = np.random.default_rng(8)
        net = Network([Dense(5, 3, bias=False, rng=rng, name="fc")])
        x = rng.normal(size=(4, 5))
        worst = check_gradients(net, x, quadratic_loss, rng=rng)
        assert worst < 1e-3

    def test_dense_with_bias(self):
        """The output layer shape: bias=True (Table III's `+ out` term)."""
        rng = np.random.default_rng(9)
        net = Network([Dense(4, 2, bias=True, rng=rng, name="out")])
        x = rng.normal(size=(3, 4))
        worst = check_gradients(net, x, quadratic_loss, rng=rng)
        assert worst < 1e-3

    def test_leaky_relu_has_no_parameters(self):
        net = Network([LeakyReLU(0.01)])
        assert net.parameters() == []

    def test_full_dras_stack(self):
        rng = np.random.default_rng(10)
        net = build_dras_network(rows=6, hidden1=5, hidden2=4, outputs=2,
                                 rng=rng)
        x = rng.normal(size=(2, 6, 2))
        worst = check_gradients(net, x, quadratic_loss, rng=rng)
        assert worst < 1e-3


class TestInputGradients:
    @pytest.mark.parametrize("alpha", [0.01, 0.2])
    def test_leaky_relu_input_gradient(self, alpha):
        rng = np.random.default_rng(11)
        net = Network([LeakyReLU(alpha)])
        x = away_from_kink(rng.normal(size=(3, 5)))

        def loss() -> float:
            return quadratic_loss(net.forward(x))[0]

        y = net.forward(x)
        analytic = net.backward(quadratic_loss(y)[1])
        numeric = numeric_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_conv1x2_input_gradient(self):
        rng = np.random.default_rng(12)
        net = Network([Conv1x2(rng=rng)])
        x = rng.normal(size=(2, 4, 2))

        def loss() -> float:
            return quadratic_loss(net.forward(x))[0]

        y = net.forward(x)
        analytic = net.backward(quadratic_loss(y)[1])
        numeric = numeric_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_dense_input_gradient(self):
        rng = np.random.default_rng(13)
        net = Network([Dense(5, 3, bias=True, rng=rng, name="fc")])
        x = rng.normal(size=(2, 5))

        def loss() -> float:
            return quadratic_loss(net.forward(x))[0]

        y = net.forward(x)
        analytic = net.backward(quadratic_loss(y)[1])
        numeric = numeric_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)
