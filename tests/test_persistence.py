"""Unit tests for full-agent checkpointing."""

import numpy as np
import pytest

from repro.core.config import DRASConfig
from repro.core.decima import DecimaPG
from repro.core.dras_dql import DRASDQL
from repro.core.dras_pg import DRASPG
from repro.core.persistence import load_agent, save_agent
from repro.sim.engine import run_simulation
from tests.conftest import make_job


def small_config(**overrides):
    base = dict(num_nodes=8, window=3, hidden1=12, hidden2=6, seed=0,
                objective="capability", time_scale=100.0)
    base.update(overrides)
    return DRASConfig(**base)


def train_a_little(agent):
    jobs = [make_job(size=2, walltime=20.0, submit=float(i * 5)) for i in range(12)]
    run_simulation(8, agent, jobs)
    return agent


@pytest.mark.parametrize("cls,kind", [(DRASPG, "pg"), (DRASDQL, "dql"),
                                      (DecimaPG, "decima")])
class TestRoundTrip:
    def test_weights_roundtrip(self, cls, kind, tmp_path):
        agent = train_a_little(cls(small_config()))
        path = tmp_path / "agent.npz"
        save_agent(agent, path)
        restored = load_agent(path)
        assert type(restored) is cls
        a, b = agent.state_dict(), restored.state_dict()
        assert all(np.allclose(a[k], b[k]) for k in a)

    def test_config_roundtrip(self, cls, kind, tmp_path):
        agent = cls(small_config(window=3, update_every=4))
        path = tmp_path / "agent.npz"
        save_agent(agent, path)
        restored = load_agent(path)
        assert restored.config == agent.config

    def test_optimizer_state_roundtrip(self, cls, kind, tmp_path):
        agent = train_a_little(cls(small_config()))
        path = tmp_path / "agent.npz"
        save_agent(agent, path)
        restored = load_agent(path)
        assert restored.optimizer._t == agent.optimizer._t
        assert restored.optimizer._t > 0  # training actually stepped Adam
        for m1, m2 in zip(agent.optimizer._m, restored.optimizer._m):
            assert np.allclose(m1, m2)


class TestKindSpecificState:
    def test_pg_baseline_restored(self, tmp_path):
        agent = train_a_little(DRASPG(small_config()))
        path = tmp_path / "a.npz"
        save_agent(agent, path)
        restored = load_agent(path)
        assert np.allclose(agent.core.baseline._sums,
                           restored.core.baseline._sums)
        assert np.allclose(agent.core.baseline._counts,
                           restored.core.baseline._counts)
        assert restored.core.baseline._counts.sum() > 0

    def test_dql_epsilon_restored(self, tmp_path):
        agent = train_a_little(DRASDQL(small_config(update_every=1)))
        assert agent.epsilon < 1.0
        path = tmp_path / "a.npz"
        save_agent(agent, path)
        restored = load_agent(path)
        assert restored.epsilon == pytest.approx(agent.epsilon)


class TestResumedTrainingEquivalence:
    def test_restored_agent_schedules_identically(self, tmp_path):
        """A frozen restored agent reproduces the original's decisions."""
        agent = train_a_little(DRASDQL(small_config()))
        path = tmp_path / "a.npz"
        save_agent(agent, path)
        restored = load_agent(path)

        def run_frozen(a):
            a.eval(online_learning=False)
            jobs = [make_job(size=s, walltime=20.0, submit=0.0)
                    for s in (1, 2, 4, 2)]
            run_simulation(8, a, jobs)
            return [j.start_time for j in jobs]

        assert run_frozen(agent) == run_frozen(restored)


class TestErrors:
    def test_unsupported_type(self, tmp_path):
        from repro.schedulers import FCFSEasy

        with pytest.raises(TypeError):
            save_agent(FCFSEasy(), tmp_path / "x.npz")

    def test_bad_format_version(self, tmp_path):
        import json

        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez(path, __meta__=np.array(json.dumps({"format_version": 99})))
        with pytest.raises(ValueError, match="format"):
            load_agent(path)


class TestDurability:
    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        from repro.core.persistence import CheckpointError

        with pytest.raises(CheckpointError, match="does not exist"):
            load_agent(tmp_path / "nope.npz")

    def test_truncated_file_raises_checkpoint_error(self, tmp_path):
        """A clipped checkpoint (simulated torn write) must fail loudly."""
        from repro.core.persistence import CheckpointError

        path = tmp_path / "a.npz"
        save_agent(DRASPG(small_config()), path)
        blob = path.read_bytes()
        for cut in (len(blob) // 2, len(blob) - 10, 3):
            path.write_bytes(blob[:cut])
            with pytest.raises(CheckpointError,
                               match="truncated or corrupted|incomplete"):
                load_agent(path)

    def test_garbage_file_raises_checkpoint_error(self, tmp_path):
        from repro.core.persistence import CheckpointError

        path = tmp_path / "a.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(CheckpointError):
            load_agent(path)

    def test_non_checkpoint_npz_raises_checkpoint_error(self, tmp_path):
        """A valid npz missing the checkpoint keys is rejected, not KeyError."""
        from repro.core.persistence import CheckpointError

        path = tmp_path / "a.npz"
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(CheckpointError, match="incomplete or corrupted"):
            load_agent(path)

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "a.npz"
        save_agent(DRASPG(small_config()), path)
        assert path.exists()
        leftovers = [p for p in tmp_path.iterdir() if p.name != "a.npz"]
        assert leftovers == []

    def test_overwrite_preserves_old_on_save_failure(self, tmp_path):
        """A failed re-save must leave the previous checkpoint readable."""
        from repro.core import persistence

        path = tmp_path / "a.npz"
        agent = DRASPG(small_config())
        save_agent(agent, path)
        before = path.read_bytes()

        class Boom:
            def __array__(self, dtype=None, copy=None):
                raise RuntimeError("boom")

        bad = {"x": Boom()}
        with pytest.raises(RuntimeError, match="boom"):
            persistence.atomic_savez(path, bad)
        assert path.read_bytes() == before
        load_agent(path)  # still a valid checkpoint
