"""Unit + property tests for the synthetic workload building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.generator import (
    CategoricalSizes,
    DiurnalArrivals,
    LognormalRuntimes,
    PoissonArrivals,
)


class TestPoissonArrivals:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)

    def test_times_sorted_and_positive(self, rng):
        times = PoissonArrivals(0.1).sample(100, rng)
        assert np.all(np.diff(times) > 0)
        assert times[0] > 0

    def test_mean_rate_approximate(self, rng):
        rate = 0.5
        times = PoissonArrivals(rate).sample(5000, rng)
        empirical = len(times) / times[-1]
        assert empirical == pytest.approx(rate, rel=0.1)

    def test_start_offset(self, rng):
        times = PoissonArrivals(1.0).sample(10, rng, start=1000.0)
        assert times[0] > 1000.0


class TestDiurnalArrivals:
    def test_profile_validation(self):
        with pytest.raises(ValueError, match="24"):
            DiurnalArrivals(1.0, hourly=(1.0,) * 23)
        with pytest.raises(ValueError, match="7"):
            DiurnalArrivals(1.0, daily=(1.0,) * 6)
        with pytest.raises(ValueError, match="non-negative"):
            DiurnalArrivals(1.0, hourly=(-1.0,) + (1.0,) * 23)
        with pytest.raises(ValueError):
            DiurnalArrivals(0.0)

    def test_profiles_normalized_to_mean_one(self):
        arr = DiurnalArrivals(1.0, hourly=tuple(range(1, 25)))
        assert np.mean(arr.hourly) == pytest.approx(1.0)

    def test_rate_at_combines_profiles(self):
        hourly = [1.0] * 24
        hourly[12] = 2.0
        arr = DiurnalArrivals(1.0, hourly=tuple(hourly))
        noon = 12 * 3600.0
        midnight = 0.0
        assert arr.rate_at(noon) > arr.rate_at(midnight)

    def test_long_run_rate_matches_base(self, rng):
        arr = DiurnalArrivals(
            0.05,
            hourly=tuple(1.0 + 0.5 * np.sin(np.arange(24))),
        )
        times = arr.sample(4000, rng)
        empirical = len(times) / times[-1]
        assert empirical == pytest.approx(0.05, rel=0.15)

    def test_flat_profile_equals_poisson_statistics(self, rng):
        arr = DiurnalArrivals(0.1)
        times = arr.sample(3000, rng)
        gaps = np.diff(times)
        # exponential gaps: mean ~ 10, cv ~ 1
        assert np.mean(gaps) == pytest.approx(10.0, rel=0.15)
        assert np.std(gaps) / np.mean(gaps) == pytest.approx(1.0, rel=0.2)


class TestCategoricalSizes:
    def test_validation(self):
        with pytest.raises(ValueError):
            CategoricalSizes((), ())
        with pytest.raises(ValueError):
            CategoricalSizes((1, 2), (0.5,))
        with pytest.raises(ValueError):
            CategoricalSizes((0,), (1.0,))
        with pytest.raises(ValueError):
            CategoricalSizes((1,), (-1.0,))
        with pytest.raises(ValueError):
            CategoricalSizes((1,), (0.0,))

    def test_probs_normalized(self):
        dist = CategoricalSizes((1, 2), (2.0, 6.0))
        assert dist.probs == pytest.approx((0.25, 0.75))

    def test_from_dict_sorted(self):
        dist = CategoricalSizes.from_dict({4: 0.5, 1: 0.5})
        assert dist.sizes == (1, 4)

    def test_sample_values_in_support(self, rng):
        dist = CategoricalSizes((1, 4, 16), (0.5, 0.3, 0.2))
        samples = dist.sample(1000, rng)
        assert set(np.unique(samples)) <= {1, 4, 16}

    def test_sample_frequencies(self, rng):
        dist = CategoricalSizes((1, 4), (0.8, 0.2))
        samples = dist.sample(20000, rng)
        assert np.mean(samples == 1) == pytest.approx(0.8, abs=0.02)

    def test_mean(self):
        dist = CategoricalSizes((2, 10), (0.5, 0.5))
        assert dist.mean() == pytest.approx(6.0)


class TestLognormalRuntimes:
    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalRuntimes(median=0, sigma=1, max_runtime=100)
        with pytest.raises(ValueError):
            LognormalRuntimes(median=10, sigma=1, max_runtime=5, min_runtime=10)
        with pytest.raises(ValueError):
            LognormalRuntimes(median=10, sigma=1, max_runtime=100,
                              mean_overestimate=-1)

    def test_clipping(self, rng):
        dist = LognormalRuntimes(median=100.0, sigma=2.0, max_runtime=500.0,
                                 min_runtime=50.0)
        runtimes, walltimes = dist.sample(5000, rng)
        assert runtimes.min() >= 50.0
        assert runtimes.max() <= 500.0
        assert walltimes.max() <= 500.0

    def test_walltime_at_least_runtime(self, rng):
        dist = LognormalRuntimes(median=100.0, sigma=1.0, max_runtime=1000.0)
        runtimes, walltimes = dist.sample(5000, rng)
        assert np.all(walltimes >= runtimes)

    def test_median_approximate(self, rng):
        dist = LognormalRuntimes(median=1000.0, sigma=0.5, max_runtime=1e6,
                                 min_runtime=1.0)
        runtimes, _ = dist.sample(20000, rng)
        assert np.median(runtimes) == pytest.approx(1000.0, rel=0.05)

    def test_overestimation_mean(self, rng):
        dist = LognormalRuntimes(median=100.0, sigma=0.1, max_runtime=1e9,
                                 min_runtime=1.0, mean_overestimate=1.0)
        runtimes, walltimes = dist.sample(20000, rng)
        ratio = walltimes / runtimes
        # 1 + Exp(1): mean 2
        assert np.mean(ratio) == pytest.approx(2.0, rel=0.1)


@settings(max_examples=25, deadline=None)
@given(
    probs=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=8),
    n=st.integers(1, 200),
)
def test_categorical_sizes_property(probs, n):
    """Any positive weighting yields valid samples from the support."""
    sizes = tuple(2**i for i in range(len(probs)))
    dist = CategoricalSizes(sizes, tuple(probs))
    assert sum(dist.probs) == pytest.approx(1.0)
    samples = dist.sample(n, np.random.default_rng(0))
    assert len(samples) == n
    assert set(np.unique(samples)) <= set(sizes)
