"""Benchmark: regenerate Table III (network configs + parameter counts).

This is the exact-reproduction benchmark: three of the paper's four
trainable-parameter counts are matched digit for digit; the fourth
(Cori DRAS-DQL) is internally inconsistent in the paper (DESIGN.md §4).
"""

from conftest import save_report

from repro.experiments import table3


def test_table3(benchmark, report_dir):
    rows = benchmark(table3.run)
    text = table3.report(rows)
    save_report(report_dir, "table3", text)

    by_name = {r.name: r for r in rows}
    assert by_name["theta-pg"].analytic_params == 21_890_053
    assert by_name["theta-pg"].matches_paper
    assert by_name["theta-dql"].analytic_params == 21_449_004
    assert by_name["theta-dql"].matches_paper
    assert by_name["cori-pg"].analytic_params == 161_960_053
    assert by_name["cori-pg"].matches_paper
    assert by_name["cori-dql"].analytic_params == 160_784_004
    assert not by_name["cori-dql"].matches_paper  # documented inconsistency


def test_table3_theta_networks_instantiate(benchmark, report_dir):
    """Materialize the full-size Theta networks and count parameters."""
    import numpy as np

    from repro.core.config import table3_configs
    from repro.nn.network import build_dras_network, count_parameters

    def build_and_count():
        rng = np.random.default_rng(0)
        counts = {}
        for name in ("theta-pg", "theta-dql"):
            dims = table3_configs()[name]
            net = build_dras_network(
                dims.rows, dims.hidden1, dims.hidden2, dims.outputs, rng=rng
            )
            counts[name] = count_parameters(net)
        return counts

    counts = benchmark.pedantic(build_and_count, rounds=1, iterations=1)
    assert counts["theta-pg"] == 21_890_053
    assert counts["theta-dql"] == 21_449_004
