"""Unit tests for DRAS configuration and Table III dimensions."""

import pytest

from repro.core.config import DRASConfig, NetworkDims, table3_configs


class TestNetworkDims:
    def test_positive_dims_required(self):
        with pytest.raises(ValueError):
            NetworkDims(rows=0, hidden1=1, hidden2=1, outputs=1)

    def test_param_count_formula(self):
        dims = NetworkDims(rows=10, hidden1=8, hidden2=4, outputs=3)
        assert dims.param_count == 3 + 80 + 32 + 12 + 3


class TestTable3:
    """The exact reproduction of the paper's Table III."""

    def test_theta_pg(self):
        dims = table3_configs()["theta-pg"]
        assert (dims.rows, dims.hidden1, dims.hidden2, dims.outputs) == (
            4460, 4000, 1000, 50,
        )
        assert dims.param_count == 21_890_053

    def test_theta_dql(self):
        dims = table3_configs()["theta-dql"]
        assert dims.rows == 4362
        assert dims.param_count == 21_449_004

    def test_cori_pg(self):
        dims = table3_configs()["cori-pg"]
        assert (dims.rows, dims.hidden1, dims.hidden2) == (12176, 10000, 4000)
        assert dims.param_count == 161_960_053

    def test_cori_dql_documented_inconsistency(self):
        # the paper prints 161,764,004, inconsistent with its own layer
        # sizes; the architecture that matches the other three cells gives:
        dims = table3_configs()["cori-dql"]
        assert dims.param_count == 160_784_004


class TestDRASConfig:
    def test_defaults_follow_paper(self):
        cfg = DRASConfig(num_nodes=100)
        assert cfg.window == 50
        assert cfg.learning_rate == 0.001
        assert cfg.update_every == 10
        assert cfg.epsilon_start == 1.0
        assert cfg.epsilon_decay == 0.995

    def test_validation(self):
        with pytest.raises(ValueError):
            DRASConfig(num_nodes=0)
        with pytest.raises(ValueError):
            DRASConfig(num_nodes=10, window=0)
        with pytest.raises(ValueError):
            DRASConfig(num_nodes=10, objective="fair")
        with pytest.raises(ValueError):
            DRASConfig(num_nodes=10, update_every=0)
        with pytest.raises(ValueError):
            DRASConfig(num_nodes=10, epsilon_min=0.9, epsilon_start=0.5)
        with pytest.raises(ValueError):
            DRASConfig(num_nodes=10, epsilon_decay=0.0)
        with pytest.raises(ValueError):
            DRASConfig(num_nodes=10, gamma=1.5)

    def test_theta_preset(self):
        cfg = DRASConfig.theta()
        assert cfg.num_nodes == 4360
        assert cfg.objective == "capability"
        assert cfg.pg_dims.rows == 4460

    def test_cori_preset(self):
        cfg = DRASConfig.cori()
        assert cfg.num_nodes == 12076
        assert cfg.objective == "capacity"
        assert cfg.hidden1 == 10000

    def test_preset_overrides(self):
        cfg = DRASConfig.theta(window=10, seed=42)
        assert cfg.window == 10
        assert cfg.seed == 42
        assert cfg.num_nodes == 4360

    def test_scaled_tracks_input_size(self):
        small = DRASConfig.scaled(64)
        large = DRASConfig.scaled(1024)
        assert small.hidden1 < large.hidden1
        assert small.pg_dims.rows == 2 * small.window + 64

    def test_dql_dims(self):
        cfg = DRASConfig.scaled(64, window=8)
        assert cfg.dql_dims.rows == 66
        assert cfg.dql_dims.outputs == 1
