#!/usr/bin/env python
"""Extending the system: a custom reward and a custom scheduler.

The DRAS agents accept *any* reward function with the
``(selected, waiting, cluster, now)`` signature, and the simulator
accepts any object with a ``schedule(view)`` method — so site policies
beyond the paper's two objectives are a few lines of code.  This
example adds:

* ``FairShareReward`` — rewards balancing node-hours across users;
* ``ShortestJobFirst`` — a classic SJF heuristic with EASY backfilling,
  built from the same primitives as the bundled FCFS policy;

and evaluates DRAS-PG trained on the custom reward against SJF and
FCFS.

Run::

    python examples/custom_policy.py
"""

from collections import defaultdict

import numpy as np

from repro import DRASConfig, DRASPG, FCFSEasy, ThetaModel
from repro.analysis import evaluate_method
from repro.rl import Trainer
from repro.schedulers.base import BaseScheduler

NODES = 128


class FairShareReward:
    """Reward high when recent node-hours are spread across users.

    One minus the normalized Herfindahl concentration of the selected
    jobs' node-seconds per user, blended with the utilization term that
    keeps the agent packing.
    """

    def __init__(self, utilization_weight: float = 0.5) -> None:
        self.utilization_weight = utilization_weight

    def __call__(self, selected, waiting, cluster, now) -> float:
        fairness = 1.0
        if selected:
            per_user: dict[str, float] = defaultdict(float)
            for job in selected:
                per_user[job.user or "anon"] += job.node_seconds
            total = sum(per_user.values())
            shares = np.array([v / total for v in per_user.values()])
            herfindahl = float(np.sum(shares**2))       # 1/k .. 1
            fairness = 1.0 - herfindahl
        utilization = cluster.used_nodes / cluster.num_nodes
        w = self.utilization_weight
        return (1 - w) * fairness + w * utilization


class ShortestJobFirst(BaseScheduler):
    """SJF with EASY backfilling: order by walltime estimate."""

    name = "SJF"

    def schedule(self, view) -> None:
        while True:
            order = sorted(view.waiting(), key=lambda j: j.walltime)
            if not order:
                return
            head = order[0]
            if head.size <= view.free_nodes:
                view.start(head)
                continue
            view.reserve(head)
            break
        while True:
            candidates = view.backfill_candidates()
            if not candidates:
                return
            view.start(min(candidates, key=lambda j: j.walltime))


def main() -> None:
    rng = np.random.default_rng(4)
    model = ThetaModel.scaled(NODES)
    # attach synthetic users so fair-share means something
    train_trace = model.generate(1200, rng)
    test_trace = model.generate(800, rng)
    for trace in (train_trace, test_trace):
        for job in trace:
            job.user = f"user{int(rng.integers(6))}"

    config = DRASConfig.scaled(NODES, objective="capability", window=10)
    agent = DRASPG(config, reward=FairShareReward())
    agent.name = "DRAS-fair"
    trainer = Trainer(agent, NODES)
    for episode in range(8):
        trainer.run_episode(train_trace)
    agent.eval(online_learning=True)

    print("custom objective + custom heuristic on the same trace:\n")
    header = (f"{'policy':10s} {'avg wait':>10s} {'max wait':>10s} "
              f"{'slowdown':>9s} {'utilization':>12s}")
    print(header)
    print("-" * len(header))
    for scheduler in (FCFSEasy(), ShortestJobFirst(), agent):
        res = evaluate_method(scheduler, test_trace, NODES)
        m = res.metrics
        print(f"{res.name:10s} {m.avg_wait / 3600:9.2f}h "
              f"{m.max_wait / 3600:9.1f}h {m.avg_slowdown:9.2f} "
              f"{m.utilization:12.3f}")

    print(
        "\nEverything here — the reward, the heuristic, the agent — went "
        "through the\nsame public interfaces the bundled policies use: "
        "BaseScheduler.schedule(view)\nand the reward callable."
    )


if __name__ == "__main__":
    main()
