"""Unit tests for analysis helpers (Kiviat, tables, starvation)."""

import numpy as np
import pytest

from repro.analysis.comparison import (
    evaluate_method,
    kiviat_area,
    kiviat_normalize,
    starvation_summary,
)
from repro.analysis.tables import format_table
from repro.schedulers import BinPacking, FCFSEasy
from tests.conftest import make_job


def _jobs():
    return [make_job(size=s, walltime=60.0, submit=float(i * 10))
            for i, s in enumerate((2, 4, 8, 2, 4, 1))]


class TestEvaluateMethod:
    def test_produces_all_pieces(self):
        res = evaluate_method(FCFSEasy(), _jobs(), 8)
        assert res.name == "FCFS"
        assert res.metrics.num_jobs == 6
        assert sum(res.modes.job_share.values()) == pytest.approx(1.0)

    def test_does_not_mutate_input(self):
        jobs = _jobs()
        evaluate_method(FCFSEasy(), jobs, 8)
        from repro.sim.job import JobState

        assert all(j.state is JobState.PENDING for j in jobs)


class TestKiviatNormalize:
    def test_values_in_unit_range(self):
        results = [
            evaluate_method(FCFSEasy(), _jobs(), 8),
            evaluate_method(BinPacking(), _jobs(), 8),
        ]
        norm = kiviat_normalize(results)
        for vals in norm.values():
            for v in vals.values():
                assert 0.0 <= v <= 1.0

    def test_best_method_gets_one(self):
        results = [
            evaluate_method(FCFSEasy(), _jobs(), 8),
            evaluate_method(BinPacking(), _jobs(), 8),
        ]
        norm = kiviat_normalize(results)
        for metric in next(iter(norm.values())):
            values = [norm[m][metric] for m in norm]
            assert max(values) == pytest.approx(1.0)
            # when methods tie on a metric every entry is 1.0; otherwise
            # the worst method is pinned at 0.0
            if len(set(values)) > 1:
                assert min(values) == pytest.approx(0.0)

    def test_single_method_all_ones(self):
        results = [evaluate_method(FCFSEasy(), _jobs(), 8)]
        norm = kiviat_normalize(results)
        assert all(v == 1.0 for v in norm["FCFS"].values())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kiviat_normalize([])


class TestKiviatArea:
    def test_unit_polygon(self):
        values = {f"m{i}": 1.0 for i in range(5)}
        # regular pentagon with unit radius: 5/2 * sin(72deg)
        assert kiviat_area(values) == pytest.approx(2.5 * np.sin(2 * np.pi / 5))

    def test_zero_polygon(self):
        assert kiviat_area({f"m{i}": 0.0 for i in range(5)}) == 0.0

    def test_monotone_in_values(self):
        small = {f"m{i}": 0.5 for i in range(5)}
        large = {f"m{i}": 0.9 for i in range(5)}
        assert kiviat_area(large) > kiviat_area(small)

    def test_requires_three_metrics(self):
        with pytest.raises(ValueError):
            kiviat_area({"a": 1.0, "b": 1.0})


class TestStarvationSummary:
    def test_reports_per_method(self):
        results = [
            evaluate_method(FCFSEasy(), _jobs(), 8),
            evaluate_method(BinPacking(), _jobs(), 8),
        ]
        summary = starvation_summary(results, large_job_threshold=4)
        assert set(summary) == {"FCFS", "BinPacking"}
        for stats in summary.values():
            assert stats["max_wait_days"] >= 0
            assert stats["starved_jobs"] >= 0


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert lines[0].startswith("a ")
        assert "2.500" in out
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_custom_float_format(self):
        out = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out and "1.23" not in out

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out
