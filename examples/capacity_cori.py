#!/usr/bin/env python
"""Capacity-computing scenario: fast turnaround on a Cori-like system.

Capacity facilities like NERSC's Cori serve huge volumes of small jobs
and care about turnaround time.  The paper switches DRAS to the
capacity reward (Eq. 2), which penalizes keeping short jobs in the
queue, and trains DRAS-DQL on Cori's workload.

This example builds a Cori-like workload (1-node jobs dominating, 7-day
runtime cap), trains DRAS-DQL with the capacity objective, and compares
job turnaround against FCFS and the knapsack Optimization baseline.

Run::

    python examples/capacity_cori.py
"""

import numpy as np

from repro import CoriModel, DRASConfig, DRASDQL, FCFSEasy, KnapsackOptimization
from repro.analysis import evaluate_method
from repro.rl import Trainer
from repro.workload import three_phase_curriculum

NODES = 192


def main() -> None:
    rng = np.random.default_rng(2)
    model = CoriModel.scaled(NODES)
    train_trace = model.generate(2000, rng)
    validation_trace = model.generate(400, rng)
    test_trace = model.generate(1000, rng)

    config = DRASConfig.scaled(
        NODES,
        objective="capacity",                 # Eq. (2)
        window=12,
        time_scale=CoriModel.MAX_RUNTIME,
    )
    agent = DRASDQL(config)
    print(f"DRAS-DQL network: {config.dql_dims} "
          f"({config.dql_dims.param_count:,} parameters), objective=capacity")

    phases = three_phase_curriculum(
        model, train_trace, rng,
        n_sampled=3, n_real=3, n_synthetic=6, jobs_per_set=300,
    )
    trainer = Trainer(agent, NODES, validation_jobs=validation_trace)
    history = trainer.train(
        [(p.name, jobset) for p in phases for jobset in p.jobsets]
    )
    print(f"trained {len(history.episodes)} episodes; "
          f"final epsilon = {agent.epsilon:.3f}")

    agent.eval(online_learning=True)
    print("\nturnaround comparison (Cori-like capacity workload):")
    header = (f"{'policy':14s} {'avg wait':>10s} {'avg response':>13s} "
              f"{'avg slowdown':>13s} {'utilization':>12s}")
    print(header)
    print("-" * len(header))
    for scheduler in (FCFSEasy(), KnapsackOptimization("capacity"), agent):
        res = evaluate_method(scheduler, test_trace, NODES)
        m = res.metrics
        print(f"{res.name:14s} {m.avg_wait / 3600:9.2f}h "
              f"{m.avg_response / 3600:12.2f}h {m.avg_slowdown:13.2f} "
              f"{m.utilization:12.3f}")

    print(
        "\nWith the Eq. (2) objective the learned policy drains short jobs "
        "quickly\n(a shortest-job-first flavour), cutting average wait and "
        "slowdown relative\nto arrival-order scheduling."
    )


if __name__ == "__main__":
    main()
