"""A small NumPy neural-network substrate.

The paper implements DRAS in TensorFlow; offline we rebuild the exact
networks with explicit forward/backward passes.  Each DRAS network has
*five layers* (§III-B): input, a convolution layer with a 1x2 filter
extracting the two features of each job/node row, two fully-connected
layers with leaky-ReLU activations, and an output layer.

The architecture detail that reproduces the paper's Table III trainable
parameter counts exactly (see DESIGN.md §4): the convolution layer and
the output layer carry biases, the two hidden fully-connected layers do
not.

Everything is batch-first: inputs are ``[B, rows, 2]``, hidden
activations ``[B, features]``.
"""

from repro.nn.layers import Conv1x2, Dense, LeakyReLU, Parameter
from repro.nn.network import Network, build_dras_network, count_parameters
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.losses import (
    masked_softmax,
    mse_loss,
    policy_gradient_loss,
    sample_from_probs,
)
from repro.nn.serialize import load_network, save_network
from repro.nn.gradcheck import numeric_gradient, check_gradients

__all__ = [
    "Adam",
    "Conv1x2",
    "Dense",
    "LeakyReLU",
    "Network",
    "Optimizer",
    "Parameter",
    "SGD",
    "build_dras_network",
    "check_gradients",
    "count_parameters",
    "load_network",
    "masked_softmax",
    "mse_loss",
    "numeric_gradient",
    "policy_gradient_loss",
    "sample_from_probs",
    "save_network",
]
