"""Profiler tree semantics, engine integration, and bit-identity."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.nn.network import build_dras_network
from repro.nn.optim import Adam
from repro.obs.profile import (
    PROFILE_SCHEMA,
    FlatEntry,
    Profiler,
    global_profiler,
    merge_flat,
    set_global_profiler,
)
from repro.schedulers.fcfs import FCFSEasy
from repro.sim.engine import run_simulation
from repro.workload.models import ThetaModel

REPO = Path(__file__).resolve().parent.parent


def _jobs(n=120, nodes=32, seed=0):
    model = ThetaModel.scaled(nodes)
    return model.generate(n, np.random.default_rng(seed))


class TestProfilerTree:
    def test_tree_accumulation(self):
        prof = Profiler()
        for _ in range(3):
            with prof.scope("outer"):
                with prof.scope("inner"):
                    pass
                with prof.scope("inner"):
                    pass
        (outer,) = prof.roots
        assert outer.name == "outer" and outer.calls == 3
        (inner,) = outer.children.values()
        assert inner.calls == 6
        assert outer.total_s >= inner.total_s >= 0.0
        assert outer.self_s == pytest.approx(outer.total_s - inner.total_s)

    def test_same_name_at_distinct_positions(self):
        prof = Profiler()
        with prof.scope("a"):
            with prof.scope("x"):
                pass
        with prof.scope("b"):
            with prof.scope("x"):
                pass
        assert [r.name for r in prof.roots] == ["a", "b"]
        flat = {e.name: e for e in prof.flat()}
        assert flat["x"].calls == 2  # aggregated across both positions

    def test_flat_no_double_count_on_recursion(self):
        prof = Profiler()
        with prof.scope("r"):
            with prof.scope("r"):
                pass
        flat = {e.name: e for e in prof.flat()}
        outer_total = prof.roots[0].total_s
        # cum counts only the top-most occurrence; self sums both levels
        assert flat["r"].calls == 2
        assert flat["r"].cum_s == pytest.approx(outer_total)
        assert flat["r"].self_s == pytest.approx(outer_total)

    def test_pop_without_push_raises(self):
        with pytest.raises(ValueError, match="pop"):
            Profiler().pop()

    def test_pop_to_unwinds_exception(self):
        prof = Profiler()
        depth = prof.open_depth
        with pytest.raises(RuntimeError):
            try:
                prof.push("a")
                prof.push("b")
                raise RuntimeError("boom")
            finally:
                prof.pop_to(depth)
        assert prof.open_depth == 0
        # the abandoned scopes still accumulated their time
        (a,) = prof.roots
        assert a.calls == 1 and a.children["b"].calls == 1

    def test_scope_exits_on_exception(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with prof.scope("s"):
                raise RuntimeError("boom")
        assert prof.open_depth == 0
        assert prof.roots[0].total_s >= 0.0

    def test_as_dict_and_format_table(self):
        prof = Profiler()
        with prof.scope("engine.run"):
            with prof.scope("engine.instance"):
                pass
        doc = prof.as_dict()
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["roots"][0]["name"] == "engine.run"
        assert {e["name"] for e in doc["flat"]} == {
            "engine.run", "engine.instance"}
        table = prof.format_table()
        assert "engine.instance" in table and "self %" in table

    def test_reset_drops_tree(self):
        prof = Profiler()
        prof.push("x")
        prof.reset()
        assert prof.roots == [] and prof.open_depth == 0

    def test_write_json_round_trip(self, tmp_path):
        prof = Profiler()
        with prof.scope("a"):
            pass
        out = prof.write_json(tmp_path / "p.json")
        doc = json.loads(out.read_text())
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["roots"][0]["calls"] == 1

    def test_merge_flat(self):
        a = FlatEntry("x", 2, 1.0, 0.5)
        b = FlatEntry("x", 3, 2.0, 1.5)
        c = FlatEntry("y", 1, 9.0, 0.1)
        (x, y) = merge_flat([a, b, c])
        assert (x.name, x.calls, x.cum_s, x.self_s) == ("x", 5, 3.0, 2.0)
        assert y.name == "y"


class TestEngineProfiling:
    def test_counts_match_instances(self):
        prof = Profiler()
        result = run_simulation(32, FCFSEasy(), _jobs(), profile=prof)
        flat = {e.name: e for e in prof.flat()}
        assert flat["engine.run"].calls == 1
        assert flat["engine.instance"].calls == result.num_instances
        assert flat["engine.schedule"].calls == result.num_instances
        # scheduling happens inside the instance scope
        (run_root,) = prof.roots
        instance = run_root.children["engine.instance"]
        assert "engine.schedule" in instance.children

    def test_profiled_run_bit_identical(self):
        jobs = _jobs()
        plain = run_simulation(32, FCFSEasy(), [j.copy_fresh() for j in jobs])
        profiled = run_simulation(
            32, FCFSEasy(), [j.copy_fresh() for j in jobs], profile=Profiler()
        )
        for a, b in zip(plain.jobs, profiled.jobs):
            assert (a.start_time, a.end_time, a.mode) == (
                b.start_time, b.end_time, b.mode)
        assert plain.makespan == profiled.makespan
        assert plain.num_instances == profiled.num_instances

    def test_no_open_scopes_after_policy_raises(self):
        class Exploding(FCFSEasy):
            def schedule(self, view):
                raise RuntimeError("boom")

        prof = Profiler()
        with pytest.raises(RuntimeError, match="boom"):
            run_simulation(32, Exploding(), _jobs(n=20), profile=prof)
        assert prof.open_depth == 0
        assert prof.roots[0].name == "engine.run"


class TestNNProfiling:
    def test_nn_scopes_recorded(self, rng):
        prof = Profiler()
        previous = set_global_profiler(prof)
        try:
            net = build_dras_network(10, 8, 8, 4, rng=rng)
            opt = Adam(net.parameters())
            x = rng.standard_normal((2, 10, 2))
            out = net.forward(x)
            net.backward(np.ones_like(out))
            opt.step()
        finally:
            set_global_profiler(previous)
        flat = {e.name: e for e in prof.flat()}
        assert flat["nn.forward"].calls == 1
        assert flat["nn.backward"].calls == 1
        assert flat["nn.adam_step"].calls == 1


class TestGlobalProfiler:
    def test_set_and_restore(self):
        prof = Profiler()
        previous = set_global_profiler(prof)
        try:
            assert global_profiler() is prof
        finally:
            set_global_profiler(previous)
        assert global_profiler() is previous

    def test_env_activation_writes_json_at_exit(self, tmp_path):
        """REPRO_PROFILE profiles a whole process and persists at exit."""
        out = tmp_path / "profile.json"
        code = (
            "import numpy as np\n"
            "from repro.schedulers.fcfs import FCFSEasy\n"
            "from repro.sim.engine import run_simulation\n"
            "from repro.workload.models import ThetaModel\n"
            "jobs = ThetaModel.scaled(32).generate("
            "40, np.random.default_rng(0))\n"
            "run_simulation(32, FCFSEasy(), jobs)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": str(REPO / "src"),
                 "REPRO_PROFILE": str(out), "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(out.read_text())
        assert doc["schema"] == PROFILE_SCHEMA
        names = {e["name"] for e in doc["flat"]}
        assert {"engine.run", "engine.instance", "engine.schedule"} <= names
