"""Deterministic hierarchical wall-time profiler for the hot paths.

A :class:`Profiler` accumulates an in-memory tree of named scopes —
one :class:`ProfileNode` per distinct call path — counting entries and
summing ``time.perf_counter()`` wall time.  The instrumented sites are
the ones the bench harness fights over:

* ``engine.run`` / ``engine.instance`` / ``engine.schedule`` — the
  event loop, one scope per simulated timestamp, and the policy call
  inside it (:mod:`repro.sim.engine`);
* ``nn.forward`` / ``nn.backward`` / ``nn.adam_step`` — the NN stack
  (:mod:`repro.nn.network`, :mod:`repro.nn.optim`).

The contract mirrors the tracer (:mod:`repro.obs.trace`): when no
profiler is active every instrumented site costs a single ``None``
check, and a profiled run is **bit-identical** to an unprofiled one in
simulated time — the profiler only reads the monotonic duration clock
and mutates its own tree, never simulation, RNG or network state.
Call counts and tree shape are fully deterministic for a fixed
workload; only the accumulated wall seconds vary between machines.

Activation, like ``REPRO_TRACE`` / ``REPRO_SANITIZE``:

* globally, via ``REPRO_PROFILE=/path/to/profile.json`` — the profile
  is written as JSON when the process exits (``atexit``), or
* per engine, via ``Engine(profile=...)`` with a :class:`Profiler`, or
* ad hoc::

      profiler = Profiler()
      with profiler.scope("my.phase"):
          ...
      print(profiler.format_table())
"""

from __future__ import annotations

import atexit
import json
import os
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter as _perf_counter
from typing import Any, Iterable, Iterator

#: schema tag stamped into every profile JSON document
PROFILE_SCHEMA = "repro.profile/v1"


class ProfileNode:
    """One scope at one position of the profile tree.

    Attributes
    ----------
    name:
        Scope name (e.g. ``"engine.instance"``).  The same name can
        appear at several tree positions; :meth:`Profiler.flat`
        aggregates across positions.
    calls:
        How many times the scope was entered at this position.
    total_s:
        Wall seconds accumulated across all entries (cumulative — it
        includes time spent in child scopes).
    children:
        Child scopes keyed by name, in first-entry order.
    """

    __slots__ = ("name", "calls", "total_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.children: dict[str, ProfileNode] = {}

    @property
    def self_s(self) -> float:
        """Wall seconds spent in this scope excluding child scopes."""
        return self.total_s - sum(c.total_s for c in self.children.values())

    def walk(self) -> "Iterator[ProfileNode]":
        """Yield this node and all descendants, depth-first."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def as_dict(self) -> dict[str, Any]:
        """The subtree as plain JSON-ready dicts."""
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "children": [c.as_dict() for c in self.children.values()],
        }


@dataclass(frozen=True)
class FlatEntry:
    """Aggregate of one scope name across every tree position.

    ``cum_s`` sums the cumulative time of *top-most* occurrences only
    (a recursive or re-parented scope is not double counted);
    ``self_s`` sums the exclusive time of every occurrence.
    """

    name: str
    calls: int
    cum_s: float
    self_s: float

    @property
    def mean_s(self) -> float:
        """Mean cumulative wall seconds per call."""
        return self.cum_s / self.calls if self.calls else 0.0


class Profiler:
    """Accumulates a deterministic tree of timed scopes.

    Scopes nest: :meth:`push`/:meth:`pop` (or the :meth:`scope` context
    manager) attach each entered scope under the innermost open one.
    The per-entry cost is two ``perf_counter`` reads, one dict lookup
    and float/int adds — cheap enough for per-instance scoping, but the
    hot paths still gate on ``profiler is None`` so the disabled path
    costs exactly one branch.
    """

    __slots__ = ("_root", "_stack")

    def __init__(self) -> None:
        self._root = ProfileNode("<root>")
        #: (node, entry perf_counter) for every open scope
        self._stack: list[tuple[ProfileNode, float]] = []

    # -- recording ---------------------------------------------------------
    def push(self, name: str) -> None:
        """Enter the scope ``name`` under the innermost open scope."""
        parent = self._stack[-1][0] if self._stack else self._root
        node = parent.children.get(name)
        if node is None:
            node = ProfileNode(name)
            parent.children[name] = node
        node.calls += 1
        self._stack.append((node, _perf_counter()))

    def pop(self) -> None:
        """Leave the innermost open scope, accumulating its wall time."""
        if not self._stack:
            raise ValueError("pop() without a matching push()")
        node, t0 = self._stack.pop()
        node.total_s += _perf_counter() - t0

    def scope(self, name: str) -> "_ProfileScope":
        """Context manager timing a ``with`` block as scope ``name``."""
        return _ProfileScope(self, name)

    @property
    def open_depth(self) -> int:
        """How many scopes are currently open (nesting depth)."""
        return len(self._stack)

    def pop_to(self, depth: int) -> None:
        """Close open scopes until :attr:`open_depth` equals ``depth``.

        Exception-unwind helper: a caller records ``open_depth`` before
        pushing its scopes and restores it in a ``finally`` block, so a
        raise inside an instrumented region cannot leak open scopes
        into the caller's profile.
        """
        if depth < 0:
            raise ValueError("depth must be non-negative")
        while len(self._stack) > depth:
            self.pop()

    # -- inspection --------------------------------------------------------
    @property
    def roots(self) -> list[ProfileNode]:
        """The top-level scopes recorded so far."""
        return list(self._root.children.values())

    def flat(self) -> list[FlatEntry]:
        """Hot-path attribution: per-name aggregates, hottest first.

        Sorted by exclusive (self) time, descending, then by name for a
        deterministic order between equal-cost scopes.
        """
        calls: dict[str, int] = {}
        self_s: dict[str, float] = {}
        cum_s: dict[str, float] = {}

        def visit(node: ProfileNode, inside: frozenset[str]) -> None:
            calls[node.name] = calls.get(node.name, 0) + node.calls
            self_s[node.name] = self_s.get(node.name, 0.0) + node.self_s
            if node.name not in inside:
                cum_s[node.name] = cum_s.get(node.name, 0.0) + node.total_s
            nested = inside | {node.name}
            for child in node.children.values():
                visit(child, nested)

        for root in self._root.children.values():
            visit(root, frozenset())
        return sorted(
            (
                FlatEntry(name, calls[name], cum_s.get(name, 0.0), self_s[name])
                for name in calls
            ),
            key=lambda e: (-e.self_s, e.name),
        )

    def total_s(self) -> float:
        """Wall seconds covered by the top-level scopes."""
        return sum(r.total_s for r in self._root.children.values())

    def as_dict(self) -> dict[str, Any]:
        """The whole profile as a JSON-ready document."""
        return {
            "schema": PROFILE_SCHEMA,
            "total_s": self.total_s(),
            "roots": [r.as_dict() for r in self.roots],
            "flat": [
                {"name": e.name, "calls": e.calls, "cum_s": e.cum_s,
                 "self_s": e.self_s, "mean_s": e.mean_s}
                for e in self.flat()
            ],
        }

    def format_table(self, top: int = 20) -> str:
        """A terminal-friendly hot-path attribution table."""
        entries = self.flat()[:top]
        total = self.total_s() or 1.0
        lines = [
            f"{'scope':<28} {'calls':>9} {'cum s':>10} {'self s':>10} "
            f"{'self %':>7} {'mean ms':>9}"
        ]
        for e in entries:
            lines.append(
                f"{e.name:<28} {e.calls:>9,d} {e.cum_s:>10.4f} "
                f"{e.self_s:>10.4f} {100.0 * e.self_s / total:>6.1f}% "
                f"{1e3 * e.mean_s:>9.4f}"
            )
        return "\n".join(lines)

    # -- lifecycle ---------------------------------------------------------
    def reset(self) -> None:
        """Drop the accumulated tree (open scopes are abandoned)."""
        self._root = ProfileNode("<root>")
        self._stack.clear()

    def write_json(self, path: str | Path) -> Path:
        """Write the profile document as pretty-printed JSON."""
        path = Path(path)
        path.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


class _ProfileScope:
    """Context manager returned by :meth:`Profiler.scope`."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: Profiler, name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_ProfileScope":
        self._profiler.push(self._name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._profiler.pop()


# -- global (environment-driven) profiler --------------------------------------

_GLOBAL: Profiler | None = None
_GLOBAL_LOADED = False


def _write_global_profile(profiler: Profiler, path: str) -> None:
    """``atexit`` hook: persist the env-activated profile as JSON."""
    try:
        profiler.write_json(path)
    except OSError:  # the destination vanished; nothing sane to do at exit
        pass


def global_profiler() -> "Profiler | None":
    """The process-wide profiler, or ``None`` when profiling is off.

    On first call the ``REPRO_PROFILE`` environment variable is
    consulted: a non-empty value activates profiling for every
    instrumented component in the process and names the JSON file the
    profile is written to at interpreter exit.  Subsequent calls return
    the cached result, so the disabled path costs one global lookup and
    a ``None`` check.
    """
    global _GLOBAL, _GLOBAL_LOADED
    if not _GLOBAL_LOADED:
        _GLOBAL_LOADED = True
        # sanctioned observability gate: enables timing collection only;
        # simulation results are identical with and without REPRO_PROFILE
        path = os.environ.get("REPRO_PROFILE", "").strip()  # repro: noqa[ambient-env-read]
        if path:
            _GLOBAL = Profiler()
            atexit.register(_write_global_profile, _GLOBAL, path)
    return _GLOBAL


def set_global_profiler(profiler: "Profiler | None") -> "Profiler | None":
    """Install (or clear, with ``None``) the global profiler.

    Returns the previous profiler so tests can restore it.  Installing
    bypasses ``REPRO_PROFILE``; clearing disables global profiling
    until the next explicit install (the variable is *not* re-read).
    Unlike the env path, explicitly installed profilers are not written
    anywhere at exit — the caller owns persistence.
    """
    global _GLOBAL, _GLOBAL_LOADED
    previous = _GLOBAL if _GLOBAL_LOADED else None
    _GLOBAL = profiler
    _GLOBAL_LOADED = True
    return previous


def merge_flat(entries: Iterable[FlatEntry]) -> list[FlatEntry]:
    """Merge flat entries (e.g. from several profilers) by scope name."""
    calls: dict[str, int] = {}
    cum: dict[str, float] = {}
    self_s: dict[str, float] = {}
    for e in entries:
        calls[e.name] = calls.get(e.name, 0) + e.calls
        cum[e.name] = cum.get(e.name, 0.0) + e.cum_s
        self_s[e.name] = self_s.get(e.name, 0.0) + e.self_s
    return sorted(
        (FlatEntry(n, calls[n], cum[n], self_s[n]) for n in calls),
        key=lambda e: (-e.self_s, e.name),
    )
