"""Table II — Theta and Cori workload summaries.

The paper summarizes the two production traces (system type, node
count, trace period, job count, max job length).  We report the same
rows for the generated traces at the chosen scale, alongside the
paper's reference values, so the substitution documented in DESIGN.md
stays auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.common import get_scale, system_setup
from repro.sim.job import Job

PAPER_REFERENCE = {
    "theta": {
        "location": "ALCF",
        "system_type": "capability computing",
        "nodes": 4392,
        "user_nodes": 4360,
        "trace_period": "Jan 2018 - Dec 2019",
        "num_jobs": 121837,
        "max_job_length_days": 1.0,
    },
    "cori": {
        "location": "NERSC",
        "system_type": "capacity computing",
        "nodes": 12076,
        "user_nodes": 12076,
        "trace_period": "Apr 2018 - Jul 2018",
        "num_jobs": 2607054,
        "max_job_length_days": 7.0,
    },
}


@dataclass(frozen=True)
class WorkloadSummary:
    system: str
    nodes: int
    num_jobs: int
    span_days: float
    max_job_length_days: float
    mean_size: float
    mean_runtime_h: float
    offered_load: float


def summarize(system: str, jobs: list[Job], num_nodes: int) -> WorkloadSummary:
    sizes = np.array([j.size for j in jobs])
    runtimes = np.array([j.runtime for j in jobs])
    submits = np.array([j.submit_time for j in jobs])
    span = float(submits.max() - submits.min()) if len(jobs) > 1 else 0.0
    demand = float(np.sum(sizes * runtimes))
    return WorkloadSummary(
        system=system,
        nodes=num_nodes,
        num_jobs=len(jobs),
        span_days=span / 86400.0,
        max_job_length_days=float(runtimes.max()) / 86400.0,
        mean_size=float(sizes.mean()),
        mean_runtime_h=float(runtimes.mean()) / 3600.0,
        offered_load=demand / (num_nodes * span) if span > 0 else 0.0,
    )


def run(scale: str = "default", seed: int = 0) -> dict[str, WorkloadSummary]:
    get_scale(scale)  # validate early
    out = {}
    for system in ("theta", "cori"):
        setup = system_setup(system, scale, seed)
        # train/validation/test traces each start at t=0, so only one of
        # them can be summarized as a contiguous span; the test trace is
        # the largest.
        out[system] = summarize(system, setup.test_trace, setup.model.num_nodes)
    return out


def report(summaries: dict[str, WorkloadSummary]) -> str:
    rows = []
    for system, s in summaries.items():
        ref = PAPER_REFERENCE[system]
        rows.append(
            [
                system,
                ref["system_type"],
                s.nodes,
                f"(paper: {ref['user_nodes']})",
                s.num_jobs,
                f"(paper: {ref['num_jobs']})",
                f"{s.span_days:.1f}",
                f"{s.max_job_length_days:.2f}",
                f"(paper: {ref['max_job_length_days']:.0f})",
                f"{s.offered_load:.2f}",
            ]
        )
    return format_table(
        [
            "system",
            "type",
            "nodes",
            "ref nodes",
            "jobs",
            "ref jobs",
            "span (days)",
            "max len (days)",
            "ref max len",
            "offered load",
        ],
        rows,
        title="Table II: workload summaries (generated traces vs paper reference)",
    )
