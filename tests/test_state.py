"""Unit tests for the DRAS state encoding (§III-A)."""

import numpy as np
import pytest

from repro.core.state import StateEncoder
from repro.sim.cluster import Cluster
from tests.conftest import make_job


@pytest.fixture
def encoder():
    return StateEncoder(num_nodes=8, window=3, time_scale=100.0, normalize=True)


@pytest.fixture
def raw_encoder():
    return StateEncoder(num_nodes=8, window=3, normalize=False)


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            StateEncoder(0, 3)
        with pytest.raises(ValueError):
            StateEncoder(8, 0)
        with pytest.raises(ValueError):
            StateEncoder(8, 3, time_scale=0.0)


class TestShapes:
    def test_pg_rows(self, encoder):
        assert encoder.pg_rows == 2 * 3 + 8

    def test_dql_rows(self, encoder):
        assert encoder.dql_rows == 2 + 8

    def test_paper_theta_shape(self):
        enc = StateEncoder(num_nodes=4360, window=50)
        assert enc.pg_rows == 4460
        assert enc.dql_rows == 4362


class TestJobBlock:
    def test_raw_values(self, raw_encoder):
        job = make_job(size=4, walltime=500.0, submit=10.0, priority=1)
        block = raw_encoder.job_block(job, now=60.0)
        assert block.shape == (2, 2)
        assert block[0, 0] == 4          # size
        assert block[0, 1] == 500.0      # estimated runtime
        assert block[1, 0] == 1.0        # priority
        assert block[1, 1] == 50.0       # queued time

    def test_normalized_values(self, encoder):
        job = make_job(size=4, walltime=50.0, submit=0.0)
        block = encoder.job_block(job, now=25.0)
        assert block[0, 0] == pytest.approx(4 / 8)
        assert block[0, 1] == pytest.approx(50 / 100)
        assert block[1, 1] == pytest.approx(25 / 100)


class TestWindowEncoding:
    def test_shape_and_mask(self, encoder, cluster):
        jobs = [make_job(size=1), make_job(size=2)]
        x, mask = encoder.encode_window(jobs, cluster, now=0.0)
        assert x.shape == (14, 2)
        assert list(mask) == [True, True, False]

    def test_padding_rows_zero(self, encoder, cluster):
        jobs = [make_job(size=1)]
        x, _ = encoder.encode_window(jobs, cluster, now=0.0)
        assert np.all(x[2:6] == 0.0)  # slots 2 and 3 empty

    def test_node_rows_present(self, encoder, cluster):
        cluster.allocate(make_job(size=2, walltime=50.0), now=0.0)
        x, _ = encoder.encode_window([make_job(size=1)], cluster, now=0.0)
        node_rows = x[6:]
        assert node_rows.shape == (8, 2)
        assert node_rows[0, 0] == 0.0          # busy
        assert node_rows[0, 1] == pytest.approx(0.5)  # 50/100
        assert node_rows[2, 0] == 1.0          # free

    def test_too_many_jobs_rejected(self, encoder, cluster):
        jobs = [make_job() for _ in range(4)]
        with pytest.raises(ValueError, match="exceed"):
            encoder.encode_window(jobs, cluster, now=0.0)

    def test_empty_window_all_masked(self, encoder, cluster):
        x, mask = encoder.encode_window([], cluster, now=0.0)
        assert not mask.any()
        assert x.shape == (14, 2)


class TestJobEncoding:
    def test_encode_job_shape(self, encoder, cluster):
        x = encoder.encode_job(make_job(size=2), cluster, now=0.0)
        assert x.shape == (10, 2)

    def test_batch_matches_single(self, encoder, cluster):
        jobs = [make_job(size=1), make_job(size=3, priority=1)]
        batch = encoder.encode_jobs_batch(jobs, cluster, now=5.0)
        assert batch.shape == (2, 10, 2)
        for i, job in enumerate(jobs):
            single = encoder.encode_job(job, cluster, now=5.0)
            assert np.allclose(batch[i], single)

    def test_empty_batch_rejected(self, encoder, cluster):
        with pytest.raises(ValueError, match="empty"):
            encoder.encode_jobs_batch([], cluster, now=0.0)
