"""EASY-backfilling machinery: reservations, shadow time, candidates.

When the job at the head of the scheduling order does not fit, EASY
backfilling (Mu'alem & Feitelson) reserves resources for it at the
earliest expected availability — the *shadow time* — and lets smaller
jobs jump ahead as long as they cannot delay that reservation.  A job
may backfill if either

* it finishes (by its walltime estimate) before the shadow time, or
* it uses only the *extra nodes*: nodes that will still be free at the
  shadow time after the reserved job takes its share.

DRAS keeps the same safety rule but replaces the first-fit candidate
choice with a learned level-2 network (paper section III-B).  This
module computes the reservation and enumerates the legal candidates so
that every policy — heuristic or learned — shares identical backfilling
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cluster import Cluster
from repro.sim.job import Job


@dataclass(frozen=True, slots=True)
class Reservation:
    """A resource reservation for a blocked job."""

    job_id: int
    size: int
    #: earliest expected time the reserved job can start
    shadow_time: float
    #: nodes free at the shadow time beyond what the reserved job needs
    extra_nodes: int

    def allows(self, job: Job, now: float, free_nodes: int) -> bool:
        """Whether ``job`` may backfill without delaying this reservation."""
        if job.size > free_nodes:
            return False
        if now + job.walltime <= self.shadow_time + 1e-9:
            return True
        return job.size <= self.extra_nodes


class BackfillPlanner:
    """Computes reservations and legal backfill candidates for a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster

    def reserve(self, job: Job, now: float) -> Reservation:
        """Build a reservation for a job that does not currently fit."""
        shadow, free_at_shadow = self._cluster.reservation_point(job.size, now)
        extra = max(0, free_at_shadow - job.size)
        return Reservation(
            job_id=job.job_id,
            size=job.size,
            shadow_time=shadow,
            extra_nodes=extra,
        )

    def candidates(
        self, jobs: list[Job], reservation: Reservation, now: float
    ) -> list[Job]:
        """Jobs from ``jobs`` that may legally backfill right now.

        Order of the input is preserved, so a first-fit policy can simply
        take the first element while DRAS's level-2 network chooses
        freely among them.
        """
        # `allows` inlined (hot path: one scan per free-choice decision);
        # the arithmetic matches Reservation.allows exactly — only the
        # loop-invariant `shadow_time + 1e-9` is hoisted
        free = self._cluster.available_nodes
        reserved_id = reservation.job_id
        cutoff = reservation.shadow_time + 1e-9
        extra = reservation.extra_nodes
        return [
            job
            for job in jobs
            if job.job_id != reserved_id
            and job.size <= free
            and (now + job.walltime <= cutoff or job.size <= extra)
        ]

    def first_candidate(
        self, jobs: list[Job], reservation: Reservation, now: float
    ) -> Job | None:
        """The first job that may legally backfill, or ``None``.

        First-fit policies call this once per started job; scanning to
        the first hit avoids materialising the full candidate list that
        :meth:`candidates` builds for free-choice policies.
        """
        # `allows` inlined as in :meth:`candidates`, short-circuiting on
        # the first hit; ~100 jobs are scanned per call at scale, so the
        # per-job method call is measurable
        free = self._cluster.available_nodes
        reserved_id = reservation.job_id
        cutoff = reservation.shadow_time + 1e-9
        extra = reservation.extra_nodes
        for job in jobs:
            if job.job_id != reserved_id:
                size = job.size
                if size <= free and (now + job.walltime <= cutoff
                                     or size <= extra):
                    return job
        return None
