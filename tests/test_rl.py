"""Unit tests for the training infrastructure (meter, trainer, curriculum)."""

import math

import numpy as np
import pytest

from repro.core.config import DRASConfig
from repro.core.dras_pg import DRASPG
from repro.core.rewards import CapabilityReward
from repro.rl.curriculum import compare_phase_orders, train_with_curriculum
from repro.rl.meter import RewardMeter
from repro.rl.trainer import EpisodeStats, Trainer, TrainingHistory
from repro.schedulers import FCFSEasy
from repro.sim.engine import run_simulation
from repro.workload.models import ThetaModel
from tests.conftest import make_job


def small_config(**overrides):
    base = dict(num_nodes=16, window=4, hidden1=16, hidden2=8, seed=0,
                objective="capability", time_scale=1000.0)
    base.update(overrides)
    return DRASConfig(**base)


def tiny_jobs(n=8, size=4, walltime=50.0):
    return [make_job(size=size, walltime=walltime, submit=float(i * 10))
            for i in range(n)]


class TestRewardMeter:
    def test_counts_instances(self):
        meter = RewardMeter(CapabilityReward())
        run_simulation(16, FCFSEasy(), tiny_jobs(), observers=[meter])
        assert meter.instances > 0
        assert len(meter.per_instance) == meter.instances
        assert meter.total == pytest.approx(sum(meter.per_instance))

    def test_average(self):
        meter = RewardMeter(CapabilityReward())
        run_simulation(16, FCFSEasy(), tiny_jobs(), observers=[meter])
        assert meter.average == pytest.approx(meter.total / meter.instances)

    def test_reset(self):
        meter = RewardMeter(CapabilityReward())
        run_simulation(16, FCFSEasy(), tiny_jobs(), observers=[meter])
        meter.reset()
        assert meter.total == 0.0 and meter.instances == 0

    def test_empty_meter_average(self):
        assert RewardMeter(CapabilityReward()).average == 0.0


class TestTrainingHistory:
    def _history(self, curve):
        h = TrainingHistory()
        for i, v in enumerate(curve):
            h.episodes.append(EpisodeStats(i, "p", 10, 0.0, v, i))
        return h

    def test_validation_curve(self):
        h = self._history([1.0, 2.0, 3.0])
        assert list(h.validation_curve) == [1.0, 2.0, 3.0]

    def test_best_episode(self):
        h = self._history([1.0, 5.0, 3.0])
        assert h.best_episode() == 1

    def test_best_requires_episodes(self):
        with pytest.raises(ValueError):
            TrainingHistory().best_episode()

    def test_convergence_detection(self):
        flat = self._history([1.0, 10.0, 10.1, 10.05, 10.0, 10.02, 10.01])
        assert flat.converged_at(window=3, rel_tol=0.05) == 3

    def test_non_convergent(self):
        rising = self._history([float(i * i) for i in range(10)])
        assert rising.converged_at(window=3, rel_tol=0.01) is None


class TestTrainer:
    def _trainer(self):
        agent = DRASPG(small_config())
        val = tiny_jobs(n=6)
        return Trainer(agent, 16, validation_jobs=val), agent

    def test_run_episode_returns_reward(self):
        trainer, _ = self._trainer()
        reward = trainer.run_episode(tiny_jobs())
        assert math.isfinite(reward)

    def test_episode_does_not_mutate_jobset(self):
        trainer, _ = self._trainer()
        jobset = tiny_jobs()
        trainer.run_episode(jobset)
        from repro.sim.job import JobState

        assert all(j.state is JobState.PENDING for j in jobset)

    def test_validate_restores_learning_flag(self):
        trainer, agent = self._trainer()
        agent.train()
        trainer.validate()
        assert agent.learning is True
        agent.eval(online_learning=False)
        trainer.validate()
        assert agent.learning is False

    def test_validate_without_jobs_is_nan(self):
        agent = DRASPG(small_config())
        trainer = Trainer(agent, 16)
        assert math.isnan(trainer.validate())

    def test_train_builds_history(self):
        trainer, _ = self._trainer()
        history = trainer.train([("a", tiny_jobs()), ("b", tiny_jobs())])
        assert len(history.episodes) == 2
        assert [e.phase for e in history.episodes] == ["a", "b"]
        assert len(history.snapshots) == 2

    def test_snapshot_every(self):
        agent = DRASPG(small_config())
        trainer = Trainer(agent, 16, validation_jobs=tiny_jobs(4),
                          snapshot_every=2)
        history = trainer.train([("p", tiny_jobs()) for _ in range(4)])
        assert len(history.snapshots) == 2

    def test_invalid_snapshot_every(self):
        with pytest.raises(ValueError):
            Trainer(DRASPG(small_config()), 16, snapshot_every=0)


class TestCurriculumTraining:
    def test_train_with_curriculum(self, rng):
        model = ThetaModel.scaled(16)
        base = model.generate(120, rng)
        val = model.generate(40, np.random.default_rng(5))
        agent = DRASPG(small_config())
        history = train_with_curriculum(
            agent, model, base, val, rng,
            n_sampled=1, n_real=1, n_synthetic=1, jobs_per_set=30,
        )
        assert len(history.episodes) == 3
        assert [e.phase for e in history.episodes] == [
            "sampled", "real", "synthetic",
        ]

    def test_compare_phase_orders_trains_fresh_agents(self, rng):
        model = ThetaModel.scaled(16)
        base = model.generate(120, rng)
        val = model.generate(40, np.random.default_rng(5))
        histories = compare_phase_orders(
            lambda: DRASPG(small_config()),
            model, base, val, seed=3,
            orders=(("sampled", "real", "synthetic"),
                    ("synthetic", "sampled", "real")),
            n_sampled=1, n_real=1, n_synthetic=1, jobs_per_set=30,
        )
        assert len(histories) == 2
        for history in histories.values():
            assert len(history.episodes) == 3
