"""Fault-tolerant parallel sweep orchestration.

Every experiment grid in this reproduction — the paper's figure/table
matrix, the faultsweep MTBF grids, parameter sensitivity studies —
expands to a set of independent *cells*.  This module runs those cells
on N worker processes and survives every failure mode we can inject:

* **worker exceptions** are retried with bounded attempts and capped
  exponential backoff, then *quarantined* (recorded with their
  traceback) so the sweep completes with partial results instead of
  aborting;
* **hung cells** are killed by a parent-side per-cell wall-clock
  timeout (on top of the engine's own ``max_wall_s`` runaway guard)
  and retried like any other failure;
* **crashed workers** (segfault, OOM kill, injected ``SIGKILL``) are
  detected through their broken pipe, replaced, and their in-flight
  cell is retried;
* **a killed parent** loses nothing: results land in crash-durable
  per-worker JSONL shards (append + flush per cell), so a re-run with
  ``resume=True`` skips completed cells and converges to the same
  merged rollup.

Determinism contract
--------------------
The per-cell seed is ``SHA-256(sweep_seed | cell key)`` — a pure
function of the sweep spec, independent of execution order, worker
count, retry schedule and crash/resume history.  Cell records carry a
:class:`~repro.obs.manifest.RunManifest` ``stable_digest`` and the
merged rollup is canonical JSON over the *sorted* cell set, so::

    same sweep spec  =>  byte-identical rollup

regardless of how (or how often) the sweep was executed.  The static
proof that worker entry points consume only derived-seed RNGs and no
ambient state is taint rule RPR608 (``pool-worker-hermetic``).

The built-in sweep kinds are ``faultsweep`` (schedulers x MTBF grid,
:mod:`repro.experiments.faultsweep`), ``experiments`` (the paper's
table/figure matrix, :mod:`repro.experiments.runner`) and ``selftest``
(deterministic payload cells with injectable crash/hang/failure, used
by the test suite and the CI smoke job).  ``register_sweep_kind`` adds
more.  The CLI front end is ``repro sweep``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, TextIO

import numpy as np

from repro.obs import live as _live
from repro.obs.manifest import RunManifest

#: schema tag of sweep stores (spec file, shard lines)
SWEEP_SCHEMA = "repro.sweep/v1"

#: schema tag of the merged rollup document
ROLLUP_SCHEMA = "repro.sweep-rollup/v1"

#: default bounded-retry budget: one initial attempt plus two retries
DEFAULT_RETRIES = 2

#: default base of the capped exponential retry backoff, seconds
DEFAULT_BACKOFF_S = 0.25

#: cap on the exponential retry backoff, seconds
MAX_BACKOFF_S = 30.0

#: shard-record fields that legitimately differ between executions of
#: the same sweep (which worker ran the cell, on which attempt) and are
#: therefore stripped before a record enters the merged rollup
VOLATILE_RECORD_FIELDS = frozenset({
    "worker", "attempt", "attempts", "error", "error_tb",
})


class SweepError(RuntimeError):
    """A sweep could not be orchestrated (bad spec, store mismatch)."""


# -- spec and cell identity ----------------------------------------------------

@dataclass(frozen=True)
class SweepSpec:
    """What to sweep — the *identity* of a sweep, minus execution knobs.

    Parameters
    ----------
    kind:
        Registered sweep kind (``faultsweep``, ``experiments``,
        ``selftest``, ...).
    scale:
        Experiment scale forwarded to the kind (``tiny`` | ``default``
        | ``paper``).
    seed:
        The sweep's root seed; every cell derives its own seed from it
        (see :func:`derive_cell_seed`).
    params:
        Kind-specific knobs (JSON-able scalars/lists/dicts only).
    timeout_s:
        Parent-side wall-clock budget per cell *attempt*; a cell still
        running after this long is killed and retried.  ``0`` disables
        the parent-side timeout (the engine's ``max_wall_s`` guard
        still applies inside kinds that wire it).
    retries:
        Bounded retry budget: a cell gets ``1 + retries`` attempts
        before it is quarantined.
    backoff_s:
        Base of the capped exponential backoff between attempts
        (``backoff_s * 2**(attempt-1)``, capped at
        :data:`MAX_BACKOFF_S`).  ``0`` retries immediately.

    ``retries`` and ``backoff_s`` are execution policy, not identity:
    they never change what a *deterministic* cell produces, so they are
    excluded from :meth:`identity` / :meth:`digest`.  ``timeout_s`` can
    change an outcome (a slow cell is quarantined instead of finishing)
    and is part of the identity.
    """

    kind: str
    scale: str = "tiny"
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)
    timeout_s: float = 0.0
    retries: int = DEFAULT_RETRIES
    backoff_s: float = DEFAULT_BACKOFF_S

    def __post_init__(self) -> None:
        if self.kind not in _EXPANDERS:
            raise SweepError(
                f"unknown sweep kind {self.kind!r}; "
                f"available: {', '.join(sorted(_EXPANDERS))}"
            )
        if self.timeout_s < 0:
            raise SweepError(f"timeout_s must be >= 0, got {self.timeout_s}")
        if self.retries < 0:
            raise SweepError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise SweepError(f"backoff_s must be >= 0, got {self.backoff_s}")

    def identity(self) -> dict[str, Any]:
        """The JSON identity document hashed into :meth:`digest`."""
        return {
            "schema": SWEEP_SCHEMA,
            "kind": self.kind,
            "scale": self.scale,
            "seed": self.seed,
            "params": _jsonable_params(self.params),
            "timeout_s": self.timeout_s,
        }

    def digest(self) -> str:
        """SHA-256 of the canonical identity JSON."""
        return hashlib.sha256(
            _canonical(self.identity()).encode("utf-8")
        ).hexdigest()


def _jsonable_params(params: Mapping[str, Any]) -> dict[str, Any]:
    """Round-trip ``params`` through JSON so tuples/np scalars canonicalise."""
    return json.loads(json.dumps(dict(params), sort_keys=True,
                                 default=_json_fallback))


def _json_fallback(value: Any) -> Any:
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return item()
    raise TypeError(f"sweep params must be JSON-able, got {type(value)!r}")


def _canonical(doc: Any) -> str:
    """Canonical compact JSON: the byte form every digest hashes."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def cell_key(cell: Mapping[str, Any]) -> str:
    """Canonical string identity of one cell's parameter dict."""
    return _canonical(cell)


def derive_cell_seed(sweep_seed: int, key: str) -> int:
    """Deterministic 64-bit child seed for one cell.

    ``SHA-256(sweep_seed | cell key)`` truncated to 8 bytes: a pure
    function of the sweep seed and the cell's canonical identity, so
    the same cell gets the same seed no matter which worker runs it,
    in what order, or on which attempt.
    """
    digest = hashlib.sha256(f"{sweep_seed}|{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


# -- sweep-kind registry -------------------------------------------------------

def _faultsweep_cells(spec: SweepSpec) -> list[dict[str, Any]]:
    from repro.experiments import faultsweep

    return faultsweep.sweep_cells(spec)


def _faultsweep_run_cell(spec: SweepSpec, cell: Mapping[str, Any],
                         derived_seed: int, attempt: int) -> dict[str, Any]:
    from repro.experiments import faultsweep

    return faultsweep.run_sweep_cell(spec, cell, derived_seed, attempt)


def _experiments_cells(spec: SweepSpec) -> list[dict[str, Any]]:
    from repro.experiments import runner

    return runner.sweep_cells(spec)


def _experiments_run_cell(spec: SweepSpec, cell: Mapping[str, Any],
                          derived_seed: int, attempt: int) -> dict[str, Any]:
    from repro.experiments import runner

    return runner.run_sweep_cell(spec, cell, derived_seed, attempt)


def _selftest_cells(spec: SweepSpec) -> list[dict[str, Any]]:
    n = int(spec.params.get("cells", 8))
    if n < 1:
        raise SweepError(f"selftest needs at least one cell, got {n}")
    return [{"i": i} for i in range(n)]


def _selftest_run_cell(spec: SweepSpec, cell: Mapping[str, Any],
                       derived_seed: int, attempt: int) -> dict[str, Any]:
    """Deterministic payload cell with injectable failure modes.

    ``params`` knobs: ``crash_once`` / ``hang_once`` — cell indices
    whose *first* attempt SIGKILLs its worker / hangs until the parent
    timeout kills it (both succeed on retry, so the rollup is identical
    to an uninjected run); ``fail`` — indices that raise on every
    attempt and end up quarantined; ``sleep_s`` — per-cell work
    duration.  The payload is drawn from the derived-seed RNG, proving
    seed derivation end to end.
    """
    params = spec.params
    index = int(cell["i"])
    if attempt == 1 and index in set(params.get("crash_once", ())):
        os.kill(os.getpid(), signal.SIGKILL)
    if attempt == 1 and index in set(params.get("hang_once", ())):
        while True:  # parent-side timeout reaps this attempt
            time.sleep(0.05)
    if index in set(params.get("fail", ())):
        raise RuntimeError(f"injected failure in cell {index}")
    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s:
        time.sleep(sleep_s)
    rng = np.random.default_rng(derived_seed)
    values = [round(float(v), 12) for v in rng.random(8)]
    return {"i": index, "values": values,
            "total": round(float(sum(values)), 12)}


#: cell-list builders per sweep kind (dict literal: the static effect
#: analysis resolves registry dispatch through it)
_EXPANDERS: dict[str, Callable[[SweepSpec], list[dict[str, Any]]]] = {
    "faultsweep": _faultsweep_cells,
    "experiments": _experiments_cells,
    "selftest": _selftest_cells,
}

#: cell runners per sweep kind, signature (spec, cell, derived_seed,
#: attempt) -> JSON-able summary dict
_RUNNERS: dict[str, Callable[..., dict[str, Any]]] = {
    "faultsweep": _faultsweep_run_cell,
    "experiments": _experiments_run_cell,
    "selftest": _selftest_run_cell,
}


def register_sweep_kind(
    name: str,
    expand: Callable[[SweepSpec], list[dict[str, Any]]],
    run_cell: Callable[..., dict[str, Any]],
) -> None:
    """Register a sweep kind (``expand`` + ``run_cell``) under ``name``.

    With the default ``fork`` start method the registration is visible
    to workers automatically; under ``spawn`` the registering module
    must be importable (and import-time-registered) in the child.
    """
    if name in _EXPANDERS:
        raise SweepError(f"sweep kind {name!r} already registered")
    _EXPANDERS[name] = expand
    _RUNNERS[name] = run_cell


def expand_cells(spec: SweepSpec) -> list[dict[str, Any]]:
    """The spec's cell list, in canonical (definition) order."""
    cells = _EXPANDERS[spec.kind](spec)
    keys = [cell_key(c) for c in cells]
    if len(set(keys)) != len(keys):
        raise SweepError(f"sweep {spec.kind!r} expanded to duplicate cells")
    return cells


# -- the crash-durable store ---------------------------------------------------

@dataclass
class StoreScan:
    """What a shard scan found: completed cells, quarantines, damage."""

    #: key -> normalised (non-volatile) cell record, ``status == "ok"``
    completed: dict[str, dict[str, Any]]
    #: key -> normalised quarantine record (superseded by ``completed``)
    quarantined: dict[str, dict[str, Any]]
    #: keys whose duplicate records disagree (should never happen for a
    #: deterministic sweep; surfaced rather than silently resolved)
    conflicts: list[dict[str, Any]]
    #: unparseable shard lines (torn tails after a crash), total
    skipped: int
    #: shard files read
    shards: int


class ShardWriter:
    """Append-only JSONL shard: one header, one flushed line per record.

    ``flush()`` after every record pushes the line into the kernel, so
    a ``SIGKILL`` of the writing process (worker *or* parent) loses at
    most the line being written — which the lenient scanner skips.
    """

    def __init__(self, path: "str | os.PathLike[str]", sweep_digest: str,
                 source: str) -> None:
        self.path = os.fspath(path)
        self.source = source
        self._fh: TextIO | None = open(self.path, "w", encoding="utf-8")
        self._write({"type": "meta", "schema": SWEEP_SCHEMA,
                     "sweep": sweep_digest, "source": source})

    def _write(self, record: Mapping[str, Any]) -> None:
        if self._fh is None:
            raise SweepError(f"shard {self.path} is closed")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one cell/quarantine record."""
        self._write(record)

    def close(self) -> None:
        """Close the shard file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class SweepStore:
    """One sweep's on-disk state: ``spec.json``, shards, rollup.

    Layout::

        <root>/spec.json                   # identity of the sweep
        <root>/shards/g0001.w0.jsonl       # per-worker, per-generation
        <root>/shards/g0002.parent.jsonl   # parent quarantine records
        <root>/rollup.json                 # merged, order-independent

    A *generation* is one ``run_sweep`` invocation; resume scans every
    shard of every generation.  Shard files are never reopened or
    rewritten — each worker (including respawns) gets a fresh file —
    so a crash can only ever tear the final line of one shard.
    """

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)

    @property
    def shards_dir(self) -> Path:
        """Directory holding every generation's shard files."""
        return self.root / "shards"

    @property
    def spec_path(self) -> Path:
        """Path of the sweep-identity document."""
        return self.root / "spec.json"

    @property
    def rollup_path(self) -> Path:
        """Path of the merged rollup document."""
        return self.root / "rollup.json"

    def shard_paths(self) -> list[Path]:
        """Every shard file, sorted by basename (order-independent)."""
        if not self.shards_dir.is_dir():
            return []
        return sorted(self.shards_dir.glob("*.jsonl"),
                      key=lambda p: p.name)

    def initialise(self, spec: SweepSpec, resume: bool) -> None:
        """Bind the store to ``spec``; guard against mixing sweeps.

        A fresh directory is stamped with the spec identity.  An
        existing store must carry the *same* identity digest, and —
        when it already holds shards — requires ``resume=True`` so a
        stale store is never extended by accident.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.shards_dir.mkdir(exist_ok=True)
        if self.spec_path.exists():
            existing = json.loads(self.spec_path.read_text(encoding="utf-8"))
            if existing != spec.identity():
                raise SweepError(
                    f"store {self.root} belongs to a different sweep "
                    f"(its spec.json does not match this spec); "
                    "use a fresh --store directory"
                )
            if self.shard_paths() and not resume:
                raise SweepError(
                    f"store {self.root} already holds shards; pass "
                    "resume=True (--resume) to continue it or use a "
                    "fresh --store directory"
                )
        else:
            if self.shard_paths():
                raise SweepError(
                    f"store {self.root} holds shards but no spec.json; "
                    "refusing to guess — use a fresh --store directory"
                )
            tmp = self.spec_path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(spec.identity(), indent=2,
                                      sort_keys=True) + "\n",
                           encoding="utf-8")
            os.replace(tmp, self.spec_path)

    def generation(self) -> int:
        """1 + the highest generation number any existing shard carries."""
        latest = 0
        for path in self.shard_paths():
            name = path.name
            if name.startswith("g") and "." in name:
                head = name[1:].split(".", 1)[0]
                if head.isdigit():
                    latest = max(latest, int(head))
        return latest + 1

    def shard_path(self, generation: int, label: str) -> Path:
        """Path of a new shard for ``label`` in ``generation``."""
        return self.shards_dir / f"g{generation:04d}.{label}.jsonl"

    def open_shard(self, generation: int, label: str,
                   sweep_digest: str) -> ShardWriter:
        """Open a fresh shard writer (fails if the file already exists)."""
        path = self.shard_path(generation, label)
        if path.exists():
            raise SweepError(f"shard {path} already exists")
        return ShardWriter(path, sweep_digest, source=label)

    def scan(self) -> StoreScan:
        """Leniently read every shard and fold records by cell key.

        Unparseable lines (the torn tail a ``kill -9`` can leave) are
        counted and skipped.  Duplicate records for one key — a cell
        re-run because its ``done`` message beat the crash but the
        resume scan didn't see it, or overlapping generations — must
        agree once volatile fields are stripped; disagreement lands in
        ``conflicts``.  A completed record supersedes any quarantine
        record for the same key (quarantined cells are retried on
        resume and may succeed).
        """
        completed: dict[str, dict[str, Any]] = {}
        quarantined: dict[str, dict[str, Any]] = {}
        conflicts: dict[str, set[str]] = {}
        skipped = 0
        shards = 0
        for path in self.shard_paths():
            shards += 1
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        doc = json.loads(line)
                    except ValueError:
                        skipped += 1
                        continue
                    if not isinstance(doc, dict) or doc.get("type") == "meta":
                        continue
                    key = doc.get("key")
                    kind = doc.get("type")
                    if not isinstance(key, str) or kind not in (
                            "cell", "quarantine"):
                        skipped += 1
                        continue
                    normalised = normalise_record(doc)
                    bucket = completed if kind == "cell" else quarantined
                    previous = bucket.get(key)
                    if previous is None:
                        bucket[key] = normalised
                    elif previous != normalised:
                        conflicts.setdefault(key, set()).update(
                            (_canonical(previous), _canonical(normalised)))
        conflict_rows = [
            {"key": key, "records": sorted(variants)}
            for key, variants in sorted(conflicts.items())
        ]
        return StoreScan(completed=completed, quarantined=quarantined,
                         conflicts=conflict_rows, skipped=skipped,
                         shards=shards)


def normalise_record(record: Mapping[str, Any]) -> dict[str, Any]:
    """A record with volatile (execution-history) fields stripped."""
    return {k: v for k, v in record.items()
            if k not in VOLATILE_RECORD_FIELDS}


def cell_manifest(spec: SweepSpec, cell: Mapping[str, Any],
                  derived_seed: int, summary: Mapping[str, Any]) -> RunManifest:
    """The deterministic provenance manifest of one completed cell.

    ``timestamp=False`` and a fixed ``sha`` keep the manifest — and so
    its ``stable_digest`` and the rollup bytes — a pure function of
    (spec, cell, summary), independent of when and where the cell ran.
    """
    return RunManifest.create(
        kind="sweep-cell",
        seed=derived_seed,
        config={"sweep": spec.identity(), "cell": dict(cell)},
        summary=dict(summary),
        timestamp=False,
        sha="-",
    )


def merge_store(store: "SweepStore | str | os.PathLike[str]",
                total: int | None = None) -> dict[str, Any]:
    """Fold every shard into one deterministic rollup document.

    Order-independent: records are keyed and emitted in sorted-key
    order and the canonical JSON has sorted keys, so the same set of
    shard *records* yields byte-identical rollup JSON no matter how
    the work was distributed, interrupted, or resumed.
    """
    if not isinstance(store, SweepStore):
        store = SweepStore(store)
    spec_doc = None
    if store.spec_path.exists():
        spec_doc = json.loads(store.spec_path.read_text(encoding="utf-8"))
    scan = store.scan()
    cells = [scan.completed[key] for key in sorted(scan.completed)]
    quarantined = [scan.quarantined[key] for key in sorted(scan.quarantined)
                   if key not in scan.completed]
    rollup: dict[str, Any] = {
        "schema": ROLLUP_SCHEMA,
        "sweep": spec_doc,
        "cells": cells,
        "quarantined": quarantined,
        "completed": len(cells),
        "conflicts": scan.conflicts,
    }
    if total is not None:
        rollup["total"] = total
    return rollup


def rollup_digest(rollup: Mapping[str, Any]) -> str:
    """SHA-256 over the rollup's canonical JSON bytes."""
    return hashlib.sha256(_canonical(rollup).encode("utf-8")).hexdigest()


#: the per-record fields :func:`results_digest` hashes — what a cell
#: *produced*, not how the sweep was configured to produce it
RESULT_FIELDS = ("key", "cell", "derived_seed", "status", "summary",
                 "error_type")


def results_digest(rollup: Mapping[str, Any]) -> str:
    """SHA-256 over the result payloads only, excluding sweep identity.

    :func:`rollup_digest` covers the whole document, so it can only
    compare executions of the *same* spec (its identity is embedded in
    the rollup and in every cell manifest).  This digest strips that
    identity down to what the cells actually produced, so two sweeps
    whose specs differ only in ways that must not affect results — the
    failure-injection knobs of the ``selftest`` kind, a different
    ``timeout_s`` that never fired — can be proven to converge.
    """
    def strip(record: Mapping[str, Any]) -> dict[str, Any]:
        return {k: record[k] for k in RESULT_FIELDS if k in record}

    doc = {
        "cells": [strip(r) for r in rollup.get("cells", ())],
        "quarantined": [strip(r) for r in rollup.get("quarantined", ())],
    }
    return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()


def write_rollup(store: SweepStore, rollup: Mapping[str, Any]) -> Path:
    """Atomically write ``rollup.json`` (tmp + rename); returns the path."""
    tmp = store.rollup_path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(rollup, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, store.rollup_path)
    return store.rollup_path


# -- cell execution (shared by workers and the inline path) --------------------

def _execute_cell(spec: SweepSpec, cell: Mapping[str, Any],
                  derived_seed: int, attempt: int) -> dict[str, Any]:
    """Run one cell attempt and build its durable shard record.

    This is the pool's worker-side entry point into experiment code
    (with :func:`_worker_main` around it in the parallel path): taint
    rule RPR608 proves nothing reachable from here consumes ambient
    RNG state, the wall clock, or the process environment.
    """
    summary = _RUNNERS[spec.kind](spec, dict(cell), derived_seed, attempt)
    manifest = cell_manifest(spec, cell, derived_seed, summary)
    return {
        "type": "cell",
        "schema": SWEEP_SCHEMA,
        "key": cell_key(cell),
        "cell": dict(cell),
        "derived_seed": derived_seed,
        "status": "ok",
        "summary": dict(summary),
        "manifest": manifest.as_dict(),
        "digest": manifest.stable_digest(),
    }


def _quarantine_record(spec: SweepSpec, cell: Mapping[str, Any],
                       derived_seed: int, error_type: str, error: str,
                       error_tb: str, attempts: int) -> dict[str, Any]:
    """The durable record of a cell that failed all its attempts.

    Only the *type* of the failure enters the non-volatile payload:
    messages and tracebacks can embed measured wall times (an engine
    runaway diagnostic, a timeout duration) that would break rollup
    byte-parity, so they ride in volatile fields instead.
    """
    return {
        "type": "quarantine",
        "schema": SWEEP_SCHEMA,
        "key": cell_key(cell),
        "cell": dict(cell),
        "derived_seed": derived_seed,
        "status": "quarantined",
        "error_type": error_type,
        # volatile diagnostics (stripped from the rollup):
        "error": error,
        "error_tb": error_tb,
        "attempts": attempts,
    }


def _live_fields(cell: Mapping[str, Any],
                 summary: Mapping[str, Any] | None) -> dict[str, Any]:
    """Flat scalar fields worth echoing into live sweep snapshots."""
    fields: dict[str, Any] = {}
    for source in (cell, summary or {}):
        for key in ("policy", "mtbf", "exp", "i"):
            value = source.get(key)
            if isinstance(value, (str, int, float)):
                fields[key] = value
    metrics = (summary or {}).get("metrics")
    if isinstance(metrics, Mapping):
        for key in ("utilization", "avg_wait"):
            value = metrics.get(key)
            if isinstance(value, (int, float)):
                fields[key] = value
    return fields


# -- worker process ------------------------------------------------------------

def _worker_main(conn: Any, spec: SweepSpec,
                 shard_path: "str | os.PathLike[str]", label: str) -> None:
    """Worker loop: recv task, run cell, append shard record, report.

    First resets the process-global observability state inherited
    across ``fork`` (progress sinks, tracer/profiler file handles must
    not be shared with the parent), then installs a private live bus
    whose only sink forwards snapshots to the parent for aggregation.
    A dead parent ends the loop: either as a broken pipe, or — when a
    sibling worker forked after this one still holds an inherited copy
    of the pipe's parent end, so no EOF can arrive — as a change of
    ``os.getppid()`` (a ``SIGKILL``-ed parent reparents this process).
    An orphaned worker therefore never outlives its parent by more
    than its in-flight cell plus one poll interval.
    """
    from repro.obs.profile import set_global_profiler
    from repro.obs.trace import set_global_tracer

    _live.set_global_live_bus(None)
    set_global_tracer(None)
    set_global_profiler(None)
    bus = _live.LiveBus()
    bus.attach(_live.ConnectionSink(conn))
    _live.set_global_live_bus(bus)
    writer = ShardWriter(shard_path, spec.digest(), source=label)
    parent_pid = os.getppid()
    try:
        while True:
            try:
                while not conn.poll(0.5):
                    if os.getppid() != parent_pid:
                        return  # parent SIGKILLed; we were reparented
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent gone
            if message[0] == "stop":
                break
            _, index, cell, derived_seed, attempt = message
            bus.publish("cell", {
                "worker": label, "cell": index, "attempt": attempt,
                **_live_fields(cell, None),
            })
            try:
                record = _execute_cell(spec, cell, derived_seed, attempt)
            except Exception as exc:
                try:
                    conn.send(("failed", index, type(exc).__name__,
                               str(exc), traceback.format_exc()))
                except (OSError, ValueError):
                    break
                continue
            record["worker"] = label
            record["attempt"] = attempt
            writer.append(record)
            try:
                conn.send(("done", index, record["digest"],
                           _live_fields(cell, record["summary"])))
            except (OSError, ValueError):
                break
    finally:
        writer.close()
        conn.close()


# -- the orchestrator ----------------------------------------------------------

@dataclass(frozen=True)
class SweepResult:
    """Outcome of one ``run_sweep`` invocation."""

    spec: SweepSpec
    store: Path
    total: int
    #: cells completed by *this* invocation
    ran: int
    #: cells skipped because a previous generation completed them
    resumed: int
    #: cell key -> human-readable failure reason (this invocation)
    quarantined: dict[str, str]
    rollup: dict[str, Any]
    rollup_path: Path
    digest: str

    @property
    def completed(self) -> int:
        """Cells with an ``ok`` record in the merged rollup."""
        return int(self.rollup.get("completed", 0))


@dataclass
class _Attempt:
    """Parent-side state of one pending cell attempt."""

    index: int
    key: str
    cell: dict[str, Any]
    derived_seed: int
    attempt: int = 1
    eligible_at: float = 0.0


class _Worker:
    """Parent-side handle of one worker process."""

    def __init__(self, ctx: Any, spec: SweepSpec, store: SweepStore,
                 generation: int, slot: int, spawn_seq: int) -> None:
        self.slot = slot
        self.label = f"w{slot}" if spawn_seq == 0 else f"w{slot}r{spawn_seq}"
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        shard = store.shard_path(generation, self.label)
        if shard.exists():
            raise SweepError(f"shard {shard} already exists")
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, spec, os.fspath(shard), self.label),
            name=f"repro-sweep-{self.label}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.running: _Attempt | None = None
        self.deadline: float | None = None

    def kill(self) -> None:
        """Forcibly terminate the worker process and reap it."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def stop(self) -> None:
        """Ask the worker to exit cleanly; escalate if it doesn't."""
        try:
            self.conn.send(("stop",))
        except (OSError, ValueError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


def run_sweep(
    spec: SweepSpec,
    store: "SweepStore | str | os.PathLike[str]",
    workers: int = 0,
    resume: bool = False,
    live: "_live.LiveBus | None" = None,
    start_method: str | None = None,
) -> SweepResult:
    """Run (or resume) a sweep; returns the merged, digested outcome.

    ``workers=0`` runs every cell inline in this process (the serial
    reference path — no subprocesses, so crash/hang injection and the
    parent-side timeout don't apply; the engine ``max_wall_s`` guard
    inside cells still does).  ``workers>=1`` runs cells on that many
    worker processes with the full failure handling described in the
    module docstring.

    ``resume=True`` scans the store first and skips cells a previous
    generation completed; quarantined cells are retried with a fresh
    attempt budget.  The merged rollup is written to
    ``<store>/rollup.json`` either way, and its bytes depend only on
    the sweep spec (plus which cells deterministically fail) — never
    on ``workers``, the retry schedule, or the crash/resume history.
    """
    if workers < 0:
        raise SweepError(f"workers must be >= 0, got {workers}")
    if not isinstance(store, SweepStore):
        store = SweepStore(store)
    store.initialise(spec, resume=resume)
    cells = expand_cells(spec)
    keys = [cell_key(c) for c in cells]
    total = len(cells)
    done_keys: set[str] = set()
    if resume:
        done_keys = set(store.scan().completed) & set(keys)
    pending = [
        _Attempt(index=i, key=keys[i], cell=dict(cells[i]),
                 derived_seed=derive_cell_seed(spec.seed, keys[i]))
        for i in range(total) if keys[i] not in done_keys
    ]
    if live is None:
        live = _live.global_live_bus()
    generation = store.generation()
    quarantined: dict[str, str] = {}
    if pending:
        if workers == 0:
            _run_inline(spec, store, generation, pending, len(done_keys),
                        total, quarantined, live)
        else:
            _run_parallel(spec, store, generation, pending, len(done_keys),
                          total, quarantined, live, workers, start_method)
    rollup = merge_store(store, total=total)
    rollup_path = write_rollup(store, rollup)
    return SweepResult(
        spec=spec,
        store=store.root,
        total=total,
        ran=len(pending) - len(quarantined),
        resumed=len(done_keys),
        quarantined=dict(quarantined),
        rollup=rollup,
        rollup_path=rollup_path,
        digest=rollup_digest(rollup),
    )


def _publish_sweep(live: "_live.LiveBus | None", *, done: int, total: int,
                   quarantined: int, fields: Mapping[str, Any],
                   final: bool) -> None:
    """One ``kind="sweep"`` progress snapshot (drives the ETA line)."""
    if live is None:
        return
    record: dict[str, Any] = {"done": done, "total": total,
                              "quarantined": quarantined}
    record.update(fields)
    if final:
        record["final"] = True
    live.publish("sweep", record)


def _backoff_s(spec: SweepSpec, attempt: int) -> float:
    """Capped exponential backoff before attempt ``attempt + 1``."""
    if spec.backoff_s <= 0:
        return 0.0
    return min(spec.backoff_s * (2.0 ** (attempt - 1)), MAX_BACKOFF_S)


def _run_inline(spec: SweepSpec, store: SweepStore, generation: int,
                pending: list[_Attempt], already_done: int, total: int,
                quarantined: dict[str, str],
                live: "_live.LiveBus | None") -> None:
    """The serial reference path: run every pending cell in-process."""
    writer = store.open_shard(generation, "w0", spec.digest())
    resolved = already_done
    try:
        for task in pending:
            record = None
            failure: tuple[str, str, str] | None = None
            while True:
                try:
                    record = _execute_cell(spec, task.cell,
                                           task.derived_seed, task.attempt)
                    break
                except Exception as exc:
                    failure = (type(exc).__name__, str(exc),
                               traceback.format_exc())
                    if task.attempt > spec.retries:
                        break
                    delay = _backoff_s(spec, task.attempt)
                    task.attempt += 1
                    if delay:
                        time.sleep(delay)
            resolved += 1
            if record is not None:
                record["worker"] = "w0"
                record["attempt"] = task.attempt
                writer.append(record)
                fields = _live_fields(task.cell, record["summary"])
            else:
                error_type, error, tb = failure  # type: ignore[misc]
                writer.append(_quarantine_record(
                    spec, task.cell, task.derived_seed, error_type, error,
                    tb, attempts=task.attempt))
                quarantined[task.key] = f"{error_type}: {error}"
                fields = _live_fields(task.cell, None)
            _publish_sweep(live, done=resolved, total=total,
                           quarantined=len(quarantined), fields=fields,
                           final=resolved == total)
    finally:
        writer.close()


def _run_parallel(spec: SweepSpec, store: SweepStore, generation: int,
                  pending: list[_Attempt], already_done: int, total: int,
                  quarantined: dict[str, str],
                  live: "_live.LiveBus | None", workers: int,
                  start_method: str | None) -> None:
    """The process-pool path: dispatch, watch, retry, quarantine."""
    if start_method is None:
        start_method = ("fork" if "fork" in
                        multiprocessing.get_all_start_methods() else "spawn")
    ctx = multiprocessing.get_context(start_method)
    workers = min(workers, len(pending))
    parent_writer = store.open_shard(generation, "parent", spec.digest())
    spawn_seq = [0] * workers

    def spawn(slot: int) -> _Worker:
        worker = _Worker(ctx, spec, store, generation, slot,
                         spawn_seq[slot])
        spawn_seq[slot] += 1
        return worker

    pool: dict[int, _Worker] = {}
    try:
        for slot in range(workers):
            pool[slot] = spawn(slot)
        queue = list(pending)  # waiting attempts (never in-flight)
        resolved = already_done

        def fail_attempt(worker: _Worker, error_type: str, error: str,
                         tb: str) -> None:
            """Retry or quarantine the worker's in-flight attempt."""
            nonlocal resolved
            task = worker.running
            worker.running = None
            worker.deadline = None
            if task is None:
                return
            if task.attempt > spec.retries:
                parent_writer.append(_quarantine_record(
                    spec, task.cell, task.derived_seed, error_type, error,
                    tb, attempts=task.attempt))
                quarantined[task.key] = f"{error_type}: {error}"
                resolved += 1
                _publish_sweep(live, done=resolved, total=total,
                               quarantined=len(quarantined),
                               fields=_live_fields(task.cell, None),
                               final=resolved == total)
            else:
                delay = _backoff_s(spec, task.attempt)
                task.attempt += 1
                task.eligible_at = time.perf_counter() + delay
                queue.append(task)

        def replace(slot: int) -> None:
            """Respawn the worker in ``slot`` after a kill/crash."""
            if queue or any(w.running is not None for w in pool.values()):
                pool[slot] = spawn(slot)
            else:
                del pool[slot]

        while queue or any(w.running is not None for w in pool.values()):
            now = time.perf_counter()
            # dispatch eligible attempts to idle workers, cell order first
            queue.sort(key=lambda t: (t.eligible_at, t.index))
            for worker in pool.values():
                if worker.running is not None or not queue:
                    continue
                if queue[0].eligible_at > now:
                    break
                task = queue.pop(0)
                try:
                    worker.conn.send(("run", task.index, task.cell,
                                      task.derived_seed, task.attempt))
                except (OSError, ValueError):
                    # worker died while idle: put the task back, respawn
                    queue.insert(0, task)
                    worker.kill()
                    replace(worker.slot)
                    continue
                worker.running = task
                worker.deadline = (now + spec.timeout_s
                                   if spec.timeout_s > 0 else None)
            # wait for messages, the next deadline, or the next backoff
            deadlines = [w.deadline for w in pool.values()
                         if w.deadline is not None]
            wakeups = deadlines + [t.eligible_at for t in queue
                                   if t.eligible_at > now]
            timeout = 0.25
            if wakeups:
                timeout = min(timeout, max(0.01, min(wakeups) - now))
            busy = [w for w in pool.values() if w.running is not None]
            ready = _conn_wait([w.conn for w in busy],
                               timeout=timeout) if busy else []
            if not busy and timeout:
                time.sleep(min(timeout, 0.05))
            by_conn = {w.conn: w for w in pool.values()}
            for conn in ready:
                worker = by_conn[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # the worker crashed (segfault, OOM, injected kill)
                    exitcode = worker.process.exitcode
                    worker.kill()
                    fail_attempt(
                        worker, "WorkerCrash",
                        f"worker exited with code {exitcode} mid-cell", "")
                    replace(worker.slot)
                    continue
                if message[0] == "live":
                    _forward_live(live, worker.slot, message[1])
                    continue
                if message[0] == "done":
                    _, _index, _digest, fields = message
                    task = worker.running
                    worker.running = None
                    worker.deadline = None
                    resolved += 1
                    _publish_sweep(live, done=resolved, total=total,
                                   quarantined=len(quarantined),
                                   fields=fields, final=resolved == total)
                elif message[0] == "failed":
                    _, _index, error_type, error, tb = message
                    fail_attempt(worker, error_type, error, tb)
            # reap attempts that blew their wall-clock budget
            now = time.perf_counter()
            for slot, worker in list(pool.items()):
                if worker.deadline is not None and now > worker.deadline:
                    worker.kill()
                    fail_attempt(
                        worker, "CellTimeout",
                        f"cell exceeded the per-attempt wall-clock budget "
                        f"({spec.timeout_s:g}s)", "")
                    replace(slot)
    finally:
        parent_writer.close()
        for worker in pool.values():
            worker.stop()


def _forward_live(live: "_live.LiveBus | None", slot: int,
                  record: Mapping[str, Any]) -> None:
    """Republish one worker snapshot on the parent bus.

    The worker's kind is suffixed with its slot (``sim`` from worker 1
    becomes ``sim_w1``) so ``/status`` shows each worker's last
    snapshot side by side while the aggregate ``sweep`` kind keeps the
    overall done/total/ETA view.
    """
    if live is None:
        return
    kind = str(record.get("kind", "worker"))
    fields = {k: v for k, v in record.items()
              if k not in ("schema", "kind", "seq", "wall")}
    live.publish(f"{kind}_w{slot}", fields)
