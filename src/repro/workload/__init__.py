"""Workload tooling: SWF traces, synthetic generation, jobset curricula.

The paper evaluates DRAS with production job logs from Theta (ALCF) and
Cori (NERSC).  Those logs are not redistributable, so this package
provides

* an SWF (Standard Workload Format) reader/writer so real logs from the
  Parallel Workloads Archive can be dropped in unchanged, and
* statistical workload models (:class:`ThetaModel`, :class:`CoriModel`)
  calibrated to the characteristics the paper reports (Table II, Fig 2,
  Fig 3): system size, size mix, runtime caps, and diurnal/weekly
  arrival patterns.

It also builds the three kinds of training jobsets from §III-C:
Poisson-*sampled* jobsets, chunks of the *real* (or model-generated
reference) trace, and fully *synthetic* jobsets.
"""

from repro.workload.swf import (
    SWFParseReport,
    SWFWarning,
    read_swf,
    read_swf_report,
    write_swf,
)
from repro.workload.units import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.workload.generator import (
    CategoricalSizes,
    DiurnalArrivals,
    LognormalRuntimes,
    PoissonArrivals,
)
from repro.workload.models import CoriModel, ThetaModel, WorkloadModel
from repro.workload.stats import TraceStats, analyze_trace, fit_model, size_category_shares
from repro.workload.jobsets import (
    normalize_times,
    real_jobsets,
    sampled_jobset,
    split_weeks,
    synthetic_jobsets,
    three_phase_curriculum,
)

__all__ = [
    "CategoricalSizes",
    "CoriModel",
    "DiurnalArrivals",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "LognormalRuntimes",
    "PoissonArrivals",
    "SWFParseReport",
    "SWFWarning",
    "ThetaModel",
    "TraceStats",
    "WorkloadModel",
    "analyze_trace",
    "fit_model",
    "normalize_times",
    "read_swf",
    "read_swf_report",
    "real_jobsets",
    "sampled_jobset",
    "size_category_shares",
    "split_weeks",
    "synthetic_jobsets",
    "three_phase_curriculum",
    "write_swf",
]
