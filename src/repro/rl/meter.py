"""Policy-agnostic reward accounting.

Fig 5 plots "the total reward collected by the different scheduling
methods" — including FCFS, BinPacking, Random and Optimization, which
never look at a reward.  :class:`RewardMeter` observes any engine run
and evaluates a reward function once per scheduling instance on the
jobs the policy selected, so every method is scored by the identical
objective.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.rewards import RewardFunction
from repro.sim.engine import SchedulingView
from repro.sim.job import Job


class RewardMeter:
    """Accumulates per-instance rewards of an arbitrary policy."""

    def __init__(self, reward_fn: RewardFunction) -> None:
        self.reward_fn = reward_fn
        self.total = 0.0
        self.instances = 0
        self.per_instance: list[float] = []

    def on_instance(self, view: SchedulingView, started: Sequence[Job]) -> None:
        selected = list(started)
        if view.reserved_job is not None:
            selected.append(view.reserved_job)
        reward = self.reward_fn(selected, view.waiting(), view.cluster, view.now)
        self.total += reward
        self.instances += 1
        self.per_instance.append(reward)

    @property
    def average(self) -> float:
        return self.total / self.instances if self.instances else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.instances = 0
        self.per_instance.clear()
