"""Shard aggregation: lenient reads, order-independent merge, crash durability."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.obs.aggregate import (
    ROLLUP_SCHEMA,
    format_rollup,
    merge_shards,
    read_snapshots,
)
from repro.obs.live import LIVE_SCHEMA, LiveBus, SnapshotWriter

REPO = Path(__file__).resolve().parent.parent


def _write_shard(path, source, rows):
    bus = LiveBus()
    bus.attach(SnapshotWriter(path, source=source))
    for kind, fields in rows:
        bus.publish(kind, fields)
    bus.close()


class TestReadSnapshots:
    def test_round_trip_with_meta(self, tmp_path):
        path = tmp_path / "a.jsonl"
        _write_shard(path, "a0", [("sim", {"done": 1, "total": 4})])
        shard = read_snapshots(path)
        assert shard["source"] == "a0" and shard["schema"] == LIVE_SCHEMA
        assert shard["skipped"] == 0
        assert [r["done"] for r in shard["records"]] == [1]

    def test_truncated_tail_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "a.jsonl"
        _write_shard(path, "a0", [("sim", {"done": 1, "total": 4}),
                                  ("sim", {"done": 2, "total": 4})])
        lines = path.read_text().splitlines()
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        path.write_text(torn)                      # simulate a mid-write kill
        shard = read_snapshots(path)
        assert shard["skipped"] == 1
        assert len(shard["records"]) >= 1          # the intact prefix survives

    def test_shard_without_meta_uses_basename_source(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text(json.dumps({"type": "snapshot", "kind": "sim",
                                    "seq": 1, "done": 1}) + "\n")
        shard = read_snapshots(path)
        assert shard["source"] == "bare.jsonl" and shard["schema"] is None

    def test_non_object_lines_are_skipped(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text('[1, 2]\nnot json\n\n')
        shard = read_snapshots(path)
        assert shard["records"] == [] and shard["skipped"] == 2


class TestMergeShards:
    def _two_shards(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _write_shard(a, "a0", [("sim", {"done": 1, "total": 4, "t": 10.0}),
                               ("sim", {"done": 3, "total": 4, "t": 30.0})])
        _write_shard(b, "b0", [("sim", {"done": 2, "total": 4, "t": 20.0}),
                               ("sweep", {"done": 1, "total": 2, "cell": 1})])
        return a, b

    def test_merge_is_order_independent(self, tmp_path):
        a, b = self._two_shards(tmp_path)
        forward = json.dumps(merge_shards([a, b]), sort_keys=True)
        backward = json.dumps(merge_shards([b, a]), sort_keys=True)
        assert forward == backward

    def test_rollup_shape_and_reductions(self, tmp_path):
        a, b = self._two_shards(tmp_path)
        rollup = merge_shards([a, b])
        assert rollup["schema"] == ROLLUP_SCHEMA
        assert [s["path"] for s in rollup["shards"]] == ["a.jsonl", "b.jsonl"]
        sim = rollup["kinds"]["sim"]
        assert sim["snapshots"] == 3
        assert sim["sources"] == ["a0", "b0"]
        # latest row per source: a0 seq=2 (done=3), b0 seq=1 (done=2)
        assert sim["last"]["a0"]["done"] == 3
        assert sim["done"] == 5 and sim["total"] == 8
        assert sim["fields"]["t"] == {"min": 10.0, "max": 30.0}
        assert rollup["kinds"]["sweep"]["done"] == 1

    def test_telemetry_episode_shards_merge_as_train(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        lines = [{"type": "meta", "schema": "repro.telemetry/v1",
                  "source": "t0"},
                 {"type": "episode", "episode": 0, "train_reward": -1.5},
                 {"type": "episode", "episode": 1, "train_reward": -1.0}]
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        rollup = merge_shards([path])
        train = rollup["kinds"]["train"]
        assert train["snapshots"] == 2
        assert train["last"]["t0"]["episode"] == 1   # seq derives from episode
        assert train["fields"]["train_reward"] == {"min": -1.5, "max": -1.0}

    def test_format_rollup_smoke(self, tmp_path):
        a, b = self._two_shards(tmp_path)
        text = format_rollup(merge_shards([a, b]))
        assert text.startswith("live rollup (repro.live-rollup/v1): 2 shard(s)")
        assert "[sim] 3 snapshot(s) from 2 source(s), done 5/8" in text
        assert text.endswith("\n")


KILLED_WRITER = """
import sys
from repro.obs.live import LiveBus, SnapshotWriter

bus = LiveBus()
bus.attach(SnapshotWriter(sys.argv[1], source="victim"))
for i in range(5):
    bus.publish("sim", {"done": i + 1, "total": 1000})
print("ready", flush=True)
while True:                       # keep publishing until killed
    bus.publish("sim", {"done": 6, "total": 1000})
"""


class TestCrashDurability:
    def test_sigkilled_writer_leaves_a_mergeable_shard(self, tmp_path):
        """kill -9 mid-publish must leave a parseable, mergeable prefix."""
        shard = tmp_path / "victim.jsonl"
        script = tmp_path / "writer.py"
        script.write_text(KILLED_WRITER)
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.Popen([sys.executable, str(script), str(shard)],
                                stdout=subprocess.PIPE, env=env, text=True)
        try:
            assert proc.stdout.readline().strip() == "ready"
            time.sleep(0.05)      # let it write mid-stream for a while
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == -signal.SIGKILL
        parsed = read_snapshots(shard)
        assert parsed["source"] == "victim"
        assert len(parsed["records"]) >= 5          # flushed prefix survives
        assert parsed["skipped"] <= 1               # at most one torn line
        rollup = merge_shards([shard])
        sim = rollup["kinds"]["sim"]
        assert sim["sources"] == ["victim"]
        assert sim["last"]["victim"]["done"] >= 5
