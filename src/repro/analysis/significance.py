"""Bootstrap statistics for method comparisons.

Per-job scheduling metrics are heavy-tailed (a handful of near-starved
jobs dominate the mean), so point estimates of "method A beats method
B by X%" deserve uncertainty quantification.  These helpers provide
percentile-bootstrap confidence intervals for a metric mean and for the
difference between two methods on paired traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with its bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def excludes_zero(self) -> bool:
        """True when the CI does not straddle zero (a significant sign)."""
        return self.low > 0 or self.high < 0

    def __str__(self) -> str:  # pragma: no cover - formatting sugar
        pct = int(round(self.confidence * 100))
        return f"{self.estimate:.3g} [{self.low:.3g}, {self.high:.3g}] ({pct}% CI)"


def bootstrap_mean(
    values: np.ndarray | list[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile-bootstrap CI of the mean of ``values``."""
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(x.size, size=(n_resamples, x.size))
    means = x[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(x.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_mean_difference(
    a: np.ndarray | list[float],
    b: np.ndarray | list[float],
    paired: bool = True,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """CI of ``mean(a) - mean(b)``.

    ``paired=True`` resamples job indices jointly — the right choice
    when both methods scheduled the *same* trace, since per-job values
    are then strongly correlated.
    """
    xa = np.asarray(a, dtype=np.float64)
    xb = np.asarray(b, dtype=np.float64)
    if xa.size == 0 or xb.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = np.random.default_rng(seed)
    if paired:
        if xa.size != xb.size:
            raise ValueError("paired bootstrap requires equal-length samples")
        diffs = xa - xb
        idx = rng.integers(diffs.size, size=(n_resamples, diffs.size))
        stats = diffs[idx].mean(axis=1)
        estimate = float(diffs.mean())
    else:
        ia = rng.integers(xa.size, size=(n_resamples, xa.size))
        ib = rng.integers(xb.size, size=(n_resamples, xb.size))
        stats = xa[ia].mean(axis=1) - xb[ib].mean(axis=1)
        estimate = float(xa.mean() - xb.mean())
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=estimate,
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
    )


def compare_wait_times(
    result_a, result_b, confidence: float = 0.95, seed: int = 0
) -> BootstrapCI:
    """CI of the per-job wait-time difference between two runs.

    Both runs must have scheduled the same jobset (matching job ids);
    waits are paired job-by-job.
    """
    waits_a = {j.job_id: j.wait_time for j in result_a.finished_jobs}
    waits_b = {j.job_id: j.wait_time for j in result_b.finished_jobs}
    common = sorted(set(waits_a) & set(waits_b))
    if not common:
        raise ValueError("runs share no finished jobs")
    a = np.array([waits_a[i] for i in common])
    b = np.array([waits_b[i] for i in common])
    return bootstrap_mean_difference(a, b, paired=True, confidence=confidence,
                                     seed=seed)
