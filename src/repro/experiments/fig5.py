"""Fig 5 — total reward on the validation set per training episode.

The learning curves of DRAS-PG, DRAS-DQL and Decima-PG are plotted
against the (constant) total reward of the static methods, all scored
by the same capability objective on the same validation jobset.
Expected shape: the three-phase curriculum lets the DRAS agents climb
past every competing method and converge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.plots import line_chart
from repro.analysis.tables import format_table
from repro.experiments.common import (
    baseline_schedulers,
    system_setup,
    trained_agent,
)
from repro.rl.meter import RewardMeter
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine


@dataclass(frozen=True)
class LearningCurves:
    #: per-episode validation reward of the learning agents
    curves: dict[str, tuple[float, ...]]
    #: constant validation reward of each static method
    static_rewards: dict[str, float]


def _static_reward(scheduler, jobs, num_nodes, reward_fn) -> float:
    meter = RewardMeter(reward_fn)
    Engine(
        Cluster(num_nodes),
        scheduler,
        [j.copy_fresh() for j in jobs],
        observers=[meter],
    ).run()
    return meter.total


def run(scale: str = "default", seed: int = 0) -> LearningCurves:
    setup = system_setup("theta", scale, seed)
    curves: dict[str, tuple[float, ...]] = {}
    for kind, label in (("pg", "DRAS-PG"), ("dql", "DRAS-DQL"), ("decima", "Decima-PG")):
        agent, history = trained_agent(kind, "theta", scale, seed)
        curves[label] = tuple(float(v) for v in history.validation_curve)

    reward_fn = trained_agent("pg", "theta", scale, seed)[0].reward_fn
    static_rewards = {}
    for scheduler in baseline_schedulers(setup.config.objective, seed=seed):
        static_rewards[scheduler.name] = _static_reward(
            scheduler, setup.validation_trace, setup.model.num_nodes, reward_fn
        )
    return LearningCurves(curves=curves, static_rewards=static_rewards)


def report(result: LearningCurves) -> str:
    rows = [
        [name, f"{reward:.2f}", "static"]
        for name, reward in result.static_rewards.items()
    ]
    for name, curve in result.curves.items():
        rows.append([name, f"{curve[-1]:.2f}", f"episode curve ({len(curve)} eps)"])
    table = format_table(
        ["method", "final validation reward", "kind"],
        rows,
        title="Fig 5: total reward on the Theta validation set",
    )
    curves = "\n".join(
        f"  {name}: " + " ".join(f"{v:.1f}" for v in curve)
        for name, curve in result.curves.items()
    )
    chart = line_chart(
        {name: list(curve) for name, curve in result.curves.items()},
        height=10,
        title="validation reward vs episode:",
    )
    return (table + "\n\nlearning curves (validation reward per episode):\n"
            + curves + "\n\n" + chart)
