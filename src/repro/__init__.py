"""repro — a from-scratch reproduction of DRAS (IPDPS'21).

DRAS (Deep Reinforcement Agent for Scheduling) is an automated HPC
cluster-scheduling agent built on a hierarchical neural network that
incorporates resource reservation and backfilling.  This package
provides the complete system: the trace-driven scheduling simulator,
the workload tooling, the NumPy neural-network substrate, the DRAS-PG
and DRAS-DQL agents, every baseline the paper compares against, the
three-phase training strategy, and an experiment harness regenerating
every table and figure of the paper's evaluation.

Quick start::

    import numpy as np
    from repro import DRASConfig, DRASPG, ThetaModel, run_simulation

    model = ThetaModel.scaled(256)
    jobs = model.generate(500, np.random.default_rng(0))
    agent = DRASPG(DRASConfig.scaled(256))
    result = run_simulation(256, agent, jobs)
"""

from repro.core import (
    CapabilityReward,
    CapacityReward,
    DRASConfig,
    DRASDQL,
    DRASPG,
    DecimaPG,
    NetworkDims,
    StateEncoder,
    make_reward,
    table3_configs,
)
from repro.core.persistence import load_agent, save_agent
from repro.schedulers import (
    BinPacking,
    ConservativeBackfill,
    FCFSEasy,
    KnapsackOptimization,
    RandomScheduler,
)
from repro.sim import (
    Cluster,
    Engine,
    ExecMode,
    Job,
    JobState,
    MetricsRecorder,
    RunMetrics,
)
from repro.sim.engine import run_simulation
from repro.workload import (
    CoriModel,
    ThetaModel,
    WorkloadModel,
    read_swf,
    three_phase_curriculum,
    write_swf,
)

__version__ = "1.0.0"

__all__ = [
    "BinPacking",
    "CapabilityReward",
    "CapacityReward",
    "Cluster",
    "ConservativeBackfill",
    "CoriModel",
    "DRASConfig",
    "DRASDQL",
    "DRASPG",
    "DecimaPG",
    "Engine",
    "ExecMode",
    "FCFSEasy",
    "Job",
    "JobState",
    "KnapsackOptimization",
    "MetricsRecorder",
    "NetworkDims",
    "RandomScheduler",
    "RunMetrics",
    "StateEncoder",
    "ThetaModel",
    "WorkloadModel",
    "load_agent",
    "make_reward",
    "read_swf",
    "run_simulation",
    "save_agent",
    "table3_configs",
    "three_phase_curriculum",
    "write_swf",
    "__version__",
]
