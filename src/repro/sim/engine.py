"""The trace-driven simulation engine.

The engine replays a jobset: ``SUBMIT`` events come from the trace,
``FINISH`` events from actual job runtimes.  After draining all events
at a timestamp it invokes the pluggable scheduling policy once — that is
one *scheduling instance* in the paper's terminology.

The policy interacts with the engine through a :class:`SchedulingView`:
it inspects the queue and cluster state, then calls
:meth:`SchedulingView.start` / :meth:`SchedulingView.reserve` to take
actions.  Effects apply immediately, so a policy that starts jobs one at
a time (as DRAS does — one job selection per network invocation)
observes the exact intermediate state before each selection.

Execution-mode attribution follows section III-B:

* ``READY`` — started immediately by a level-1 selection;
* ``RESERVED`` — the job held the reservation at some point before it
  started;
* ``BACKFILLED`` — started while another job held the reservation.
"""

from __future__ import annotations

import enum
import time
from time import perf_counter as _perf_counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Protocol, Sequence

import numpy as np

from repro.check import sanitize as _san
from repro.obs import live as _live
from repro.obs import profile as _profile
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry
from repro.sim.backfill import BackfillPlanner, Reservation
from repro.sim.cluster import Cluster
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.faults import FaultConfig, FaultInjector, ResilienceMetrics
from repro.sim.job import ExecMode, Job, JobState
from repro.sim.queue import WaitQueue


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress."""


class ActionKind(enum.Enum):
    """What a recorded scheduling action did: start or reserve a job."""

    START = "start"
    RESERVE = "reserve"


@dataclass(frozen=True, slots=True)
class Action:
    """A record of one scheduling action (kept for observers/analysis)."""

    kind: ActionKind
    job_id: int
    time: float
    mode: ExecMode | None = None


class Observer(Protocol):
    """Callbacks fired by the engine.  All methods are optional."""

    def on_start(self, job: Job, now: float) -> None: ...

    def on_finish(self, job: Job, now: float) -> None: ...

    def on_kill(self, job: Job, now: float) -> None: ...

    def on_instance(self, view: "SchedulingView", started: Sequence[Job]) -> None: ...


class SchedulingView:
    """The policy-facing interface of one scheduling instance."""

    __slots__ = ("_engine", "_started", "_reservation", "_reserved_job")

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine
        self._started: list[Job] = []
        self._reservation: Reservation | None = None
        #: job object currently holding the reservation, if any
        self._reserved_job: Job | None = None

    # -- observations ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._engine.now

    @property
    def cluster(self) -> Cluster:
        """The simulated machine (read access for state encoding)."""
        return self._engine.cluster

    @property
    def free_nodes(self) -> int:
        """Nodes free right now."""
        return self._engine.cluster.available_nodes

    @property
    def num_nodes(self) -> int:
        """Total system size."""
        return self._engine.cluster.num_nodes

    def waiting(self) -> list[Job]:
        """Eligible jobs in arrival order."""
        return self._engine.queue.waiting

    def window(self, size: int) -> list[Job]:
        """The ``size`` oldest eligible jobs."""
        return self._engine.queue.window(size)

    @property
    def reservation(self) -> Reservation | None:
        """The reservation made in this instance (at most one)."""
        return self._reservation

    @property
    def reserved_job(self) -> Job | None:
        """The job holding this instance's reservation, if any."""
        return self._reserved_job

    @property
    def started(self) -> list[Job]:
        """Jobs started so far during this instance."""
        return list(self._started)

    def backfill_candidates(self, pool: list[Job] | None = None) -> list[Job]:
        """Waiting jobs that may legally backfill the active reservation."""
        if self._reservation is None:
            raise SimulationError("backfill_candidates requires a reservation")
        jobs = self.waiting() if pool is None else pool
        return self._engine.planner.candidates(jobs, self._reservation, self.now)

    def backfill_first(self, pool: list[Job] | None = None) -> Job | None:
        """The first legal backfill candidate, or ``None``.

        Equivalent to ``backfill_candidates(pool)[0]`` (with the empty
        case mapped to ``None``) but stops scanning at the first hit —
        the fast path for first-fit policies like FCFS/EASY.
        """
        if self._reservation is None:
            raise SimulationError("backfill_first requires a reservation")
        # the live list is safe here: first_candidate only scans, and
        # the scan completes before the caller can start anything
        jobs = self._engine.queue.peek_waiting() if pool is None else pool
        return self._engine.planner.first_candidate(
            jobs, self._reservation, self.now)

    # -- actions ----------------------------------------------------------------
    def start(self, job: Job, mode: ExecMode | None = None) -> Job:
        """Start ``job`` now.

        ``mode`` defaults to automatic attribution: ``RESERVED`` if the
        job ever held a reservation, ``BACKFILLED`` if another job holds
        the reservation right now, otherwise ``READY``.
        """
        if job.state is not JobState.WAITING:
            raise SimulationError(f"job {job.job_id} is not waiting")
        if job.size > self.free_nodes:
            raise SimulationError(
                f"job {job.job_id} (size {job.size}) does not fit in "
                f"{self.free_nodes} free nodes"
            )
        if self._reservation is not None and job.job_id != self._reservation.job_id:
            if not self._reservation.allows(job, self.now, self.free_nodes):
                raise SimulationError(
                    f"job {job.job_id} would delay the reservation for "
                    f"job {self._reservation.job_id}"
                )
        if mode is None:
            if job.ever_reserved:
                mode = ExecMode.RESERVED
            elif self._reservation is not None:
                mode = ExecMode.BACKFILLED
            else:
                mode = ExecMode.READY
        self._engine._start_job(job, mode)
        self._started.append(job)
        if self._reserved_job is job:
            self._reservation = None
            self._reserved_job = None
        return job

    def reserve(self, job: Job) -> Reservation:
        """Reserve resources for a blocked job (one reservation at most)."""
        if self._reservation is not None:
            raise SimulationError("a reservation already exists in this instance")
        if job.state is not JobState.WAITING:
            raise SimulationError(f"job {job.job_id} is not waiting")
        if job.size <= self.free_nodes:
            raise SimulationError(
                f"job {job.job_id} fits right now; start it instead of reserving"
            )
        reservation = self._engine.planner.reserve(job, self.now)
        if self._engine.sanitize_active:
            _san.check_reservation(job, reservation, self.now,
                                   self._engine._running)
        job.ever_reserved = True
        self._reservation = reservation
        self._reserved_job = job
        if self._engine._record_actions:
            self._engine._actions.append(
                Action(ActionKind.RESERVE, job.job_id, self.now))
        self._engine._m_reservations.value += 1
        if self._engine._run_tracer is not None:
            self._engine._run_tracer.event(
                "engine.backfill_reserve", t=self.now, job=job.job_id,
                size=job.size, shadow_time=reservation.shadow_time,
                extra_nodes=reservation.extra_nodes,
            )
        return reservation


class Scheduler(Protocol):
    """The pluggable policy interface.

    A scheduler is invoked once per scheduling instance and takes its
    actions by calling methods on the view.  Implementations live in
    :mod:`repro.schedulers` (heuristics) and :mod:`repro.core` (DRAS).
    """

    name: str

    def schedule(self, view: SchedulingView) -> None: ...


@dataclass(slots=True)
class SimulationResult:
    """Outcome of one simulation run."""

    jobs: list[Job]
    makespan: float
    first_submit: float
    num_instances: int
    num_nodes: int
    actions: list[Action] = field(default_factory=list)
    #: fault-impact summary; ``None`` when no fault model was active
    resilience: ResilienceMetrics | None = None

    @property
    def finished_jobs(self) -> list[Job]:
        """The subset of jobs that ran to completion."""
        return [j for j in self.jobs if j.state is JobState.FINISHED]

    @property
    def elapsed(self) -> float:
        """Wall-clock span of the run (first submission to last finish)."""
        return max(0.0, self.makespan - self.first_submit)


class Engine:
    """Event-driven scheduling simulator.

    Parameters
    ----------
    cluster:
        The node pool.  It is reset to all-idle when the run starts
        (each training episode starts from the initial state, §III-C).
    scheduler:
        The policy invoked at every scheduling instance.
    jobs:
        The jobset to replay.  Jobs must be in the ``PENDING`` state.
    observers:
        Optional metric recorders / reward meters.
    max_time:
        Optional simulation-time horizon; events beyond it are dropped
        and still-running jobs are left unfinished in the result.
    record_actions:
        Keep a full action log in the result (off by default to bound
        memory on long runs).
    sanitize:
        Activate the runtime invariant checks of
        :mod:`repro.check.sanitize` for this engine and its cluster.
        ``None`` (the default) follows the ``REPRO_SANITIZE`` env var.
    trace:
        Structured-event tracing (:mod:`repro.obs.trace`).  Pass a
        :class:`~repro.obs.trace.Tracer`, or a path to create one.
        ``None`` (the default) follows the process-global tracer
        (``REPRO_TRACE=path`` env var).  Tracing is observe-only: a
        traced run is bit-identical to an untraced one.
    profile:
        Hierarchical wall-time profiling (:mod:`repro.obs.profile`).
        Pass a :class:`~repro.obs.profile.Profiler`; ``None`` (the
        default) follows the process-global profiler
        (``REPRO_PROFILE=path`` env var).  Profiling is observe-only
        and bit-identical in simulated time, like tracing.
    live:
        In-flight snapshot publishing (:mod:`repro.obs.live`).  Pass a
        :class:`~repro.obs.live.LiveBus`; ``None`` (the default)
        follows the process-global bus (``REPRO_LIVE`` env var).  The
        engine publishes a ``kind="sim"`` snapshot every
        ``live_every`` processed events plus a final one at
        completion.  Publishing is observe-only: a live-enabled run is
        bit-identical to a dark one.
    live_every:
        Event-count publish cadence for ``live`` (default
        :data:`~repro.obs.live.LIVE_SIM_EVERY`).  A count — never a
        wall-clock timer — so the set of published snapshots is a pure
        function of the run.
    faults:
        Optional :class:`~repro.sim.faults.FaultConfig` activating the
        seeded fault model (node failures/repairs, job kills, requeue).
        The result then carries a
        :class:`~repro.sim.faults.ResilienceMetrics` summary.
    max_events:
        Runaway guard: raise :class:`SimulationError` (with queue/clock
        diagnostics) after processing this many events.  ``None``
        disables the cap.
    max_wall_s:
        Runaway guard: raise :class:`SimulationError` once the run has
        consumed this much wall-clock time.  ``None`` disables it.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        jobs: Iterable[Job],
        observers: Sequence[Observer] = (),
        max_time: float | None = None,
        record_actions: bool = False,
        sanitize: bool | None = None,
        trace: "_trace.Tracer | str | Path | None" = None,
        profile: "_profile.Profiler | None" = None,
        live: "_live.LiveBus | None" = None,
        live_every: int = _live.LIVE_SIM_EVERY,
        faults: FaultConfig | None = None,
        max_events: int | None = None,
        max_wall_s: float | None = None,
    ) -> None:
        self.cluster = cluster
        self._sanitize_flag = sanitize
        if sanitize is not None:
            # an explicit engine flag governs its cluster too
            cluster._sanitize = sanitize
        if isinstance(trace, (str, Path)):
            trace = _trace.Tracer(trace)
        self._trace_flag = trace
        self._profile_flag = profile
        self._live_flag = live
        if live_every <= 0:
            raise ValueError(f"live_every must be positive, got {live_every}")
        self.live_every = live_every
        self.scheduler = scheduler
        self.queue = WaitQueue()
        self.planner = BackfillPlanner(cluster)
        self.events = EventQueue()
        self.observers = list(observers)
        self.max_time = max_time
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        if max_wall_s is not None and max_wall_s <= 0:
            raise ValueError(f"max_wall_s must be positive, got {max_wall_s}")
        self.max_events = max_events
        self.max_wall_s = max_wall_s
        self.fault_config = faults
        self.injector: FaultInjector | None = None
        if faults is not None and faults.active:
            self.injector = FaultInjector(faults)
        self.now = 0.0
        self.num_instances = 0
        self._jobs: dict[int, Job] = {}
        self._running: dict[int, Job] = {}
        #: live FINISH event per running job, for fault cancellation
        self._finish_events: dict[int, Event] = {}
        #: jobs not yet FINISHED or FAILED; run loop termination under
        #: recurring fault events (which never drain the event queue)
        self._jobs_remaining = 0
        self._record_actions = record_actions
        self._actions: list[Action] = []
        #: always-on run statistics (cheap int/float updates only)
        self.metrics = MetricsRegistry()
        self._m_submits = self.metrics.counter("engine.events_submit")
        self._m_finishes = self.metrics.counter("engine.events_finish")
        self._m_instances = self.metrics.counter("engine.instances")
        self._m_starts = self.metrics.counter("engine.jobs_started")
        self._m_reservations = self.metrics.counter("engine.reservations")
        self._m_node_fails = self.metrics.counter("engine.events_node_fail")
        self._m_node_repairs = self.metrics.counter("engine.events_node_repair")
        self._m_kills = self.metrics.counter("engine.jobs_killed")
        self._m_queue_depth = self.metrics.gauge("engine.queue_depth")
        self._m_schedule = self.metrics.timer("engine.schedule_s")
        #: tracer resolved at the top of :meth:`run` (None when off)
        self._run_tracer: "_trace.Tracer | None" = None
        #: profiler resolved at the top of :meth:`run` (None when off)
        self._run_prof: "_profile.Profiler | None" = None
        #: sanitize decision pinned for the duration of :meth:`run`
        #: (None outside a run: fall through to flag/env resolution)
        self._run_sanitize: bool | None = None

        for job in jobs:
            if job.state is not JobState.PENDING:
                raise ValueError(
                    f"job {job.job_id} must be PENDING (got {job.state}); "
                    "use Job.copy_fresh() to reuse a jobset"
                )
            if job.size > cluster.num_nodes:
                raise ValueError(
                    f"job {job.job_id} (size {job.size}) can never fit on a "
                    f"{cluster.num_nodes}-node cluster"
                )
            if job.job_id in self._jobs:
                raise ValueError(f"duplicate job id {job.job_id}")
            self._jobs[job.job_id] = job

    @property
    def sanitize_active(self) -> bool:
        """Whether runtime invariant checks run for this engine."""
        if self._run_sanitize is not None:
            return self._run_sanitize
        if self._sanitize_flag is not None:
            return self._sanitize_flag
        return _san.sanitizer_enabled()

    @property
    def tracer(self) -> "_trace.Tracer | None":
        """The tracer this engine writes to (explicit, else global)."""
        if self._trace_flag is not None:
            return self._trace_flag
        return _trace.global_tracer()

    @property
    def profiler(self) -> "_profile.Profiler | None":
        """The profiler this engine records into (explicit, else global)."""
        if self._profile_flag is not None:
            return self._profile_flag
        return _profile.global_profiler()

    @property
    def live_bus(self) -> "_live.LiveBus | None":
        """The live bus this engine publishes to (explicit, else global)."""
        if self._live_flag is not None:
            return self._live_flag
        return _live.global_live_bus()

    def _publish_live(self, live: "_live.LiveBus", events_seen: int,
                      final: bool) -> None:
        """Publish one ``kind="sim"`` snapshot of the run's state."""
        cluster = self.cluster
        free = cluster.available_nodes
        fields: dict[str, Any] = {
            "t": self.now,
            "events": events_seen,
            "instances": self.num_instances,
            "queue_depth": len(self.queue),
            "running": len(self._running),
            "free_nodes": free,
            "num_nodes": cluster.num_nodes,
            "utilization": (cluster.num_nodes - free) / cluster.num_nodes,
            "done": len(self._jobs) - self._jobs_remaining,
            "total": len(self._jobs),
        }
        if self.injector is not None:
            counters = self.injector.counters
            fields["faults"] = counters.node_failures
            fields["requeues"] = counters.requeues
        if final:
            fields["final"] = True
        live.publish("sim", fields)

    # -- internal hooks used by the view ----------------------------------------
    def _start_job(self, job: Job, mode: ExecMode) -> None:
        if self.sanitize_active:
            _san.check_job_start(job, self.now, self._running)
        self.queue.remove(job)
        self.cluster.allocate(job, self.now)
        job.mark_started(self.now, mode)
        self._running[job.job_id] = job
        self._finish_events[job.job_id] = self.events.push(
            self.now + job.runtime, EventKind.FINISH, job.job_id
        )
        if self._record_actions:
            self._actions.append(Action(ActionKind.START, job.job_id,
                                        self.now, mode))
        self._m_starts.value += 1
        if self._run_tracer is not None:
            self._run_tracer.event(
                "engine.allocate", t=self.now, job=job.job_id,
                size=job.size, mode=mode.value,
            )
        for obs in self.observers:
            handler = getattr(obs, "on_start", None)
            if handler is not None:
                handler(job, self.now)

    def _finish_job(self, job: Job) -> None:
        self.cluster.release(job)
        job.mark_finished(self.now)
        del self._running[job.job_id]
        self._finish_events.pop(job.job_id, None)
        self._jobs_remaining -= 1
        self.queue.notify_finished(job)
        if self._run_tracer is not None:
            self._run_tracer.event(
                "engine.release", t=self.now, job=job.job_id, size=job.size,
            )
        for obs in self.observers:
            handler = getattr(obs, "on_finish", None)
            if handler is not None:
                handler(job, self.now)

    @property
    def running_jobs(self) -> dict[int, Job]:
        """Snapshot of currently running jobs, keyed by job id."""
        return dict(self._running)

    # -- fault handling ----------------------------------------------------------
    def _kill_job(self, job: Job, cause: str) -> None:
        """Abort a running job because of a fault; requeue or abandon it."""
        inj = self.injector
        assert inj is not None
        self.events.cancel(self._finish_events.pop(job.job_id))
        self.cluster.release_killed(job, self.now)
        del self._running[job.job_id]
        cfg = inj.config
        requeue = cfg.requeue != "abandon" and (
            cfg.max_requeues is None or job.times_killed < cfg.max_requeues
        )
        job.mark_killed(self.now, requeue=requeue)
        inj.counters.jobs_killed += 1
        self._m_kills.value += 1
        if requeue:
            self.queue.requeue(job, front=cfg.requeue == "requeue-front")
            inj.counters.requeues += 1
        else:
            inj.counters.abandons += 1
            self._jobs_remaining -= 1
            for doomed in self.queue.notify_failed(job):
                doomed.mark_abandoned()
                inj.counters.abandons += 1
                self._jobs_remaining -= 1
                if self._run_tracer is not None:
                    self._run_tracer.event(
                        "engine.job_abandon", t=self.now,
                        job=doomed.job_id, parent=job.job_id,
                    )
        if self._run_tracer is not None:
            self._run_tracer.event(
                "engine.job_kill", t=self.now, job=job.job_id,
                cause=cause, requeued=requeue,
                wasted=job.wasted_node_seconds,
            )
        for obs in self.observers:
            handler = getattr(obs, "on_kill", None)
            if handler is not None:
                handler(job, self.now)

    def _handle_node_fail(self) -> None:
        """One failure event: pick victims, evacuate, mark down, reschedule."""
        inj = self.injector
        assert inj is not None
        self._m_node_fails.value += 1
        n_nodes, repairs = inj.sample_failure()
        up = np.flatnonzero(~self.cluster.down_mask)
        victims = inj.choose_failed_nodes(up, n_nodes)
        killed = self.cluster.jobs_on(victims)
        for job_id in killed:
            self._kill_job(self._jobs[job_id], cause="node_fail")
        inj.counters.node_failures += 1
        n_victims = int(victims.size)
        if n_victims:
            # one vectorized down-transition for the whole blade; the
            # repair events keep per-victim push order (stable seq ids)
            up_ats = self.now + np.asarray(repairs[:n_victims], dtype=np.float64)
            self.cluster.fail_nodes(victims, self.now, up_ats)
            for node, up_at in zip(victims.tolist(), up_ats.tolist()):
                self.events.push(up_at, EventKind.NODE_REPAIR, node=node)
            inj.counters.nodes_failed += n_victims
        if self._run_tracer is not None:
            self._run_tracer.event(
                "engine.node_fail", t=self.now, nodes=victims.tolist(),
                killed=killed,
            )
        self.events.push(self.now + inj.next_failure_gap(), EventKind.NODE_FAIL)

    def _handle_node_repair(self, event: Event) -> None:
        """Bring one node back up at its scheduled repair time."""
        inj = self.injector
        assert inj is not None
        self.cluster.repair_nodes([event.node], self.now)
        inj.counters.node_repairs += 1
        self._m_node_repairs.value += 1
        if self._run_tracer is not None:
            self._run_tracer.event(
                "engine.node_repair", t=self.now, node=event.node,
            )

    def _handle_job_kill(self) -> None:
        """One job-kill fault: abort a uniformly-chosen running job."""
        inj = self.injector
        assert inj is not None
        running = sorted(self._running)
        if running:
            victim = inj.choose_victim(running)
            self._kill_job(self._jobs[victim], cause="job_kill")
        self.events.push(self.now + inj.next_kill_gap(), EventKind.JOB_KILL)

    # -- main loop -----------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Replay the jobset to completion and return the result."""
        self.cluster.reset()
        self.queue.clear()
        self.events.clear()
        self.now = 0.0
        self.num_instances = 0
        self._actions = []
        self._finish_events = {}
        self._jobs_remaining = len(self._jobs)

        first_submit = 0.0
        if self._jobs:
            first_submit = min(j.submit_time for j in self._jobs.values())
        for job in self._jobs.values():
            self.events.push(job.submit_time, EventKind.SUBMIT, job.job_id)

        inj = self.injector
        if inj is not None and self._jobs:
            inj.reset()
            if inj.config.mtbf > 0:
                self.events.push(first_submit + inj.next_failure_gap(),
                                 EventKind.NODE_FAIL)
            if inj.config.job_kill_mtbf > 0:
                self.events.push(first_submit + inj.next_kill_gap(),
                                 EventKind.JOB_KILL)

        hook = getattr(self.scheduler, "on_simulation_start", None)
        if hook is not None:
            hook(self)

        sanitize_active = self.sanitize_active
        # pin for the run: the per-start/per-reserve hooks consult the
        # property, and resolving the env var each time is measurable
        self._run_sanitize = sanitize_active
        tracer = self.tracer
        self._run_tracer = tracer
        prof = self.profiler
        self._run_prof = prof
        live = self.live_bus
        live_every = self.live_every
        live_pending = 0
        if live is not None:
            live.register_metrics("engine", self.metrics)
        prof_depth = prof.open_depth if prof is not None else 0
        # share (not duplicate) the per-instance instruments with the
        # scheduler's registry, so the hot loop records each sample once
        sched_metrics = getattr(self.scheduler, "metrics", None)
        if isinstance(sched_metrics, MetricsRegistry):
            sched_metrics.alias("schedule_s", self._m_schedule)
            sched_metrics.alias("instances", self._m_instances)
        # loop-invariant reads hoisted out of the event loop (each is
        # consulted once or more per batch)
        events = self.events
        max_time = self.max_time
        max_events = self.max_events
        max_wall_s = self.max_wall_s
        cluster = self.cluster
        # pin the cluster's env-var sanitize decision for the run: it is
        # consulted on every allocate/release, and resolving the env var
        # each time is measurable; restored in the finally below
        pin_cluster_sanitize = cluster._sanitize is None
        if pin_cluster_sanitize:
            cluster._sanitize = sanitize_active
        events_seen = 0
        wall_start = _perf_counter() if max_wall_s is not None else 0.0
        try:
            if prof is not None:
                prof.push("engine.run")
            while events and self._jobs_remaining > 0:
                if max_time is not None \
                        and events.peek().time > max_time:
                    break
                batch = events.pop_simultaneous()
                events_seen += len(batch)
                if max_events is not None and events_seen > max_events:
                    raise SimulationError(self._runaway_diagnostics(
                        f"processed {events_seen} events "
                        f"(max_events={max_events})", batch[0].time,
                    ))
                if max_wall_s is not None \
                        and _perf_counter() - wall_start > max_wall_s:
                    raise SimulationError(self._runaway_diagnostics(
                        f"exceeded the {max_wall_s}s wall-clock "
                        f"deadline after {events_seen} events", batch[0].time,
                    ))
                if sanitize_active:
                    _san.check_monotonic_time(self.now, batch[0].time)
                self.now = batch[0].time
                if prof is not None:
                    prof.push("engine.instance")
                if tracer is not None:
                    span = tracer.begin("engine.instance", t=self.now,
                                        batch=len(batch))
                for event in batch:
                    kind = event.kind
                    if kind is EventKind.FINISH:
                        self._m_finishes.value += 1
                        self._finish_job(self._jobs[event.job_id])
                    elif kind is EventKind.SUBMIT:
                        self._m_submits.value += 1
                        job = self._jobs[event.job_id]
                        if not self.queue.submit(job):
                            # a dependency already FAILED: the job can
                            # never run
                            job.mark_abandoned()
                            self._jobs_remaining -= 1
                            if self.injector is not None:
                                self.injector.counters.abandons += 1
                            if tracer is not None:
                                tracer.event("engine.job_abandon", t=self.now,
                                             job=job.job_id, parent=-1)
                    elif kind is EventKind.NODE_REPAIR:
                        self._handle_node_repair(event)
                    elif kind is EventKind.NODE_FAIL:
                        self._handle_node_fail()
                    else:  # EventKind.JOB_KILL
                        self._handle_job_kill()
                self._run_instance()
                if tracer is not None:
                    tracer.end(span)
                if prof is not None:
                    prof.pop()
                if live is not None:
                    # event-count cadence (never a wall-clock timer): the
                    # snapshot sequence is a pure function of the run
                    live_pending += len(batch)
                    if live_pending >= live_every:
                        live_pending = 0
                        self._publish_live(live, events_seen, final=False)

            if live is not None:
                self._publish_live(live, events_seen, final=True)

            if len(self.queue) > 0 and not self._running:
                stuck = [j.job_id for j in self.queue.waiting]
                raise SimulationError(
                    f"simulation stalled with waiting jobs {stuck[:5]} and an "
                    "idle cluster; the policy failed to start any runnable job"
                )
        finally:
            # durability: never lose the buffered trace tail, and never
            # leak open profile scopes, even when the policy raises
            if pin_cluster_sanitize:
                cluster._sanitize = None
            if prof is not None:
                prof.pop_to(prof_depth)
            if tracer is not None:
                tracer.flush()
            self._run_tracer = None
            self._run_prof = None
            self._run_sanitize = None

        hook = getattr(self.scheduler, "on_simulation_end", None)
        if hook is not None:
            hook(self)

        resilience = None
        if self.injector is not None:
            resilience = self._summarize_resilience(first_submit)

        return SimulationResult(
            jobs=list(self._jobs.values()),
            makespan=self.now,
            first_submit=first_submit,
            num_instances=self.num_instances,
            num_nodes=self.cluster.num_nodes,
            actions=self._actions,
            resilience=resilience,
        )

    def _runaway_diagnostics(self, what: str, event_time: float) -> str:
        """Build the runaway-guard error message with loop diagnostics."""
        return (
            f"runaway simulation: {what}; clock at t={event_time}, "
            f"{len(self.queue)} waiting / {self.queue.total_pending} pending "
            f"jobs, {len(self._running)} running, {self._jobs_remaining} "
            f"jobs unfinished, {len(self.events)} events still queued"
        )

    def _summarize_resilience(self, first_submit: float) -> ResilienceMetrics:
        """Fold the fault counters and cluster accounting into a summary."""
        assert self.injector is not None
        c = self.injector.counters
        elapsed = max(0.0, self.now - first_submit)
        lost = self.cluster.lost_node_seconds(until=self.now)
        capacity = self.cluster.num_nodes * elapsed - lost
        used = self.cluster.used_node_seconds()
        return ResilienceMetrics(
            node_failures=c.node_failures,
            nodes_failed=c.nodes_failed,
            node_repairs=c.node_repairs,
            jobs_killed=c.jobs_killed,
            requeues=c.requeues,
            abandoned=c.abandons,
            lost_node_seconds=lost,
            wasted_node_seconds=self.cluster.wasted_node_seconds,
            degraded_utilization=used / capacity if capacity > 0 else 0.0,
        )

    def _run_instance(self) -> None:
        """Invoke the policy once (one scheduling instance)."""
        self.num_instances += 1
        self._m_instances.value += 1
        # instrument updates are inlined (no method calls): this runs
        # once per scheduling instance and dominates metric overhead
        depth = len(self.queue)
        gauge = self._m_queue_depth
        gauge.value = depth
        if depth < gauge.min:
            gauge.min = depth
        if depth > gauge.max:
            gauge.max = depth
        gauge.samples += 1
        view = SchedulingView(self)
        timer = self._m_schedule
        prof = self._run_prof
        if prof is not None:
            prof.push("engine.schedule")
        t0 = _perf_counter()
        self.scheduler.schedule(view)
        sample = _perf_counter() - t0
        if prof is not None:
            prof.pop()
        # one method call per *instance* (not per event): cheap enough,
        # and it keeps the EMA + histogram update logic in one place
        timer.observe(sample)
        for obs in self.observers:
            handler = getattr(obs, "on_instance", None)
            if handler is not None:
                handler(view, view.started)


def run_simulation(
    num_nodes: int,
    scheduler: Scheduler,
    jobs: Iterable[Job],
    observers: Sequence[Observer] = (),
    max_time: float | None = None,
    record_actions: bool = False,
    sanitize: bool | None = None,
    trace: "_trace.Tracer | str | Path | None" = None,
    profile: "_profile.Profiler | None" = None,
    live: "_live.LiveBus | None" = None,
    live_every: int = _live.LIVE_SIM_EVERY,
    faults: FaultConfig | None = None,
    max_events: int | None = None,
    max_wall_s: float | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a cluster + engine and run it."""
    cluster = Cluster(num_nodes, sanitize=sanitize)
    engine = Engine(
        cluster,
        scheduler,
        jobs,
        observers=observers,
        max_time=max_time,
        record_actions=record_actions,
        sanitize=sanitize,
        trace=trace,
        profile=profile,
        live=live,
        live_every=live_every,
        faults=faults,
        max_events=max_events,
        max_wall_s=max_wall_s,
    )
    return engine.run()
