"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper at the
``default`` scale (DESIGN.md §5) and writes the rendered report to
``benchmarks/reports/`` so the regenerated rows/series can be inspected
after a run.  Expensive intermediates (trained agents, the seven-method
evaluation) are cached per process by :mod:`repro.experiments.common`,
mirroring how the paper derives Fig 6, Fig 7, Fig 8 and Table IV from
the same evaluation runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: scale used by all benchmarks
SCALE = "default"

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


def save_report(report_dir: Path, name: str, text: str) -> None:
    (report_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
