#!/usr/bin/env python
"""Quickstart: schedule a synthetic capability workload with DRAS.

This is the 2-minute tour of the public API:

1. build a Theta-like workload model (scaled to 128 nodes so it runs in
   seconds);
2. train a DRAS-PG agent for a few episodes with the three-phase
   curriculum of the paper (§III-C);
3. evaluate it against FCFS + EASY backfilling on an unseen test trace;
4. print the standard scheduling metrics.

Run::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    DRASConfig,
    DRASPG,
    FCFSEasy,
    RunMetrics,
    ThetaModel,
    run_simulation,
    three_phase_curriculum,
)
from repro.rl import Trainer


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. A Theta-like capability system, shrunk to 128 nodes.
    model = ThetaModel.scaled(128)
    train_trace = model.generate(1500, rng)
    validation_trace = model.generate(300, rng)
    test_trace = model.generate(600, rng)

    # 2. A DRAS-PG agent with a proportionally scaled network.
    config = DRASConfig.scaled(128, objective="capability", window=10)
    agent = DRASPG(config)
    print(f"DRAS-PG network: {config.pg_dims} "
          f"({config.pg_dims.param_count:,} trainable parameters)")

    # Three-phase curriculum: sampled -> real -> synthetic jobsets.
    phases = three_phase_curriculum(
        model, train_trace, rng,
        n_sampled=3, n_real=3, n_synthetic=4, jobs_per_set=300,
    )
    trainer = Trainer(agent, model.num_nodes, validation_jobs=validation_trace)
    history = trainer.train(
        [(p.name, jobset) for p in phases for jobset in p.jobsets]
    )
    print("\nvalidation reward per episode:")
    for ep in history.episodes:
        print(f"  episode {ep.episode:2d} [{ep.phase:9s}] "
              f"validation reward = {ep.validation_reward:8.2f}")

    # 3. Head-to-head on an unseen test trace.  The deployed agent keeps
    #    learning online, as in the paper's §V-D.
    agent.eval(online_learning=True)
    print("\ntest-trace comparison (128-node Theta-like system):")
    last_result = None
    for scheduler in (FCFSEasy(), agent):
        result = run_simulation(
            model.num_nodes, scheduler, [j.copy_fresh() for j in test_trace]
        )
        m = RunMetrics.from_result(result)
        print(f"  {scheduler.name:8s} avg wait {m.avg_wait / 3600:6.2f} h   "
              f"max wait {m.max_wait / 3600:6.1f} h   "
              f"slowdown {m.avg_slowdown:6.2f}   "
              f"utilization {m.utilization:.3f}")
        last_result = result

    # 4. Peek at the DRAS schedule itself (lower-case = backfilled).
    from repro.analysis import render_gantt

    print()
    print(render_gantt(last_result, width=72, max_rows=12))


if __name__ == "__main__":
    main()
