"""DRAS-DQL: the deep Q-learning variant (paper §III-B, Eq. 4).

The network processes *one job at a time*: input ``[2 + N, 2]`` (one
job block plus all node rows), output a single neuron — the expected
Q-value of scheduling that job now.  The same network scores every job
in the window; the agent normally takes the job with the highest
Q-value, but with probability ε it explores a random job instead.
ε starts at 1.0 and decays by 0.995 per parameter update (§III-B).

Learning minimizes the TD error between the *old value*
:math:`Q(s_k, a_k)` and the *new value*
:math:`r_k + \\max_a Q(s_{k+1}, a)`, where the maximum runs over the
candidate jobs of the next selection.  The final selection of an
episode bootstraps with 0 (terminal).  Updates happen every 10
scheduling instances with Adam, after which the memory is cleared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.agent import HierarchicalAgent
from repro.core.config import DRASConfig
from repro.core.rewards import RewardFunction
from repro.nn.losses import mse_loss
from repro.nn.network import build_dras_network
from repro.nn.optim import Adam
from repro.sim.engine import SchedulingView
from repro.sim.job import Job


@dataclass(slots=True)
class _QTransition:
    x: np.ndarray                 #: the chosen job's network input
    reward: float | None = None
    next_max_q: float | None = None


class DRASDQL(HierarchicalAgent):
    """The hierarchical deep-Q-learning DRAS agent."""

    name = "DRAS-DQL"

    def __init__(self, config: DRASConfig, reward: RewardFunction | None = None) -> None:
        super().__init__(config, reward)
        dims = config.dql_dims
        self.network = build_dras_network(
            dims.rows, dims.hidden1, dims.hidden2, dims.outputs, rng=self.rng
        )
        self.optimizer = Adam(
            self.network.parameters(),
            lr=config.learning_rate,
            grad_clip=config.grad_clip,
        )
        self.epsilon = config.epsilon_start
        self._pending: list[_QTransition] = []
        self.losses: list[float] = []
        #: transitions stacked into the most recent TD update (the
        #: minibatch one backward + Adam step amortized over)
        self.last_update_batch = 0

    # -- Q evaluation --------------------------------------------------------
    def score_window(self, x: np.ndarray) -> np.ndarray:
        """Q-values for a batch of per-job observations.

        ``x`` is a ``[B, 2 + N, 2]`` observation matrix (one row per
        candidate job, e.g. from
        :meth:`~repro.core.state.StateEncoder.encode_jobs_batch`); one
        network forward scores all ``B`` candidates and returns the
        ``[B]`` Q-vector.  This is the single inference entry point —
        the whole window is scored per decision, and serving can stack
        candidates from many concurrent requests into one call.
        """
        if x.ndim != 3:
            raise ValueError(f"score_window expects [B, rows, 2], got {x.shape}")
        return self.network.forward(x)[:, 0]

    def q_values(self, window: list[Job], view: SchedulingView) -> tuple[np.ndarray, np.ndarray]:
        """Q-values of every job in the window: ``(batch_inputs, q)``."""
        batch = self.encoder.encode_jobs_batch(window, view.cluster, view.now)
        return batch, self.score_window(batch)

    # -- HierarchicalAgent interface -------------------------------------------
    def select(self, window: list[Job], view: SchedulingView, level: int) -> Job:
        """ε-greedy pick: best Q-value, or a random job with prob. ε."""
        batch, q = self.q_values(window, view)
        if self.learning:
            # Bootstrap the previous transition with max_a Q(s_{k+1}, a).
            if self._pending and self._pending[-1].next_max_q is None \
                    and self._pending[-1].reward is not None:
                self._pending[-1].next_max_q = float(q.max())
            explore = self.rng.random() < self.epsilon
            action = (
                int(self.rng.integers(len(window))) if explore else int(np.argmax(q))
            )
            self._pending.append(_QTransition(x=batch[action]))
        else:
            action = int(np.argmax(q))
        return window[action]

    def record_reward(self, reward: float) -> None:
        """Attach the post-action reward to the pending transition."""
        if not self._pending or self._pending[-1].reward is not None:
            raise RuntimeError("no pending transition awaiting a reward")
        self._pending[-1].reward = float(reward)

    def _has_observations(self) -> bool:
        return any(
            t.reward is not None and t.next_max_q is not None for t in self._pending
        )

    def update(self) -> None:
        """One TD/Adam step over the completed transitions.

        The completed transitions stack into one ``[K, rows, 2]``
        minibatch scored by a single batched forward; one backward and
        one Adam step consume the whole batch.  The most recent
        transition usually has no successor Q yet; it is held back for
        the next batch (or terminated at episode end).
        """
        ready = [
            t for t in self._pending
            if t.reward is not None and t.next_max_q is not None
        ]
        incomplete = [
            t for t in self._pending
            if t.reward is None or t.next_max_q is None
        ]
        self._pending = incomplete
        self.last_update_batch = len(ready)
        if not ready:
            return
        x = np.stack([t.x for t in ready])
        gamma = self.config.gamma
        targets = np.array(
            [t.reward + gamma * t.next_max_q for t in ready]
        ).reshape(-1, 1)
        self.network.zero_grad()
        q = self.network.forward(x)
        loss, grad = mse_loss(q, targets)
        self.network.backward(grad)
        self.optimizer.step()
        self.losses.append(loss)
        self.epsilon = max(
            self.config.epsilon_min, self.epsilon * self.config.epsilon_decay
        )

    def episode_end(self) -> None:
        """Terminate the trailing transition with a zero future value."""
        if self.learning:
            for t in self._pending:
                if t.reward is not None and t.next_max_q is None:
                    t.next_max_q = 0.0
            self._pending = [t for t in self._pending if t.reward is not None]
        super().episode_end()
        self._pending.clear()

    # -- persistence --------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Network parameters keyed by position-qualified names."""
        return self.network.state_dict()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore network parameters from :meth:`state_dict` output."""
        self.network.load_state_dict(state)
