"""Setup shim for environments without the ``wheel`` package.

The offline interpreter ships setuptools 65 but no ``wheel``, so PEP 660
editable installs fail; keeping a ``setup.py`` lets pip fall back to the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
