"""Structured JSONL event tracer for the simulator and NN stack.

One :class:`Tracer` writes one JSON object per line to a sink file.
Three record families exist:

* **spans** — ``begin``/``end`` record pairs with a span id (``sid``)
  and parent id (``pid``), forming a tree.  The engine opens one span
  per scheduling instance; the NN stack opens spans around forward,
  backward and optimizer steps.
* **events** — instantaneous points (job start, node release, a
  reservation) attributed to the enclosing span via ``pid``.
* **counters** — named numeric samples for ad-hoc time series.

Every record carries a ``wall`` field (``time.perf_counter()``, a
duration-only monotonic clock — never the host date) so span durations
can be recovered; simulator records additionally carry the engine clock
in a ``t`` field.

Serialization is a hot path (the ``engine-throughput-traced``
benchmark measures it): records whose values are plain scalars are
rendered by a specialized formatter that produces byte-identical
output to ``json.dumps`` (same separators, same float ``repr``, same
string escaping via a memo of ``json.dumps``-escaped fragments); any
record with a non-scalar value falls back to a shared
:class:`json.JSONEncoder`.  Either way the line is rendered *at emit
time* — field values are captured immediately, so callers may mutate
them afterwards — and buffered lines are written out in one batched
``write`` per :meth:`Tracer.flush`.

Activation mirrors the PR 1 sanitizer contract:

* globally, via the ``REPRO_TRACE`` environment variable naming the
  output path (read once per process; see :func:`global_tracer`), or
* per engine, via ``Engine(trace=...)`` with a path or a
  :class:`Tracer`.

When no tracer is active the instrumented hot paths cost a single
``None`` check, and a traced run is bit-identical to an untraced one:
the tracer only appends to its sink and never reads or mutates
simulation, RNG or network state.

Reading a trace back::

    records = read_trace("trace.jsonl")
    roots = build_span_tree(records)

"""

from __future__ import annotations

import atexit
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO, Iterable

#: schema tag stamped into the first record of every trace file
TRACE_SCHEMA = "repro.trace/v1"


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars and other non-JSON types to plain Python."""
    for attr in ("item",):  # numpy scalars expose .item()
        fn = getattr(value, attr, None)
        if callable(fn):
            return fn()
    return str(value)


# -- fast record serialization -------------------------------------------------
#
# One shared fallback encoder (building a JSONEncoder per record, as
# ``json.dumps(..., default=...)`` does, is measurable at trace rates)
# plus a scalar fast path that mirrors its output byte for byte.

_FALLBACK_ENCODE = json.JSONEncoder(default=_json_default).encode

#: memo of ``json.dumps``-escaped string fragments (names, modes, field
#: keys — low-cardinality by construction); capped so pathological
#: callers cannot grow it without bound
_STR_MEMO: dict[str, str] = {}
_STR_MEMO_MAX = 4096

_INF = float("inf")


def _str_fragment(value: str) -> str:
    """The ``json.dumps`` rendering of one string, memoized."""
    fragment = _STR_MEMO.get(value)
    if fragment is None:
        fragment = json.dumps(value)
        if len(_STR_MEMO) < _STR_MEMO_MAX:
            _STR_MEMO[value] = fragment
    return fragment


def _value_fragment(value: Any) -> str | None:
    """Render one scalar exactly as ``json.dumps`` would, else ``None``.

    Exact types only (subclasses fall back: ``json`` may treat them
    differently); non-finite floats fall back so they keep the
    ``NaN``/``Infinity`` spellings of the stock encoder.
    """
    cls = value.__class__
    if cls is str:
        return _str_fragment(value)
    if cls is int:
        return repr(value)
    if cls is float:
        return repr(value) if -_INF < value < _INF else None
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    return None


def _append_fields(parts: list[str], fields: dict[str, Any]) -> bool:
    """Append rendered ``"key": value`` fragments; False on a miss.

    A miss (any non-scalar value) leaves ``parts`` partially extended —
    the caller abandons it and re-renders the whole record through the
    fallback encoder, so no partial output can ever escape.
    """
    for key, value in fields.items():
        fragment = _value_fragment(value)
        if fragment is None:
            return False
        parts.append(_str_fragment(key) + ": " + fragment)
    return True


#: fixed record fields; a caller field colliding with one of these must
#: take the dict/fallback path to keep ``dict.update`` override semantics
_BASE_KEYS = frozenset({"type", "name", "sid", "pid", "wall", "value"})


def _render_record(record: dict[str, Any]) -> str:
    """Serialize a whole record dict (fast path, fallback on misses)."""
    parts: list[str] = []
    if _append_fields(parts, record):
        return "{" + ", ".join(parts) + "}"
    return _FALLBACK_ENCODE(record)


# Record *shapes* — (record type, name, field-key tuple) — are
# low-cardinality: one per instrumentation call site.  Each shape's
# skeleton is compiled once into a ``%``-format template ("%d" span id,
# "%s" pid slot, "%r" wall, one "%s" per field value), so the per-record
# work is a cache hit, one scalar fragment per field and a single
# C-level format — the name/key escaping and base-key collision check
# happen once per shape instead of once per record.  ``False`` marks a
# shape that must always take the fallback encoder (non-string name or
# a field colliding with a base key).

_TEMPLATES: dict[tuple, "str | bool"] = {}
_TEMPLATES_MAX = 4096


def _shape_template(rtype: str, name: str, fields: dict[str, Any],
                    head: str) -> "str | bool":
    """The cached template for this record shape, compiling on a miss.

    ``head`` carries the fixed slots between ``name`` and the fields
    (pid/wall, plus the ``sid``/``value`` slots where the record type
    has them).  Returns ``False`` for a shape that must always take the
    fallback encoder (a field colliding with a base key).
    """
    key = (rtype, name, *fields)
    template = _TEMPLATES.get(key)
    if template is None:
        if _BASE_KEYS.isdisjoint(fields):
            parts = ['"type": "' + rtype + '"',
                     '"name": ' + _str_fragment(name).replace("%", "%%"),
                     head]
            for field_key in fields:
                parts.append(_str_fragment(field_key).replace("%", "%%")
                             + ": %s")
            template = "{" + ", ".join(parts) + "}"
        else:
            template = False
        if len(_TEMPLATES) < _TEMPLATES_MAX:
            _TEMPLATES[key] = template
    return template


class Tracer:
    """Appends structured records to a JSONL sink.

    Parameters
    ----------
    sink:
        Path (opened for writing, truncating) or an open text file-like
        object (not closed by :meth:`close`).
    buffer_lines:
        Records are buffered and flushed to the sink every this many
        lines (and on :meth:`close`/:meth:`flush`), keeping the per-record
        cost to rendering one string plus a list append.
    """

    __slots__ = ("_fh", "_owns_fh", "_buffer", "_buffer_lines",
                 "_next_sid", "_stack", "_closed")

    def __init__(self, sink: str | Path | IO[str], buffer_lines: int = 256) -> None:
        if buffer_lines <= 0:
            raise ValueError("buffer_lines must be positive")
        if isinstance(sink, (str, Path)):
            self._fh: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = sink
            self._owns_fh = False
        self._buffer: list[str] = []
        self._buffer_lines = buffer_lines
        self._next_sid = 1
        self._stack: list[int] = []
        self._closed = False
        self._write({"type": "meta", "schema": TRACE_SCHEMA})

    # -- record emission ---------------------------------------------------
    def _write(self, record: dict[str, Any]) -> None:
        self._buffer.append(_render_record(record))
        if len(self._buffer) >= self._buffer_lines:
            self.flush()

    def begin(self, name: str, **fields: Any) -> int:
        """Open a span; returns its id.  Close it with :meth:`end`."""
        sid = self._next_sid
        self._next_sid += 1
        stack = self._stack
        pid = stack[-1] if stack else None
        wall = time.perf_counter()
        line: str | None = None
        if name.__class__ is str:
            template = _shape_template(
                "begin", name, fields, '"sid": %d, "pid": %s, "wall": %r')
            if template is not False:
                values: list[Any] = [sid, "null" if pid is None else pid,
                                     wall]
                complete = True
                for value in fields.values():
                    fragment = _value_fragment(value)
                    if fragment is None:
                        complete = False
                        break
                    values.append(fragment)
                if complete:
                    line = template % tuple(values)
        if line is None:
            record: dict[str, Any] = {
                "type": "begin", "name": name, "sid": sid,
                "pid": pid, "wall": wall,
            }
            record.update(fields)
            line = _FALLBACK_ENCODE(record)
        buffer = self._buffer
        buffer.append(line)
        if len(buffer) >= self._buffer_lines:
            self.flush()
        stack.append(sid)
        return sid

    def end(self, sid: int) -> None:
        """Close the span ``sid`` (must be the innermost open span)."""
        stack = self._stack
        if not stack or stack[-1] != sid:
            raise ValueError(
                f"span {sid} is not the innermost open span "
                f"(stack: {stack[-3:]})"
            )
        stack.pop()
        buffer = self._buffer
        buffer.append('{"type": "end", "sid": %d, "wall": %r}'
                      % (sid, time.perf_counter()))
        if len(buffer) >= self._buffer_lines:
            self.flush()

    def span(self, name: str, **fields: Any) -> "_SpanContext":
        """Context manager opening a span around a ``with`` block."""
        return _SpanContext(self, name, fields)

    def event(self, name: str, **fields: Any) -> None:
        """Record an instantaneous event inside the current span."""
        stack = self._stack
        pid = stack[-1] if stack else None
        wall = time.perf_counter()
        line: str | None = None
        if name.__class__ is str:
            template = _shape_template(
                "event", name, fields, '"pid": %s, "wall": %r')
            if template is not False:
                values: list[Any] = ["null" if pid is None else pid, wall]
                complete = True
                for value in fields.values():
                    fragment = _value_fragment(value)
                    if fragment is None:
                        complete = False
                        break
                    values.append(fragment)
                if complete:
                    line = template % tuple(values)
        if line is None:
            record: dict[str, Any] = {
                "type": "event", "name": name, "pid": pid, "wall": wall,
            }
            record.update(fields)
            line = _FALLBACK_ENCODE(record)
        buffer = self._buffer
        buffer.append(line)
        if len(buffer) >= self._buffer_lines:
            self.flush()

    def counter(self, name: str, value: float, **fields: Any) -> None:
        """Record a named numeric sample."""
        stack = self._stack
        pid = stack[-1] if stack else None
        wall = time.perf_counter()
        line: str | None = None
        value_fragment = _value_fragment(value)
        if value_fragment is not None and name.__class__ is str:
            template = _shape_template(
                "counter", name, fields,
                '"value": %s, "pid": %s, "wall": %r')
            if template is not False:
                values: list[Any] = [value_fragment,
                                     "null" if pid is None else pid, wall]
                complete = True
                for extra in fields.values():
                    fragment = _value_fragment(extra)
                    if fragment is None:
                        complete = False
                        break
                    values.append(fragment)
                if complete:
                    line = template % tuple(values)
        if line is None:
            record: dict[str, Any] = {
                "type": "counter", "name": name, "value": value,
                "pid": pid, "wall": wall,
            }
            record.update(fields)
            line = _FALLBACK_ENCODE(record)
        buffer = self._buffer
        buffer.append(line)
        if len(buffer) >= self._buffer_lines:
            self.flush()

    # -- lifecycle ----------------------------------------------------------
    def flush(self) -> None:
        """Write buffered records through to the sink.

        Safe to call on a closed tracer (a no-op), so unconditional
        flushes in ``finally`` blocks and at interpreter exit never
        raise on an already-closed sink.
        """
        if self._closed:
            return
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._fh.flush()

    def close(self) -> None:
        """Flush and (if this tracer opened the sink) close it."""
        if self._closed:
            return
        self.flush()
        if self._owns_fh:
            self._fh.close()
        self._closed = True

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close (flushing buffered records) — also when the body raised.

        Durability contract: a ``with Tracer(...)`` block never drops
        the buffered tail, whatever exception unwinds through it.
        """
        self.close()


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_fields", "_sid")

    def __init__(self, tracer: Tracer, name: str, fields: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._fields = fields
        self._sid = -1

    def __enter__(self) -> "_SpanContext":
        self._sid = self._tracer.begin(self._name, **self._fields)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.end(self._sid)


# -- global (environment-driven) tracer ---------------------------------------

_GLOBAL: Tracer | None = None
_GLOBAL_LOADED = False
_ATEXIT_REGISTERED = False


def _flush_global_tracer() -> None:
    """``atexit`` hook: persist whatever the global tracer buffered.

    Flushes (rather than closes) so late ``atexit`` callbacks that still
    emit records keep working; the interpreter closes the file handle.
    """
    if _GLOBAL is not None:
        _GLOBAL.flush()


def _register_atexit_flush() -> None:
    """Install the global-tracer ``atexit`` flush exactly once."""
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        _ATEXIT_REGISTERED = True
        atexit.register(_flush_global_tracer)


def global_tracer() -> "Tracer | None":
    """The process-wide tracer, or ``None`` when tracing is off.

    On first call the ``REPRO_TRACE`` environment variable is consulted:
    a non-empty value names the JSONL output path and activates tracing
    for every instrumented component in the process.  Subsequent calls
    return the cached result, so the disabled path costs one global
    lookup and a ``None`` check.

    The first activated tracer also registers an ``atexit`` flush, so a
    process that exits (or crashes out of) a traced run without calling
    :meth:`Tracer.close` still leaves a parseable trace on disk.
    """
    global _GLOBAL, _GLOBAL_LOADED
    if not _GLOBAL_LOADED:
        _GLOBAL_LOADED = True
        # sanctioned observability gate: selects whether a trace is
        # *written*; the traced run's behaviour is unchanged by REPRO_TRACE
        path = os.environ.get("REPRO_TRACE", "").strip()  # repro: noqa[ambient-env-read]
        if path:
            _GLOBAL = Tracer(path)
            _register_atexit_flush()
    return _GLOBAL


def set_global_tracer(tracer: "Tracer | None") -> "Tracer | None":
    """Install (or clear, with ``None``) the global tracer.

    Returns the previous tracer so tests can restore it.  Passing a
    tracer bypasses the ``REPRO_TRACE`` environment variable; passing
    ``None`` disables global tracing until the next explicit install
    (the environment variable is *not* re-read).
    """
    global _GLOBAL, _GLOBAL_LOADED
    previous = _GLOBAL if _GLOBAL_LOADED else None
    _GLOBAL = tracer
    _GLOBAL_LOADED = True
    if tracer is not None:
        _register_atexit_flush()
    return previous


# -- reading traces back -------------------------------------------------------

@dataclass
class Span:
    """One reconstructed span of a parsed trace.

    Attributes
    ----------
    name, sid, pid:
        Identity: span name, span id, parent span id (``None`` for roots).
    fields:
        Extra key/value pairs attached at ``begin`` time.
    wall_begin, wall_end:
        ``perf_counter`` readings; ``wall_end`` is ``None`` for spans the
        trace never closed (e.g. a crashed run).
    children, events, counters:
        Nested spans and the event/counter records attributed to this span.
    """

    name: str
    sid: int
    pid: int | None
    fields: dict[str, Any] = field(default_factory=dict)
    wall_begin: float = 0.0
    wall_end: float | None = None
    children: list["Span"] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    counters: list[dict[str, Any]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall-clock span duration in seconds (0.0 if never closed)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_begin

    def walk(self) -> "Iterable[Span]":
        """Yield this span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class TraceWarning(UserWarning):
    """A trace record was skipped during lenient (post-mortem) parsing."""


_META_KEYS = frozenset({"type", "name", "sid", "pid", "wall"})


def read_trace(path: str | Path, strict: bool = True) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into a list of record dicts.

    ``strict=True`` (the default) raises :class:`ValueError` on the
    first malformed line.  ``strict=False`` is the post-mortem mode:
    truncated or corrupt lines (a run killed mid-write) and non-object
    records are skipped with a :class:`TraceWarning` naming the line,
    so analysis still works on the surviving records.
    """
    records = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{line_no}: invalid trace line"
                    ) from exc
                warnings.warn(
                    f"{path}:{line_no}: skipping malformed trace line",
                    TraceWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(record, dict):
                if strict:
                    raise ValueError(
                        f"{path}:{line_no}: trace record is not an object"
                    )
                warnings.warn(
                    f"{path}:{line_no}: skipping non-object trace record",
                    TraceWarning,
                    stacklevel=2,
                )
                continue
            records.append(record)
    return records


def build_span_tree(records: Iterable[dict[str, Any]]) -> list[Span]:
    """Reconstruct the span forest of a parsed trace.

    Returns the root spans (those with no parent).  Events and counters
    are attached to their enclosing span; records emitted outside any
    span are dropped (they have no tree position).

    Post-mortem hardened: malformed records — a ``begin`` without a
    span id, an ``end`` for an unknown span, records that are not
    dicts — are skipped, so a tree can always be built from whatever a
    crashed run managed to write.
    """
    spans: dict[int, Span] = {}
    roots: list[Span] = []
    for record in records:
        if not isinstance(record, dict):
            continue
        rtype = record.get("type")
        if rtype == "begin":
            sid = record.get("sid")
            if not isinstance(sid, int):
                continue
            fields = {k: v for k, v in record.items() if k not in _META_KEYS}
            span = Span(
                name=str(record.get("name", "<unnamed>")),
                sid=sid,
                pid=record.get("pid"),
                fields=fields,
                wall_begin=record.get("wall", 0.0),
            )
            spans[span.sid] = span
            parent = spans.get(span.pid) if span.pid is not None else None
            if parent is not None:
                parent.children.append(span)
            else:
                roots.append(span)
        elif rtype == "end":
            sid = record.get("sid")
            span = spans.get(sid) if isinstance(sid, int) else None
            if span is not None:
                span.wall_end = record.get("wall")
        elif rtype in ("event", "counter"):
            pid = record.get("pid")
            span = spans.get(pid) if pid is not None else None
            if span is not None:
                if rtype == "event":
                    span.events.append(record)
                else:
                    span.counters.append(record)
    return roots
