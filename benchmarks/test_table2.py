"""Benchmark: regenerate Table II (workload summaries)."""

from conftest import SCALE, save_report

from repro.experiments import table2


def test_table2(benchmark, report_dir):
    summaries = benchmark.pedantic(
        lambda: table2.run(SCALE), rounds=1, iterations=1
    )
    text = table2.report(summaries)
    save_report(report_dir, "table2", text)

    theta, cori = summaries["theta"], summaries["cori"]
    # capability vs capacity profile: Cori sees far more, smaller jobs
    assert cori.num_jobs > theta.num_jobs
    assert cori.mean_size < theta.mean_size
    # runtime caps: Theta 1 day, Cori 7 days (paper Table II)
    assert theta.max_job_length_days <= 1.0 + 1e-9
    assert cori.max_job_length_days <= 7.0 + 1e-9
    # both systems are generated near-saturated, like the real machines
    assert theta.offered_load > 0.8
    assert cori.offered_load > 0.8
