"""RPR4xx — API-contract rules for schedulers, observers and spans.

The simulator dispatches to schedulers and observers dynamically
(``getattr(obs, "on_start", None)``), so a misspelt hook or a drifted
signature fails *silently*: the engine simply never calls it.  These
rules pin the three duck-typed contracts down statically:

* **RPR401** ``scheduler-override`` — every concrete subclass of
  :class:`repro.schedulers.base.BaseScheduler` implements (or inherits
  from an intermediate class) a ``schedule(self, view)`` with a
  compatible signature; extra parameters must carry defaults.
* **RPR402** ``lifecycle-hook`` — ``on_simulation_start`` /
  ``on_simulation_end`` overrides keep the ``(self, engine)`` shape the
  engine calls them with.
* **RPR403** ``observer-hook`` — any class defining ``on_start`` /
  ``on_finish`` / ``on_instance`` matches the
  :class:`repro.sim.engine.Observer` protocol exactly
  (``(self, job, now)`` / ``(self, view, started)``), since the engine
  invokes whatever attribute happens to exist.
* **RPR404** ``span-registry`` — every string-literal span/event name
  passed to ``.span(...)`` / ``.begin(...)`` / ``.event(...)`` is in
  :data:`SPAN_NAMES`, the documented registry (docs/observability.md);
  ad-hoc names fragment trace analysis tooling.

Like the RPR3xx rules, these are anchored to the real project layout
and yield nothing when the anchor classes are absent (scratch trees).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.project import (
    ModuleInfo,
    ProjectFinding,
    ProjectModel,
    ProjectRule,
    register_project,
)

BASE_SCHEDULER = "repro.schedulers.base.BaseScheduler"

#: observer hooks dispatched via ``getattr`` by the engine
OBSERVER_HOOKS: dict[str, tuple[str, ...]] = {
    "on_start": ("self", "job", "now"),
    "on_finish": ("self", "job", "now"),
    "on_kill": ("self", "job", "now"),
    "on_instance": ("self", "view", "started"),
}

#: scheduler lifecycle hooks called around every simulation run
LIFECYCLE_HOOKS: dict[str, tuple[str, ...]] = {
    "on_simulation_start": ("self", "engine"),
    "on_simulation_end": ("self", "engine"),
}

#: the documented span/event name registry (docs/observability.md);
#: RPR404 keeps call sites from inventing names outside it
SPAN_NAMES = frozenset({
    "engine.instance",
    "engine.allocate",
    "engine.release",
    "engine.backfill_reserve",
    "engine.node_fail",
    "engine.node_repair",
    "engine.job_kill",
    "engine.job_abandon",
    "nn.forward",
    "nn.backward",
    "nn.adam_step",
    "train.episode",
    "train.validate",
    "train.checkpoint",
})


def _positional_names(fn: ast.FunctionDef) -> tuple[list[str], int]:
    """Positional parameter names and how many of them are required."""
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args]
    return names, len(names) - len(args.defaults)


def signature_error(fn: ast.FunctionDef, expected: tuple[str, ...]) -> str | None:
    """Why ``fn`` is incompatible with ``expected`` (None when it fits).

    Compatible means: the leading positional parameters are exactly
    ``expected`` (same names, same order) and anything beyond them has a
    default, so the engine's positional call still binds.
    """
    names, n_required = _positional_names(fn)
    if names[: len(expected)] != list(expected):
        return (
            f"signature ({', '.join(names)}) is incompatible with the "
            f"engine's call ({', '.join(expected)})"
        )
    if n_required > len(expected):
        extra = names[len(expected):n_required]
        return (
            f"extra required parameter(s) {', '.join(extra)} break the "
            f"engine's ({', '.join(expected)}) call"
        )
    return None


def _find_method(
    project: ProjectModel, qualname: str, method: str,
    stop_at: str | None = None, _depth: int = 0,
) -> tuple[ModuleInfo, ast.FunctionDef] | None:
    """Find ``method`` on a class or its project-resolvable ancestors.

    ``stop_at`` excludes one ancestor (and everything above it) from
    the search — used to ignore BaseScheduler's own raising stub.
    """
    if _depth > 10 or qualname == stop_at:
        return None
    entry = project.class_def(qualname)
    if entry is None:
        return None
    info, node = entry
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == method:
            return info, stmt
    for base in node.bases:
        resolved = project._resolve_base(info, base)
        if resolved is not None and resolved != qualname:
            found = _find_method(project, resolved, method, stop_at, _depth + 1)
            if found is not None:
                return found
    return None


@register_project
class SchedulerOverrideRule(ProjectRule):
    """Every BaseScheduler subclass implements ``schedule(self, view)``."""

    id = "RPR401"
    slug = "scheduler-override"
    rationale = (
        "BaseScheduler.schedule only raises at runtime; a subclass that "
        "forgets the override (or drifts its signature) passes import and "
        "fails mid-simulation"
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Walk the scheduler hierarchy, checking each concrete class."""
        if project.class_def(BASE_SCHEDULER) is None:
            return
        for qualname in project.subclasses_of(BASE_SCHEDULER):
            entry = project.class_def(qualname)
            if entry is None:
                continue
            info, node = entry
            found = _find_method(project, qualname, "schedule",
                                 stop_at=BASE_SCHEDULER)
            if found is None:
                yield ProjectFinding(info.path, node.lineno, node.col_offset, (
                    f"{node.name} subclasses BaseScheduler but neither it nor "
                    "an intermediate base implements schedule(self, view)"
                ))
                continue
            fn_info, fn = found
            error = signature_error(fn, ("self", "view"))
            if error is not None:
                yield ProjectFinding(fn_info.path, fn.lineno, fn.col_offset,
                                     f"{node.name}.schedule: {error}")


@register_project
class LifecycleHookRule(ProjectRule):
    """``on_simulation_start``/``_end`` overrides keep ``(self, engine)``."""

    id = "RPR402"
    slug = "lifecycle-hook"
    rationale = (
        "the engine calls lifecycle hooks positionally with itself as the "
        "only argument; a drifted override raises TypeError mid-run"
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Check every class that defines a lifecycle hook."""
        for info, node in project.iter_classes():
            for stmt in node.body:
                if not isinstance(stmt, ast.FunctionDef):
                    continue
                expected = LIFECYCLE_HOOKS.get(stmt.name)
                if expected is None:
                    continue
                error = signature_error(stmt, expected)
                if error is not None:
                    yield ProjectFinding(info.path, stmt.lineno, stmt.col_offset,
                                         f"{node.name}.{stmt.name}: {error}")


@register_project
class ObserverHookRule(ProjectRule):
    """Observer hook definitions match the engine's dispatch signature."""

    id = "RPR403"
    slug = "observer-hook"
    rationale = (
        "observers are dispatched via getattr, so a hook with the wrong "
        "shape is either never called or explodes with TypeError at the "
        "first event"
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Check every class that defines an observer hook."""
        for info, node in project.iter_classes():
            for stmt in node.body:
                if not isinstance(stmt, ast.FunctionDef):
                    continue
                expected = OBSERVER_HOOKS.get(stmt.name)
                if expected is None:
                    continue
                error = signature_error(stmt, expected)
                if error is not None:
                    yield ProjectFinding(info.path, stmt.lineno, stmt.col_offset,
                                         f"{node.name}.{stmt.name}: {error}")


@register_project
class SpanRegistryRule(ProjectRule):
    """Literal span/event names must come from the documented registry."""

    id = "RPR404"
    slug = "span-registry"
    rationale = (
        "trace analysis (repro.obs.analyze, the bench harness) keys on span "
        "names; an undocumented name silently falls out of every report"
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Scan every ``.span/.begin/.event`` call with a literal name."""
        for info in project.modules.values():
            for node in ast.walk(info.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("span", "begin", "event")
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    continue
                name = node.args[0].value
                if name not in SPAN_NAMES:
                    yield ProjectFinding(
                        info.path, node.lineno, node.col_offset, (
                            f"span name {name!r} is not in the documented "
                            "registry (repro.check.contracts.SPAN_NAMES / "
                            "docs/observability.md)"
                        ))
