"""Fig 3 — job patterns of the Theta training dataset.

The paper characterizes the training data by hourly and daily job
arrival counts and by the distributions of job sizes and runtimes —
the statistics the synthetic jobset generator must mimic.  We report
the same four panels for the generated training trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.common import system_setup
from repro.sim.job import Job
from repro.workload.units import SECONDS_PER_DAY as _DAY
from repro.workload.units import SECONDS_PER_HOUR as _HOUR


@dataclass(frozen=True)
class JobPatterns:
    hourly_arrivals: tuple[float, ...]   #: mean arrivals per hour-of-day
    daily_arrivals: tuple[float, ...]    #: mean arrivals per day-of-week
    size_quantiles: dict[str, float]
    runtime_quantiles_h: dict[str, float]


def analyze(jobs: list[Job]) -> JobPatterns:
    if not jobs:
        raise ValueError("empty trace")
    submits = np.array([j.submit_time for j in jobs])
    sizes = np.array([j.size for j in jobs], dtype=np.float64)
    runtimes = np.array([j.runtime for j in jobs]) / _HOUR

    hours = ((submits % _DAY) // _HOUR).astype(int)
    days = ((submits // _DAY) % 7).astype(int)
    span_days = max(1.0, (submits.max() - submits.min()) / _DAY)
    hourly = np.bincount(hours, minlength=24) / span_days
    n_weeks = max(1.0, span_days / 7.0)
    daily = np.bincount(days, minlength=7) / n_weeks

    q = [5, 25, 50, 75, 95]
    return JobPatterns(
        hourly_arrivals=tuple(float(h) for h in hourly),
        daily_arrivals=tuple(float(d) for d in daily),
        size_quantiles={f"p{p}": float(np.percentile(sizes, p)) for p in q},
        runtime_quantiles_h={f"p{p}": float(np.percentile(runtimes, p)) for p in q},
    )


def run(scale: str = "default", seed: int = 0) -> JobPatterns:
    setup = system_setup("theta", scale, seed)
    return analyze(setup.train_trace)


def report(patterns: JobPatterns) -> str:
    hour_rows = [
        [f"{h:02d}:00", f"{v:.2f}"] for h, v in enumerate(patterns.hourly_arrivals)
    ]
    day_names = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
    day_rows = [
        [name, f"{v:.1f}"] for name, v in zip(day_names, patterns.daily_arrivals)
    ]
    dist_rows = [
        [p, f"{patterns.size_quantiles[p]:.0f}", f"{patterns.runtime_quantiles_h[p]:.2f}"]
        for p in patterns.size_quantiles
    ]
    return "\n\n".join(
        [
            format_table(
                ["hour of day", "arrivals/hour"],
                hour_rows,
                title="Fig 3a: hourly job arrivals (Theta training set)",
            ),
            format_table(
                ["day of week", "arrivals/day"],
                day_rows,
                title="Fig 3b: daily job arrivals",
            ),
            format_table(
                ["quantile", "job size (nodes)", "runtime (hours)"],
                dist_rows,
                title="Fig 3c/d: job size and runtime distributions",
            ),
        ]
    )
