"""Network checkpointing.

Training takes a model snapshot after every episode (§III-C); these
helpers persist a :class:`~repro.nn.network.Network` state dict to a
single ``.npz`` file.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.network import Network


def save_network(network: Network, path: str | Path) -> None:
    """Write all parameter values to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **network.state_dict())


def load_network(network: Network, path: str | Path) -> Network:
    """Load parameter values saved by :func:`save_network` into ``network``.

    The network must already have the right architecture; shapes are
    validated.  Returns the same network for chaining.
    """
    with np.load(Path(path)) as data:
        network.load_state_dict({k: data[k] for k in data.files})
    return network
