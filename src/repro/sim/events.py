"""Discrete-event machinery for the trace-driven simulator.

A binary heap orders events by ``(time, priority, sequence)``.  The
sequence number makes the ordering total and deterministic, which keeps
whole simulations reproducible bit-for-bit — essential for RL training
(same seed, same trajectory) and for regression tests.

Events can be *cancelled* after being scheduled (lazy deletion): a job
killed by a node failure leaves a stale ``FINISH`` event in the heap,
which the queue silently discards when it reaches the top.
"""

from __future__ import annotations

import enum
import heapq
import itertools


class EventKind(enum.IntEnum):
    """Kinds of simulator events.

    The integer values double as tie-breaking priorities for events at
    the same timestamp: completions are processed before arrivals so a
    job finishing at time *t* frees its nodes before jobs arriving at
    *t* are considered.  Node repairs likewise restore capacity before
    arrivals are considered, while failures strike *after* completions
    and arrivals at the same instant — a job that finishes exactly when
    its node dies is credited with its work, matching the graceful
    interpretation used by production resource managers.
    """

    FINISH = 0
    NODE_REPAIR = 1
    SUBMIT = 2
    NODE_FAIL = 3
    JOB_KILL = 4


class Event:
    """One timestamped occurrence (job finish/submit, node fail/repair).

    Ordering is ``(time, kind, seq)``: finishes sort before submits at
    the same timestamp, and ``seq`` breaks remaining ties by insertion
    order, keeping the heap deterministic.  ``job_id`` carries the
    subject job for job events and ``node`` the subject node for node
    events; the unused field stays ``-1``.  ``cancelled`` marks an
    event as dead without removing it from the heap.

    A plain ``__slots__`` class rather than a dataclass: the heap holds
    one instance per simulated event, so construction and ``__lt__``
    are on the hottest path of the whole simulator.
    """

    __slots__ = ("time", "kind", "seq", "job_id", "node", "cancelled")

    def __init__(self, time: float, kind: EventKind, seq: int,
                 job_id: int = -1, node: int = -1,
                 cancelled: bool = False) -> None:
        self.time = time
        self.kind = kind
        self.seq = seq
        self.job_id = job_id
        self.node = node
        self.cancelled = cancelled

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:  # repro: noqa[float-time-eq]
            return self.time < other.time
        if self.kind != other.kind:
            return self.kind < other.kind
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time == other.time and self.kind == other.kind  # repro: noqa[float-time-eq]
                and self.seq == other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event(time={self.time!r}, kind={self.kind!r}, "
                f"seq={self.seq!r}, job_id={self.job_id!r}, "
                f"node={self.node!r}, cancelled={self.cancelled!r})")


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._live = 0

    def push(self, time: float, kind: EventKind, job_id: int = -1,
             node: int = -1) -> Event:
        """Schedule an event; returns the stored :class:`Event`."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        event = Event(float(time), kind, next(self._seq), job_id, node)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Mark a scheduled event as dead (lazily removed on pop).

        Cancelling an already-cancelled event is a no-op, so callers do
        not need to track whether a handle was invalidated before.
        """
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def _prune(self) -> None:
        """Drop cancelled events from the top of the heap."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        self._prune()
        if not self._heap:
            raise IndexError("pop from empty event queue")
        self._live -= 1
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return the earliest live event without removing it."""
        self._prune()
        if not self._heap:
            raise IndexError("peek at empty event queue")
        return self._heap[0]

    def pop_simultaneous(self) -> list[Event]:
        """Pop every live event sharing the earliest timestamp.

        The simulator treats all events at one timestamp as a single
        scheduling instance: first apply all completions and arrivals,
        then invoke the policy once.
        """
        if not self:
            raise IndexError("pop from empty event queue")
        first = self.pop()
        batch = [first]
        while True:
            self._prune()
            # stored-value equality: both sides are the same pushed
            # float, not recomputed arithmetic
            if not self._heap or self._heap[0].time != first.time:  # repro: noqa[float-time-eq]
                break
            batch.append(self.pop())
        return batch

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0
