"""Unit tests for DRAS-PG: selection, baseline, updates, hierarchy."""

import numpy as np
import pytest

from repro.core.config import DRASConfig
from repro.core.dras_pg import BaselineTracker, DRASPG
from repro.sim.engine import run_simulation
from repro.sim.job import ExecMode, JobState
from tests.conftest import make_job


def small_config(**overrides):
    base = dict(num_nodes=8, window=3, hidden1=12, hidden2=6, seed=0,
                objective="capability", time_scale=100.0)
    base.update(overrides)
    return DRASConfig(**base)


class TestBaselineTracker:
    def test_empty_baselines_zero(self):
        tracker = BaselineTracker()
        assert np.allclose(tracker.baselines(3), 0.0)

    def test_running_average(self):
        tracker = BaselineTracker()
        tracker.observe(np.array([1.0, 2.0]))
        tracker.observe(np.array([3.0, 4.0]))
        assert tracker.baselines(2) == pytest.approx([2.0, 3.0])

    def test_variable_lengths(self):
        tracker = BaselineTracker()
        tracker.observe(np.array([1.0]))
        tracker.observe(np.array([3.0, 5.0]))
        base = tracker.baselines(3)
        assert base[0] == pytest.approx(2.0)   # two observations
        assert base[1] == pytest.approx(5.0)   # one observation
        assert base[2] == 0.0                  # unseen position


class TestSchedulingBehaviour:
    def test_runs_full_jobset(self):
        agent = DRASPG(small_config())
        jobs = [make_job(size=s, walltime=50.0, submit=float(i * 5))
                for i, s in enumerate((2, 4, 8, 1, 2, 4))]
        result = run_simulation(8, agent, jobs)
        assert all(j.state is JobState.FINISHED for j in result.jobs)

    def test_reserves_when_selection_does_not_fit(self):
        agent = DRASPG(small_config())
        blocker = make_job(size=8, walltime=100.0, submit=0.0)
        big = make_job(size=8, walltime=10.0, submit=1.0)
        run_simulation(8, agent, [blocker, big])
        assert big.mode is ExecMode.RESERVED

    def test_small_job_slips_ahead_of_reservation(self):
        agent = DRASPG(small_config())
        blocker = make_job(size=7, walltime=100.0, submit=0.0)
        big = make_job(size=8, walltime=10.0, submit=1.0)
        tiny = make_job(size=1, walltime=20.0, submit=2.0)
        run_simulation(8, agent, [blocker, big, tiny])
        # tiny runs ahead of the reserved whole-system job without
        # delaying it (READY or BACKFILLED depending on selection order)
        assert tiny.mode in (ExecMode.READY, ExecMode.BACKFILLED)
        assert tiny.start_time < big.start_time
        assert big.start_time == pytest.approx(100.0)

    def test_updates_happen_during_training(self):
        agent = DRASPG(small_config(update_every=2))
        jobs = [make_job(size=2, walltime=20.0, submit=float(i * 3))
                for i in range(12)]
        run_simulation(8, agent, jobs)
        assert agent.updates_done >= 2

    def test_parameters_change_when_learning(self):
        agent = DRASPG(small_config(update_every=2))
        before = {k: v.copy() for k, v in agent.state_dict().items()}
        jobs = [make_job(size=2, walltime=20.0, submit=float(i * 3))
                for i in range(12)]
        run_simulation(8, agent, jobs)
        after = agent.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_frozen_eval_keeps_parameters(self):
        agent = DRASPG(small_config())
        agent.eval(online_learning=False)
        before = {k: v.copy() for k, v in agent.state_dict().items()}
        jobs = [make_job(size=2, walltime=20.0, submit=float(i * 3))
                for i in range(12)]
        run_simulation(8, agent, jobs)
        after = agent.state_dict()
        assert all(np.allclose(before[k], after[k]) for k in before)
        assert agent.updates_done == 0

    def test_eval_records_no_transitions(self):
        agent = DRASPG(small_config())
        agent.eval(online_learning=False)
        jobs = [make_job(size=2, walltime=20.0, submit=float(i)) for i in range(5)]
        run_simulation(8, agent, jobs)
        assert agent.core.pending == []

    def test_episode_end_flushes_pending(self):
        agent = DRASPG(small_config(update_every=1000))
        jobs = [make_job(size=2, walltime=20.0, submit=float(i)) for i in range(6)]
        run_simulation(8, agent, jobs)
        # update_every never reached, but the episode-end hook must flush
        assert agent.updates_done == 1
        assert agent.core.pending == []

    def test_instance_rewards_collected(self):
        agent = DRASPG(small_config())
        jobs = [make_job(size=2, walltime=20.0, submit=float(i)) for i in range(4)]
        result = run_simulation(8, agent, jobs)
        assert len(agent.instance_rewards) == result.num_instances


class TestFirstFitBackfillAblation:
    def test_first_fit_backfill_matches_easy_choice(self):
        """With learned_backfill=False, level-2 picks candidates[0]."""
        agent = DRASPG(small_config(learned_backfill=False))
        blocker = make_job(size=7, walltime=100.0, submit=0.0)
        big = make_job(size=8, walltime=10.0, submit=0.5)
        bf1 = make_job(size=1, walltime=40.0, submit=1.0)
        bf2 = make_job(size=1, walltime=40.0, submit=1.0)
        run_simulation(8, agent, [blocker, big, bf1, bf2])
        # exactly one 1-node hole: first-fit must take the earlier job
        assert bf1.start_time < bf2.start_time

    def test_first_fit_backfill_records_no_level2_transitions(self):
        agent = DRASPG(small_config(learned_backfill=False, update_every=10**6))
        blocker = make_job(size=7, walltime=100.0, submit=0.0)
        big = make_job(size=8, walltime=10.0, submit=0.5)
        tiny = make_job(size=1, walltime=40.0, submit=1.0)
        run_simulation(8, agent, [blocker, big, tiny])
        # pending transitions only come from level-1 selections, which
        # are all singleton windows here (forced choices)
        assert all(t.mask.sum() == 1 for t in agent.core.pending)

    def test_runs_cleanly_end_to_end(self):
        agent = DRASPG(small_config(learned_backfill=False))
        jobs = [make_job(size=s, walltime=30.0, submit=float(i * 4))
                for i, s in enumerate((2, 8, 1, 4, 2, 8, 1))]
        result = run_simulation(8, agent, jobs)
        assert all(j.state is JobState.FINISHED for j in result.jobs)


class TestLearningMechanics:
    def test_update_clears_memory(self):
        agent = DRASPG(small_config(update_every=1))
        jobs = [make_job(size=2, walltime=20.0, submit=float(i * 30))
                for i in range(4)]
        run_simulation(8, agent, jobs)
        assert agent.core.pending == []

    def test_policy_learns_reward_preference(self):
        """On a bandit-like task, PG shifts probability to the rewarded job.

        Two jobs are repeatedly offered; reward is the capability size
        term, so selecting the larger job first yields more reward.
        """
        cfg = small_config(update_every=1, learning_rate=0.05,
                           reward_kwargs={"w1": 0.0, "w2": 1.0, "w3": 0.0})
        agent = DRASPG(cfg)
        probs_before = None
        for episode in range(60):
            jobs = [
                make_job(size=1, walltime=10.0, submit=0.0),
                make_job(size=8, walltime=10.0, submit=0.0),
            ]
            result = run_simulation(8, agent, jobs)
            del result
        # probe the learned policy on a fresh instance
        from repro.sim.cluster import Cluster
        from repro.sim.engine import Engine

        probe = [
            make_job(size=1, walltime=10.0, submit=0.0),
            make_job(size=8, walltime=10.0, submit=0.0),
        ]
        agent.eval(online_learning=False)
        chosen_sizes = []

        class Spy:
            def on_start(self, job, now):
                chosen_sizes.append(job.size)

        Engine(Cluster(8), agent, probe, observers=[Spy()]).run()
        # a learned policy should pick the 8-node job first far more often;
        # here we just require the big job to come first on this probe
        assert chosen_sizes[0] == 8
