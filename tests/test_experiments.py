"""Smoke + structure tests for every experiment module (tiny scale).

These run the actual harness end-to-end on the tiny scale, verifying
that each table/figure reproduction produces well-formed, internally
consistent output.  The qualitative paper-shape assertions live in
``test_reproduction.py``.
"""

import math

import pytest

from repro.experiments import (
    common,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    overhead,
    table1,
    table2,
    table3,
    table4,
)

SCALE = "tiny"
pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


class TestCommon:
    def test_get_scale(self):
        assert common.get_scale("tiny").name == "tiny"
        scale = common.get_scale("default")
        assert common.get_scale(scale) is scale
        with pytest.raises(ValueError, match="unknown scale"):
            common.get_scale("galactic")

    def test_system_setup_cached(self):
        a = common.system_setup("theta", SCALE, 0)
        b = common.system_setup("theta", SCALE, 0)
        assert a is b

    def test_system_setup_unknown(self):
        with pytest.raises(ValueError, match="unknown system"):
            common.system_setup("summit", SCALE, 0)

    def test_make_agent_kinds(self):
        cfg = common.system_setup("theta", SCALE, 0).config
        assert common.make_agent("pg", cfg).name == "DRAS-PG"
        assert common.make_agent("dql", cfg).name == "DRAS-DQL"
        assert common.make_agent("decima", cfg).name == "Decima-PG"
        with pytest.raises(ValueError):
            common.make_agent("sarsa", cfg)

    def test_full_comparison_has_all_methods(self):
        results = common.full_comparison("theta", SCALE, 0)
        assert set(results) == set(common.METHOD_ORDER)
        for res in results.values():
            assert res.metrics.num_jobs > 0

    def test_fresh_trained_agent_is_new_object(self):
        cached, _ = common.trained_agent("pg", "theta", SCALE, 0)
        fresh = common.fresh_trained_agent("pg", "theta", SCALE, 0)
        assert fresh is not cached


class TestStaticTables:
    def test_table1(self):
        rows = table1.run()
        report = table1.report(rows)
        assert "DRAS" in report and "Starvation avoidance" in report

    def test_table2(self):
        summaries = table2.run(SCALE)
        assert set(summaries) == {"theta", "cori"}
        for s in summaries.values():
            assert s.num_jobs > 0
            assert s.offered_load > 0
        assert "Table II" in table2.report(summaries)

    def test_table3_counts(self):
        rows = table3.run()
        by_name = {r.name: r for r in rows}
        assert by_name["theta-pg"].analytic_params == 21_890_053
        assert by_name["theta-dql"].matches_paper
        assert by_name["cori-pg"].matches_paper
        assert not by_name["cori-dql"].matches_paper  # documented
        assert "paper-inconsistent" in table3.report(rows)

    def test_table3_instantiated_matches_analytic_small(self):
        # instantiate=True on the real configs is GBs of RAM; verify the
        # analytic/instantiated agreement through the builder instead
        import numpy as np

        from repro.core.config import NetworkDims
        from repro.nn.network import build_dras_network, count_parameters

        dims = NetworkDims(rows=60, hidden1=50, hidden2=12, outputs=5)
        net = build_dras_network(dims.rows, dims.hidden1, dims.hidden2,
                                 dims.outputs, rng=np.random.default_rng(0))
        assert count_parameters(net) == dims.param_count


class TestWorkloadFigures:
    def test_fig2_shares_sum_to_one(self):
        shares = fig2.run(SCALE)
        for s in shares.values():
            assert sum(s.job_share) == pytest.approx(1.0)
            assert sum(s.core_hour_share) == pytest.approx(1.0)
        assert "Fig 2" in fig2.report(shares)

    def test_fig2_capability_vs_capacity_shape(self):
        shares = fig2.run(SCALE)
        # Cori: the smallest category dominates job counts
        cori = shares["cori"]
        assert cori.job_share[0] > 0.5
        # Theta: larger categories hold a bigger share of core hours
        # than of job counts (capability computing)
        theta = shares["theta"]
        tail_jobs = sum(theta.job_share[2:])
        tail_hours = sum(theta.core_hour_share[2:])
        assert tail_hours > tail_jobs

    def test_fig3_patterns(self):
        patterns = fig3.run(SCALE)
        assert len(patterns.hourly_arrivals) == 24
        assert len(patterns.daily_arrivals) == 7
        assert patterns.size_quantiles["p50"] > 0
        assert "Fig 3" in fig3.report(patterns)

    def test_fig3_diurnal_shape(self):
        patterns = fig3.run(SCALE)
        hourly = patterns.hourly_arrivals
        # afternoon busier than deep night in the generator profile
        afternoon = sum(hourly[12:18])
        night = sum(hourly[0:6])
        assert afternoon > night


class TestTrainingFigures:
    def test_fig4_structure(self):
        results = fig4.run(SCALE)
        assert len(results) == len(fig4.ORDERS)
        for r in results:
            assert len(r.validation_curve) == 6  # 2+2+2 jobsets at tiny
            assert all(math.isfinite(v) for v in r.validation_curve)
        assert "Fig 4" in fig4.report(results)
        curves = fig4.history_curves(results)
        assert len(curves) == 3

    def test_fig5_structure(self):
        result = fig5.run(SCALE)
        assert set(result.curves) == {"DRAS-PG", "DRAS-DQL", "Decima-PG"}
        assert set(result.static_rewards) == {
            "FCFS", "BinPacking", "Random", "Optimization",
        }
        for curve in result.curves.values():
            assert all(math.isfinite(v) for v in curve)
        assert "Fig 5" in fig5.report(result)


class TestEvaluationFigures:
    def test_fig6_structure(self):
        res = fig6.run_system("theta", SCALE)
        assert set(res.normalized) == set(common.METHOD_ORDER)
        for vals in res.normalized.values():
            assert all(0.0 <= v <= 1.0 for v in vals.values())
        assert all(a >= 0 for a in res.areas.values())
        assert "Fig 6" in fig6.report({"theta": res})

    def test_fig7_structure(self):
        results = fig7.run(SCALE)
        assert set(results) == set(common.METHOD_ORDER)
        for r in results.values():
            total = sum(c[0] for c in r.categories.values())
            assert total > 0
        assert "Fig 7" in fig7.report(results)

    def test_fig7_starvation_summary(self):
        summary = fig7.starvation(SCALE)
        assert set(summary) == set(common.METHOD_ORDER)

    def test_table4_structure(self):
        rows = table4.run(SCALE)
        for r in rows:
            jobs_total = r.backfilled_jobs + r.ready_jobs + r.reserved_jobs
            ch_total = r.backfilled_ch + r.ready_ch + r.reserved_ch
            assert jobs_total == pytest.approx(100.0, abs=0.01)
            assert ch_total == pytest.approx(100.0, abs=0.01)
        assert "Table IV" in table4.report(rows)

    def test_table4_reservationless_methods(self):
        rows = {r.method: r for r in table4.run(SCALE)}
        for name in ("BinPacking", "Random", "Optimization", "Decima-PG"):
            assert rows[name].ready_jobs == pytest.approx(100.0)

    def test_fig8_structure(self):
        rows = fig8.run(SCALE)
        assert [r.method for r in rows] == ["FCFS", "DRAS-PG", "DRAS-DQL"]
        for r in rows:
            assert set(r.wait_h) == {"ready", "reserved", "backfilled"}
        assert "Fig 8" in fig8.report(rows)

    def test_fig9_structure(self):
        result = fig9.run(SCALE)
        assert len(result.weeks) >= 4
        assert len(result.core_hours) == len(result.weeks)
        for series in result.weekly_wait_h.values():
            assert len(series) == len(result.weeks)
        assert "Fig 9" in fig9.report(result)

    def test_fig9_surge_weeks_have_more_work(self):
        result = fig9.run(SCALE)
        ch = result.core_hours
        # week 2 is a 1.7x surge in the profile
        assert ch[2] > ch[1]


class TestOverhead:
    def test_scaled_measurement(self):
        results = overhead.run(full_size=False, repeats=1)
        assert {r.agent for r in results} == {"DRAS-PG", "DRAS-DQL"}
        for r in results:
            assert r.decision_s > 0
            assert r.update_s > 0
            assert r.within_budget
        assert "V-E" in overhead.report(results)
