"""Training infrastructure (paper section III-C).

* :class:`RewardMeter` — an engine observer that accumulates the
  scheduling reward of *any* policy, learned or heuristic, enabling the
  Fig 5 learning-curve comparison;
* :class:`Trainer` — episodic training: one jobset per episode, a
  model snapshot and a validation run after each episode, convergence
  monitoring;
* :mod:`repro.rl.curriculum` — the three-phase curriculum and the
  ordering comparison of Fig 4.
"""

from repro.rl.meter import RewardMeter
from repro.rl.trainer import EpisodeStats, Trainer, TrainingHistory
from repro.rl.curriculum import compare_phase_orders, train_with_curriculum

__all__ = [
    "EpisodeStats",
    "RewardMeter",
    "Trainer",
    "TrainingHistory",
    "compare_phase_orders",
    "train_with_curriculum",
]
