"""Finding serialization: JSON, SARIF 2.1.0 and the ratchet baseline.

Shared by the ``python -m repro check`` driver and
``scripts/check_ratchet.py`` so the two never disagree about formats.

Baseline semantics
------------------
A baseline is a *multiset* of finding keys.  Keys deliberately omit
line and column numbers (``path::rule::message``) so unrelated edits
that shift code around do not churn the baseline; two identical
findings in one file are two entries.  The ratchet direction is
one-way: a finding not in the baseline fails the build, while baseline
entries that no longer fire are *stale* and the baseline may only ever
shrink.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.check.lint import Violation

BASELINE_VERSION = 1
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def finding_dict(violation: Violation) -> dict:
    """One finding as a plain JSON-ready dict."""
    return {
        "path": str(violation.path),
        "line": violation.line,
        "col": violation.col,
        "rule": violation.rule_id,
        "slug": violation.slug,
        "message": violation.message,
    }


def to_json(violations: Sequence[Violation], paths: Sequence[str],
            strict: bool) -> str:
    """The ``--json`` document for one check run."""
    return json.dumps(
        {
            "version": 1,
            "tool": "repro.check",
            "strict": strict,
            "paths": [str(p) for p in paths],
            "count": len(violations),
            "findings": [finding_dict(v) for v in violations],
        },
        indent=2,
    ) + "\n"


def to_sarif(violations: Sequence[Violation],
             rules: Iterable[tuple[str, str, str]]) -> dict:
    """A SARIF 2.1.0 log for one check run.

    ``rules`` is ``(id, slug, rationale)`` triples for the driver's
    full rule catalogue, so viewers can show rule help even for rules
    with no results.
    """
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.check",
                    "informationUri": "docs/static-analysis.md",
                    "rules": [
                        {
                            "id": rule_id,
                            "name": slug,
                            "shortDescription": {"text": slug},
                            "fullDescription": {"text": rationale},
                        }
                        for rule_id, slug, rationale in sorted(rules)
                    ],
                },
            },
            "results": [
                {
                    "ruleId": v.rule_id,
                    "level": "error",
                    "message": {"text": f"[{v.slug}] {v.message}"},
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {"uri": str(v.path)},
                            "region": {
                                "startLine": v.line,
                                "startColumn": max(1, v.col),
                            },
                        },
                    }],
                }
                for v in violations
            ],
        }],
    }


# -- baseline / ratchet ----------------------------------------------------

def baseline_key(violation: Violation) -> str:
    """Line-number-free identity of one finding."""
    return f"{violation.path}::{violation.rule_id}::{violation.message}"


def load_baseline(path: str | Path) -> Counter[str]:
    """Read a baseline file into a key multiset.

    Raises :class:`ValueError` on a malformed or wrong-version file —
    the driver maps that to a usage error (exit code 2).
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported structure/version "
            f"(want version={BASELINE_VERSION})"
        )
    findings = payload.get("findings", {})
    if not isinstance(findings, dict) or not all(
        isinstance(k, str) and isinstance(c, int) and c > 0
        for k, c in findings.items()
    ):
        raise ValueError(f"baseline {path}: findings must map keys to counts")
    return Counter(findings)


def save_baseline(path: str | Path, violations: Sequence[Violation]) -> None:
    """Write the baseline for the given findings (sorted, stable)."""
    counts = Counter(baseline_key(v) for v in violations)
    payload = {
        "version": BASELINE_VERSION,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def diff_baseline(
    violations: Sequence[Violation], baseline: Counter[str]
) -> tuple[list[Violation], Counter[str]]:
    """Split current findings against a baseline.

    Returns ``(new, stale)``: findings not covered by the baseline, and
    baseline entries that no longer fire (candidates for shrinking).
    """
    remaining = Counter(baseline)
    new: list[Violation] = []
    for violation in violations:
        key = baseline_key(violation)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            new.append(violation)
    stale = Counter({k: c for k, c in remaining.items() if c > 0})
    return new, stale
