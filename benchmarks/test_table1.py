"""Benchmark: regenerate Table I (method feature matrix)."""

from conftest import SCALE, save_report

from repro.experiments import table1


def test_table1(benchmark, report_dir):
    rows = benchmark(table1.run)
    text = table1.report(rows)
    save_report(report_dir, "table1", text)
    features = {r.feature: dict(zip(("FCFS", "BinPacking", "Optimization",
                                     "Decima", "DRAS"), r.values))
                for r in rows}
    # the two discriminating rows of the paper's matrix
    assert features["Starvation avoidance"]["DRAS"] == "yes"
    assert features["Starvation avoidance"]["Decima"] == "no"
    assert features["Adaption to workload changes"]["FCFS"] == "no"
    assert features["Adaption to workload changes"]["DRAS"] == "yes"
