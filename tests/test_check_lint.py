"""Unit tests for the determinism lint engine (repro.check)."""

import textwrap

import pytest

from repro.check import LintConfig, RULES, Rule, lint_paths, lint_source, register
from repro.check.rules import Finding
from repro.cli import main


def lint(source, path="src/repro/sim/fixture.py", config=None):
    return lint_source(textwrap.dedent(source), path, config)


def slugs(violations):
    return [v.slug for v in violations]


class TestGlobalRngRule:
    def test_numpy_global_call_flagged(self):
        src = """
        import numpy as np

        def pick(jobs):
            return jobs[np.random.randint(len(jobs))]
        """
        found = lint(src)
        assert slugs(found) == ["global-rng"]
        assert "np.random.randint" in found[0].message
        assert found[0].line == 5

    def test_numpy_seed_flagged(self):
        found = lint("import numpy as np\nnp.random.seed(0)\n")
        assert slugs(found) == ["global-rng"]

    def test_seeded_generator_allowed(self):
        src = """
        import numpy as np

        def make(seed):
            rng = np.random.default_rng(seed)
            return rng.integers(10)
        """
        assert lint(src) == []

    def test_stdlib_module_call_flagged(self):
        src = """
        import random

        def shuffle_jobs(jobs):
            random.shuffle(jobs)
        """
        found = lint(src)
        assert slugs(found) == ["global-rng"]
        assert "random.Random" in found[0].message

    def test_stdlib_from_import_flagged(self):
        src = """
        from random import choice

        def pick(jobs):
            return choice(jobs)
        """
        found = lint(src)
        assert slugs(found) == ["global-rng"]

    def test_explicit_random_instance_allowed(self):
        src = """
        import random

        def make(seed):
            return random.Random(seed)
        """
        assert lint(src) == []

    def test_out_of_scope_path_not_flagged(self):
        src = "import numpy as np\nnp.random.rand(3)\n"
        assert lint(src, path="src/repro/analysis/fixture.py") == []
        assert slugs(lint(src, path="src/repro/workload/fixture.py")) == ["global-rng"]


class TestUnseededRngRule:
    def test_unseeded_default_rng_flagged(self):
        found = lint("import numpy as np\nrng = np.random.default_rng()\n")
        assert slugs(found) == ["unseeded-rng"]

    def test_seeded_default_rng_allowed(self):
        assert lint("import numpy as np\nrng = np.random.default_rng(42)\n") == []

    def test_from_import_unseeded_flagged(self):
        src = "from numpy.random import default_rng\nrng = default_rng()\n"
        assert slugs(lint(src)) == ["unseeded-rng"]

    def test_applies_outside_sim_scope(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert slugs(lint(src, path="src/repro/analysis/fixture.py")) == ["unseeded-rng"]


class TestWallClockRule:
    def test_time_time_flagged(self):
        found = lint("import time\nstamp = time.time()\n")
        assert slugs(found) == ["wall-clock"]

    def test_perf_counter_allowed(self):
        assert lint("import time\nt0 = time.perf_counter()\n") == []

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nstamp = datetime.now()\n"
        assert slugs(lint(src)) == ["wall-clock"]

    def test_datetime_module_chain_flagged(self):
        src = "import datetime\nstamp = datetime.datetime.now()\n"
        assert slugs(lint(src)) == ["wall-clock"]

    def test_from_time_import_time_flagged(self):
        src = "from time import time\nstamp = time()\n"
        assert slugs(lint(src)) == ["wall-clock"]

    def test_profiling_whitelist(self):
        src = "import time\nstamp = time.time()\n"
        assert lint(src, path="src/repro/experiments/overhead.py") == []
        assert lint(src, path="src/repro/sim/profile.py") == []


class TestMutableDefaultRule:
    def test_list_literal_flagged(self):
        found = lint("def f(history=[]):\n    return history\n")
        assert slugs(found) == ["mutable-default"]

    def test_dict_call_flagged(self):
        found = lint("def f(*, cache=dict()):\n    return cache\n")
        assert slugs(found) == ["mutable-default"]

    def test_none_and_tuple_allowed(self):
        assert lint("def f(a=None, b=(), c=0):\n    return a, b, c\n") == []


class TestFloatTimeEqRule:
    def test_timestamp_equality_flagged(self):
        src = """
        def same_instant(a, b):
            return a.submit_time == b.submit_time
        """
        found = lint(src)
        assert slugs(found) == ["float-time-eq"]

    def test_ordering_allowed(self):
        src = """
        def earlier(a, b):
            return a.submit_time < b.submit_time
        """
        assert lint(src) == []

    def test_len_comparison_not_flagged(self):
        src = """
        def mismatch(times, free):
            return len(times) != len(free)
        """
        assert lint(src) == []

    def test_none_comparison_not_flagged(self):
        src = """
        def unstarted(job):
            return job.start_time == None
        """
        assert lint(src) == []


class TestBareExceptRule:
    def test_bare_except_flagged(self):
        src = """
        def run(step):
            try:
                step()
            except:
                return None
        """
        found = lint(src)
        assert slugs(found) == ["bare-except"]
        assert "bare" in found[0].message

    def test_swallowed_exception_flagged(self):
        src = """
        def run(step):
            try:
                step()
            except Exception:
                pass
        """
        assert slugs(lint(src)) == ["bare-except"]

    def test_narrow_handler_allowed(self):
        src = """
        def run(step):
            try:
                step()
            except ValueError:
                pass
        """
        assert lint(src) == []

    def test_handled_broad_exception_allowed(self):
        src = """
        def run(step, log):
            try:
                step()
            except Exception as exc:
                log(exc)
                raise
        """
        assert lint(src) == []


class TestSuppressions:
    SRC = "import time\nstamp = time.time()  {comment}\n"

    def test_line_noqa_all(self):
        assert lint(self.SRC.format(comment="# repro: noqa")) == []

    def test_line_noqa_by_slug(self):
        assert lint(self.SRC.format(comment="# repro: noqa[wall-clock]")) == []

    def test_line_noqa_by_rule_id(self):
        assert lint(self.SRC.format(comment="# repro: noqa[RPR103]")) == []

    def test_line_noqa_wrong_rule_keeps_violation(self):
        found = lint(self.SRC.format(comment="# repro: noqa[global-rng]"))
        assert slugs(found) == ["wall-clock"]

    def test_file_noqa_all(self):
        src = "# repro: noqa-file\nimport time\nstamp = time.time()\n"
        assert lint(src) == []

    def test_file_noqa_by_rule(self):
        src = (
            "# repro: noqa-file[wall-clock]\n"
            "import time\n"
            "import numpy as np\n"
            "stamp = time.time()\n"
            "rng = np.random.default_rng()\n"
        )
        assert slugs(lint(src)) == ["unseeded-rng"]


class TestEngine:
    def test_clean_source_passes(self):
        src = """
        import numpy as np

        def simulate(seed):
            rng = np.random.default_rng(seed)
            return float(rng.random())
        """
        assert lint(src) == []

    def test_syntax_error_reported_not_raised(self):
        found = lint("def broken(:\n")
        assert len(found) == 1
        assert found[0].rule_id == "RPR000"

    def test_select_and_ignore(self):
        src = "import time\nimport numpy as np\n" \
              "stamp = time.time()\nrng = np.random.default_rng()\n"
        only_clock = lint(src, config=LintConfig().with_overrides(select=["wall-clock"]))
        assert slugs(only_clock) == ["wall-clock"]
        no_clock = lint(src, config=LintConfig().with_overrides(ignore=["RPR103"]))
        assert slugs(no_clock) == ["unseeded-rng"]

    def test_violation_format_has_location(self):
        found = lint("import time\nstamp = time.time()\n", path="pkg/mod.py")
        assert found[0].format().startswith("pkg/mod.py:2:")
        assert "RPR103" in found[0].format()

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "sim").mkdir()
        (tmp_path / "sim" / "bad.py").write_text(
            "import numpy as np\nnp.random.rand(2)\n"
        )
        (tmp_path / "sim" / "good.py").write_text("x = 1\n")
        found = lint_paths([tmp_path])
        assert slugs(found) == ["global-rng"]
        assert found[0].path.endswith("sim/bad.py")

    def test_lint_paths_missing_target(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"])

    def test_registry_is_pluggable(self):
        class TodoRule(Rule):
            id = "RPR999"
            slug = "no-todo"
            rationale = "test rule"

            def check(self, tree, ctx):
                for lineno, line in enumerate(ctx.source.splitlines(), start=1):
                    if "TODO" in line:
                        yield Finding(lineno, 0, "unresolved TODO")

        register(TodoRule)
        try:
            found = lint("x = 1  # TODO later\n")
            assert slugs(found) == ["no-todo"]
        finally:
            del RULES["no-todo"]

    def test_duplicate_registration_rejected(self):
        class Dupe(Rule):
            id = "RPR101"
            slug = "global-rng"

            def check(self, tree, ctx):
                return iter(())

        with pytest.raises(ValueError, match="duplicate"):
            register(Dupe)


class TestCheckCli:
    def test_check_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
        assert main(["check", str(target)]) == 0
        assert "no determinism" in capsys.readouterr().out

    def test_check_violation_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "sim_bad.py"
        target.write_text("import time\nstamp = time.time()\n")
        assert main(["check", str(target)]) == 1
        out = capsys.readouterr().out
        assert "RPR103" in out and "sim_bad.py:2" in out

    def test_check_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "ghost")]) == 2

    def test_unknown_rule_name_exits_two(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["check", "--select", "wall-clok", str(target)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES.values():
            assert rule.id in out
