"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main, make_policy


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,expected",
        [("fcfs", "FCFS"), ("binpacking", "BinPacking"), ("random", "Random"),
         ("knapsack", "Optimization"), ("sjf", "SJF"), ("ljf", "LJF"),
         ("conservative", "Conservative")],
    )
    def test_known_policies(self, name, expected):
        assert make_policy(name).name == expected

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("slurm")


class TestGenerateSimulate:
    def test_generate_then_simulate(self, tmp_path, capsys):
        trace = tmp_path / "trace.swf"
        rc = main(["generate", "theta", "150", "--nodes", "64",
                   "--out", str(trace)])
        assert rc == 0
        assert trace.exists()
        out = capsys.readouterr().out
        assert "wrote 150 jobs" in out

        rc = main(["simulate", str(trace), "--nodes", "64",
                   "--policy", "fcfs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg wait" in out and "utilization" in out

    def test_simulate_all_policies(self, tmp_path, capsys):
        trace = tmp_path / "trace.swf"
        main(["generate", "theta", "60", "--nodes", "32", "--out", str(trace)])
        capsys.readouterr()
        for policy in ("binpacking", "sjf", "conservative", "knapsack"):
            rc = main(["simulate", str(trace), "--nodes", "32",
                       "--policy", policy])
            assert rc == 0

    def test_simulate_empty_trace_fails(self, tmp_path, capsys):
        trace = tmp_path / "empty.swf"
        trace.write_text("; nothing here\n")
        rc = main(["simulate", str(trace), "--nodes", "8"])
        assert rc == 1

    def test_load_factor(self, tmp_path, capsys):
        a, b = tmp_path / "a.swf", tmp_path / "b.swf"
        main(["generate", "theta", "200", "--nodes", "64", "--out", str(a),
              "--load-factor", "0.5"])
        main(["generate", "theta", "200", "--nodes", "64", "--out", str(b),
              "--load-factor", "2.0"])
        from repro.workload import read_swf

        span_a = read_swf(a)[-1].submit_time
        span_b = read_swf(b)[-1].submit_time
        assert span_b < span_a


class TestTrainEvaluate:
    def test_train_then_evaluate(self, tmp_path, capsys):
        ckpt = tmp_path / "agent.npz"
        rc = main([
            "train", "--system", "theta", "--agent", "dql",
            "--nodes", "32", "--window", "6", "--train-jobs", "150",
            "--sampled", "1", "--real", "1", "--synthetic", "1",
            "--jobs-per-set", "50", "--out", str(ckpt),
        ])
        assert rc == 0
        assert ckpt.exists()
        out = capsys.readouterr().out
        assert "trained 3 episodes" in out

        trace = tmp_path / "test.swf"
        main(["generate", "theta", "80", "--nodes", "32", "--out", str(trace)])
        capsys.readouterr()
        rc = main(["evaluate", str(ckpt), str(trace), "--frozen"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "DRAS-DQL" in out and "avg wait" in out


class TestFit:
    def test_fit_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "real.swf"
        main(["generate", "theta", "400", "--nodes", "64", "--out", str(trace)])
        capsys.readouterr()
        out = tmp_path / "fitted.swf"
        rc = main(["fit", str(trace), "--nodes", "64", "--jobs", "200",
                   "--out", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "arrival rate" in stdout
        assert "wrote 200 fitted synthetic jobs" in stdout
        from repro.workload import read_swf

        assert len(read_swf(out)) == 200

    def test_fit_tiny_trace_fails(self, tmp_path, capsys):
        trace = tmp_path / "one.swf"
        fields = [1, 0, -1, 50, 4, -1, -1, 4, 100, -1, 1, 1, -1, -1, 0, -1, -1, -1]
        trace.write_text(" ".join(map(str, fields)) + "\n")
        rc = main(["fit", str(trace), "--nodes", "8", "--out",
                   str(tmp_path / "x.swf")])
        assert rc == 1


class TestCheck:
    """Exit-code contract of ``repro check``: 0 clean, 1 findings, 2 usage."""

    def _clean_file(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text('"""Clean."""\nX = 1\n')
        return path

    def _dirty_file(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text('"""Dirty."""\n\n\ndef f(items=[]):\n    return items\n')
        return path

    def test_clean_exits_zero(self, tmp_path, capsys):
        rc = main(["check", str(self._clean_file(tmp_path))])
        assert rc == 0
        assert "no determinism/correctness violations" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        rc = main(["check", str(self._dirty_file(tmp_path))])
        assert rc == 1
        assert "RPR104" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        rc = main(["check", "--select", "nosuchrule", str(self._clean_file(tmp_path))])
        assert rc == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        rc = main(["check", "/definitely/not/a/path"])
        assert rc == 2

    def test_bad_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        rc = main(["check", "--baseline", str(bad), str(self._clean_file(tmp_path))])
        assert rc == 2
        assert "baseline" in capsys.readouterr().err

    def test_strict_finds_unit_bug(self, tmp_path, capsys):
        pkg = tmp_path / "scratch"
        pkg.mkdir()
        (pkg / "__init__.py").write_text('"""Scratch."""\n')
        (pkg / "bug.py").write_text(
            '"""Bug."""\n\n\ndef f(a_seconds, b_hours):\n'
            '    """Mixes units."""\n    return a_seconds + b_hours\n'
        )
        rc = main(["check", "--strict", str(pkg)])
        assert rc == 1
        assert "RPR201" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        import json as _json

        rc = main(["check", "--json", str(self._dirty_file(tmp_path))])
        assert rc == 1
        doc = _json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        assert doc["findings"][0]["rule"] == "RPR104"

    def test_sarif_output(self, tmp_path, capsys):
        import json as _json

        sarif = tmp_path / "out.sarif"
        rc = main(["check", "--sarif", str(sarif), "-q",
                   str(self._dirty_file(tmp_path))])
        assert rc == 1
        log = _json.loads(sarif.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "RPR104"

    def test_baseline_suppresses_known_findings(self, tmp_path, capsys):
        from repro.check import lint_paths
        from repro.check.report import save_baseline

        dirty = self._dirty_file(tmp_path)
        baseline = tmp_path / "base.json"
        save_baseline(baseline, lint_paths([dirty]))
        rc = main(["check", "--baseline", str(baseline), str(dirty)])
        assert rc == 0

    def test_list_rules_includes_project_rules_in_strict(self, capsys):
        rc = main(["check", "--list-rules"])
        assert rc == 0
        plain = capsys.readouterr().out
        assert "RPR101" in plain and "RPR201" not in plain
        rc = main(["check", "--strict", "--list-rules"])
        assert rc == 0
        strict = capsys.readouterr().out
        for rule_id in ("RPR201", "RPR301", "RPR401", "RPR404"):
            assert rule_id in strict


class TestReproduce:
    def test_reproduce_table1(self, capsys):
        rc = main(["reproduce", "table1"])
        assert rc == 0
        assert "Table I" in capsys.readouterr().out

    def test_reproduce_table3_with_out(self, tmp_path, capsys):
        out_file = tmp_path / "t3.txt"
        rc = main(["reproduce", "table3", "--out", str(out_file)])
        assert rc == 0
        assert "21,890,053" in out_file.read_text()

    def test_reproduce_fig2_tiny(self, capsys):
        rc = main(["reproduce", "fig2", "--scale", "tiny"])
        assert rc == 0
        assert "Fig 2" in capsys.readouterr().out

    def test_reproduce_overhead_scaled(self, capsys):
        rc = main(["reproduce", "overhead", "--scaled-overhead"])
        assert rc == 0
        assert "V-E" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "fig99"])


class TestReportAndTrace:
    def _simulated(self, tmp_path, capsys):
        swf = tmp_path / "w.swf"
        main(["generate", "theta", "60", "--nodes", "32", "--out", str(swf)])
        trace = tmp_path / "trace.jsonl"
        manifest = tmp_path / "m.json"
        rc = main(["simulate", str(swf), "--nodes", "32",
                   "--trace-out", str(trace), "--manifest", str(manifest)])
        assert rc == 0
        capsys.readouterr()
        return trace, manifest

    def test_simulate_report_flag(self, tmp_path, capsys):
        swf = tmp_path / "w.swf"
        main(["generate", "theta", "60", "--nodes", "32", "--out", str(swf)])
        report = tmp_path / "run.html"
        rc = main(["simulate", str(swf), "--nodes", "32",
                   "--trace-out", str(tmp_path / "t.jsonl"),
                   "--report", str(report)])
        assert rc == 0
        assert "wrote report" in capsys.readouterr().out
        html = report.read_text()
        assert html.startswith("<!doctype html>")
        assert "<svg" in html  # trace analytics charts made it in

    def test_report_stitches_artifacts(self, tmp_path, capsys):
        trace, manifest = self._simulated(tmp_path, capsys)
        report = tmp_path / "r.html"
        rc = main(["report", "--out", str(report), "--title", "stitched",
                   "--manifest", str(manifest), "--trace", str(trace)])
        assert rc == 0
        html = report.read_text()
        assert "<title>stitched</title>" in html
        assert "Trace analytics" in html and "Manifest" in html

    def test_report_missing_artifact_exits_2(self, tmp_path, capsys):
        rc = main(["report", "--out", str(tmp_path / "r.html"),
                   "--trace", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "cannot build report" in capsys.readouterr().err

    def test_trace_summarize(self, tmp_path, capsys):
        trace, _ = self._simulated(tmp_path, capsys)
        rc = main(["trace", "summarize", str(trace), "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine.instance" in out
        assert "decision latency" in out

    def test_trace_summarize_missing_file_exits_2(self, tmp_path, capsys):
        rc = main(["trace", "summarize", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_train_report_writes_telemetry_sidecar(self, tmp_path, capsys):
        ckpt = tmp_path / "agent.npz"
        report = tmp_path / "train.html"
        rc = main(["train", "--agent", "pg", "--system", "theta",
                   "--nodes", "32", "--window", "6", "--train-jobs", "150",
                   "--sampled", "1", "--real", "1", "--synthetic", "1",
                   "--jobs-per-set", "50", "--out", str(ckpt),
                   "--report", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry records" in out
        sidecar = tmp_path / "agent.npz.telemetry.jsonl"
        assert sidecar.exists()
        from repro.rl.telemetry import episode_records, read_telemetry
        episodes = episode_records(read_telemetry(sidecar))
        assert episodes and all("grad_norm" in r for r in episodes)
        assert "Training telemetry" in report.read_text()


class TestLiveCLI:
    """``--live`` / ``--live-record`` and ``repro live summarize``."""

    def _trace(self, tmp_path, capsys, n=80):
        trace = tmp_path / "trace.swf"
        main(["generate", "theta", str(n), "--nodes", "32",
              "--out", str(trace)])
        capsys.readouterr()
        return trace

    def test_live_record_shard_then_summarize(self, tmp_path, capsys):
        trace = self._trace(tmp_path, capsys)
        shard = tmp_path / "run.jsonl"
        rc = main(["simulate", str(trace), "--nodes", "32",
                   "--policy", "fcfs", "--live-record", str(shard)])
        assert rc == 0
        capsys.readouterr()
        import json as _json

        lines = shard.read_text().splitlines()
        assert _json.loads(lines[0])["type"] == "meta"
        assert _json.loads(lines[-1])["final"] is True

        rc = main(["live", "summarize", str(shard)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "live rollup" in out and "[sim]" in out

    def test_live_progress_line_on_stderr(self, tmp_path, capsys):
        trace = self._trace(tmp_path, capsys)
        rc = main(["simulate", str(trace), "--nodes", "32",
                   "--policy", "fcfs", "--live"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "[sim]" in err and "done" in err

    def test_live_summarize_json_and_out(self, tmp_path, capsys):
        trace = self._trace(tmp_path, capsys)
        shard = tmp_path / "run.jsonl"
        main(["simulate", str(trace), "--nodes", "32",
              "--live-record", str(shard)])
        capsys.readouterr()
        rc = main(["live", "summarize", str(shard), "--json"])
        assert rc == 0
        import json as _json

        doc = _json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.live-rollup/v1"
        out = tmp_path / "rollup.json"
        rc = main(["live", "summarize", str(shard), "--out", str(out)])
        assert rc == 0
        assert _json.loads(out.read_text())["kinds"]["sim"]["snapshots"] >= 1

    def test_live_summarize_missing_shard_exits_2(self, tmp_path, capsys):
        rc = main(["live", "summarize", str(tmp_path / "nope.jsonl")])
        assert rc == 2

    def test_manifest_digest_identical_live_vs_dark(self, tmp_path, capsys):
        """Watching a run must not change what the run computed."""
        from repro.obs.manifest import RunManifest

        trace = self._trace(tmp_path, capsys)
        dark, live = tmp_path / "dark.json", tmp_path / "live.json"
        assert main(["simulate", str(trace), "--nodes", "32",
                     "--manifest", str(dark)]) == 0
        assert main(["simulate", str(trace), "--nodes", "32",
                     "--manifest", str(live),
                     "--live-record", str(tmp_path / "s.jsonl")]) == 0
        capsys.readouterr()
        assert RunManifest.read(dark).stable_digest() == \
            RunManifest.read(live).stable_digest()


class TestEffectsReportCLI:
    """``repro check --effects-report``: the effect-signature artifact."""

    def _pkg(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text('"""Pkg."""\n')
        (pkg / "mod.py").write_text(
            '"""Mod."""\n\nimport time\n\n\ndef stamped():\n'
            '    """Read the clock."""\n    return time.time()\n'
        )
        return pkg

    def test_writes_signature_document(self, tmp_path, capsys):
        import json as _json

        out = tmp_path / "effects.json"
        rc = main(["check", "--effects-report", str(out), str(self._pkg(tmp_path))])
        assert rc == 0
        assert "wrote effect signatures" in capsys.readouterr().err
        doc = _json.loads(out.read_text())
        assert doc["schema"] == "repro.effects/v1"
        assert doc["functions_total"] == 1
        [(qual, effects)] = doc["functions"].items()
        assert qual.endswith(".stamped")
        assert effects[0]["detail"] == "time.time"

    def test_quiet_suppresses_summary(self, tmp_path, capsys):
        out = tmp_path / "effects.json"
        rc = main(["check", "-q", "--effects-report", str(out),
                   str(self._pkg(tmp_path))])
        assert rc == 0
        assert capsys.readouterr().err == ""
        assert out.exists()

    def test_missing_root_exits_two(self, tmp_path, capsys):
        rc = main(["check", "--effects-report", str(tmp_path / "o.json"),
                   str(tmp_path / "nowhere")])
        assert rc == 2
        assert "not a directory" in capsys.readouterr().err


class TestSweepCLI:
    def test_selftest_sweep_exits_zero(self, tmp_path, capsys):
        store = tmp_path / "store"
        rc = main(["sweep", "selftest", "--store", str(store),
                   "--seed", "7", "--param", "cells=4"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "sweep: 4/4 cells complete" in err
        assert "digest" in err
        assert (store / "rollup.json").exists()

    def test_rerun_requires_resume_flag(self, tmp_path, capsys):
        store = tmp_path / "store"
        args = ["sweep", "selftest", "--store", str(store),
                "--param", "cells=2"]
        assert main(args) == 0
        capsys.readouterr()
        rc = main(args)
        assert rc == 2
        assert "resume" in capsys.readouterr().err
        rc = main(args + ["--resume"])
        assert rc == 0
        assert "(2 resumed" in capsys.readouterr().err

    def test_bad_param_exits_two(self, tmp_path, capsys):
        rc = main(["sweep", "selftest", "--store", str(tmp_path / "s"),
                   "--param", "no-equals-sign"])
        assert rc == 2
        assert "bad sweep spec" in capsys.readouterr().err

    def test_faults_rejected_for_non_faultsweep(self, tmp_path, capsys):
        rc = main(["sweep", "selftest", "--store", str(tmp_path / "s"),
                   "--faults", "mtbf=2000,seed=0"])
        assert rc == 2
        assert "faultsweep" in capsys.readouterr().err

    def test_quarantined_cell_exits_three(self, tmp_path, capsys):
        store = tmp_path / "store"
        rc = main(["sweep", "selftest", "--store", str(store),
                   "--param", "cells=3", "--param", "fail=[1]",
                   "--retries", "0"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "sweep: 2/3 cells complete" in err
        assert "quarantined" in err and "RuntimeError" in err

    def test_faultsweep_sweep_renders_report(self, tmp_path, capsys):
        store = tmp_path / "store"
        rc = main(["sweep", "faultsweep", "--store", str(store),
                   "--workers", "2",
                   "--param", 'policies=["FCFS"]',
                   "--param", "mtbf_grid=[0.0]"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FCFS" in out
