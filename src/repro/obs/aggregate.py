"""Merge per-process live-snapshot / telemetry JSONL shards into one rollup.

A multi-process experiment (a faultsweep fan-out, parallel seeds, a
training run next to a simulation) leaves one JSONL shard per process:
``repro.live/v1`` snapshot shards written by
:class:`~repro.obs.live.SnapshotWriter` and ``repro.telemetry/v1``
episode logs written by :class:`~repro.rl.telemetry.TelemetryWriter`.
This module folds any mix of them into a single deterministic rollup
(``repro live summarize`` on the CLI).

Reading is **lenient** by design: shards from killed processes may end
in a truncated line, and that prefix is still data.  Unparseable lines
are skipped (counted in the per-shard ``skipped`` field), never fatal.

Merging is **order-independent**: shards are keyed and processed by
their sorted basename, every per-kind reduction is commutative
(min/max/sum/last-by-``seq``), and the output dict has sorted keys —
the same set of shards produces byte-identical rollup JSON regardless
of argument order or filesystem enumeration order.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Mapping

from repro.obs.live import LIVE_SCHEMA

#: schema tag stamped on the merged rollup document
ROLLUP_SCHEMA = "repro.live-rollup/v1"


def read_snapshots(path: "str | os.PathLike[str]") -> dict[str, Any]:
    """Leniently read one JSONL shard (live snapshots or telemetry).

    Returns ``{"path", "source", "schema", "records", "skipped"}``.
    ``records`` holds every well-formed JSON-object line except the
    ``meta`` header (which supplies ``source``/``schema``); lines that
    fail to parse — typically one truncated tail line after a crash or
    ``kill -9`` — are counted in ``skipped`` and dropped.
    """
    path = os.fspath(path)
    records: list[dict[str, Any]] = []
    skipped = 0
    source: str | None = None
    schema: str | None = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(doc, dict):
                skipped += 1
                continue
            if doc.get("type") == "meta":
                schema = doc.get("schema", schema)
                source = doc.get("source", source)
                continue
            records.append(doc)
    if source is None:
        source = os.path.basename(path)
    return {"path": path, "source": source, "schema": schema,
            "records": records, "skipped": skipped}


def _snapshot_rows(shard: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Normalise one shard's records into live-snapshot rows.

    ``repro.live/v1`` snapshot records pass through; telemetry
    ``episode`` records map onto ``kind="train"`` rows (``seq`` from
    the episode index) so both shard species merge under one scheme.
    """
    rows: list[dict[str, Any]] = []
    for record in shard["records"]:
        rtype = record.get("type")
        if rtype == "snapshot" or record.get("schema") == LIVE_SCHEMA:
            rows.append(dict(record))
        elif rtype == "episode":
            row = dict(record)
            row.setdefault("kind", "train")
            row.setdefault("seq", int(record.get("episode", 0)) + 1)
            rows.append(row)
    return rows


_NUMERIC_SUMMARY_FIELDS = (
    "t", "events", "queue_depth", "running", "utilization", "done", "total",
    "faults", "requeues", "episode", "loss", "grad_norm", "train_reward",
    "validation_reward", "updates_done", "cell",
)


def merge_shards(paths: Iterable["str | os.PathLike[str]"]) -> dict[str, Any]:
    """Fold snapshot/telemetry shards into one deterministic rollup.

    The rollup carries, per snapshot ``kind`` (``sim``/``train``/…):
    the number of snapshots and contributing sources, the latest
    snapshot of every source (highest ``seq``; source-name ties broken
    deterministically), and min/max/last summaries for the well-known
    numeric fields.  Shard *order does not matter*: inputs are sorted
    by basename and every reduction is commutative, so any enumeration
    of the same files yields byte-identical JSON.
    """
    shards = [read_snapshots(p) for p in paths]
    shards.sort(key=lambda s: (os.path.basename(s["path"]), s["path"]))
    kinds: dict[str, dict[str, Any]] = {}
    total_skipped = 0
    for shard in shards:
        total_skipped += shard["skipped"]
        for row in _snapshot_rows(shard):
            kind = str(row.get("kind", "?"))
            bucket = kinds.setdefault(kind, {"snapshots": 0, "sources": {},
                                             "fields": {}})
            bucket["snapshots"] += 1
            source = str(row.get("source", shard["source"]))
            latest = bucket["sources"].get(source)
            if latest is None or row.get("seq", 0) >= latest.get("seq", 0):
                bucket["sources"][source] = row
            for field in _NUMERIC_SUMMARY_FIELDS:
                value = row.get(field)
                if not isinstance(value, (int, float)):
                    continue
                stats = bucket["fields"].get(field)
                if stats is None:
                    bucket["fields"][field] = {"min": value, "max": value}
                else:
                    if value < stats["min"]:
                        stats["min"] = value
                    if value > stats["max"]:
                        stats["max"] = value
    rollup_kinds: dict[str, Any] = {}
    for kind in sorted(kinds):
        bucket = kinds[kind]
        sources = bucket["sources"]
        last_rows = [sources[name] for name in sorted(sources)]
        rollup_kinds[kind] = {
            "snapshots": bucket["snapshots"],
            "sources": sorted(sources),
            "last": {name: sources[name] for name in sorted(sources)},
            "fields": {f: bucket["fields"][f]
                       for f in sorted(bucket["fields"])},
            "done": sum(r["done"] for r in last_rows
                        if isinstance(r.get("done"), (int, float))),
            "total": sum(r["total"] for r in last_rows
                         if isinstance(r.get("total"), (int, float))),
        }
    return {
        "schema": ROLLUP_SCHEMA,
        "shards": [{"path": os.path.basename(s["path"]),
                    "source": s["source"], "schema": s["schema"],
                    "records": len(s["records"]), "skipped": s["skipped"]}
                   for s in shards],
        "skipped": total_skipped,
        "kinds": rollup_kinds,
    }


def format_rollup(rollup: Mapping[str, Any]) -> str:
    """Human-oriented multi-line summary of a :func:`merge_shards` rollup."""
    lines = [f"live rollup ({rollup['schema']}): "
             f"{len(rollup['shards'])} shard(s), "
             f"{rollup['skipped']} skipped line(s)"]
    for shard in rollup["shards"]:
        lines.append(f"  shard {shard['path']}: source={shard['source']} "
                     f"schema={shard['schema']} records={shard['records']} "
                     f"skipped={shard['skipped']}")
    for kind, bucket in rollup["kinds"].items():
        lines.append(f"  [{kind}] {bucket['snapshots']} snapshot(s) from "
                     f"{len(bucket['sources'])} source(s), "
                     f"done {bucket['done']:g}/{bucket['total']:g}")
        for field, stats in bucket["fields"].items():
            lines.append(f"    {field}: min={stats['min']:g} "
                         f"max={stats['max']:g}")
    return "\n".join(lines) + "\n"
