"""Unit tests for neural-network layers, including gradient checks."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients
from repro.nn.layers import Conv1x2, Dense, LeakyReLU, Parameter
from repro.nn.network import Network


class TestParameter:
    def test_grad_initialized_to_zero(self):
        p = Parameter("w", np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert np.all(p.grad == 0)

    def test_zero_grad(self):
        p = Parameter("w", np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0)

    def test_size(self):
        assert Parameter("w", np.ones((4, 5))).size == 20


class TestConv1x2:
    def test_forward_known_values(self, rng):
        layer = Conv1x2(rng=rng)
        layer.weight.value[:] = [2.0, 3.0]
        layer.bias.value[:] = [1.0]
        x = np.array([[[1.0, 1.0], [0.5, 2.0]]])  # [1, 2, 2]
        y = layer.forward(x)
        assert y.shape == (1, 2)
        assert y[0, 0] == pytest.approx(2 * 1 + 3 * 1 + 1)
        assert y[0, 1] == pytest.approx(2 * 0.5 + 3 * 2 + 1)

    def test_rejects_bad_shape(self, rng):
        layer = Conv1x2(rng=rng)
        with pytest.raises(ValueError, match="rows, 2"):
            layer.forward(np.ones((3, 2)))
        with pytest.raises(ValueError):
            layer.forward(np.ones((1, 3, 3)))

    def test_parameter_count(self, rng):
        layer = Conv1x2(rng=rng)
        assert sum(p.size for p in layer.parameters()) == 3

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Conv1x2(rng=rng).backward(np.ones((1, 2)))

    def test_gradcheck(self, rng):
        net = Network([Conv1x2(rng=rng)])
        x = rng.normal(size=(3, 5, 2))

        def loss(out):
            return float(np.sum(out**2)), 2 * out

        check_gradients(net, x, loss)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng=rng)
        y = layer.forward(rng.normal(size=(7, 4)))
        assert y.shape == (7, 3)

    def test_no_bias_variant(self, rng):
        layer = Dense(4, 3, bias=False, rng=rng)
        assert len(layer.parameters()) == 1
        assert sum(p.size for p in layer.parameters()) == 12

    def test_bias_variant(self, rng):
        layer = Dense(4, 3, bias=True, rng=rng)
        assert sum(p.size for p in layer.parameters()) == 15

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 3, rng=rng)
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 5)))

    def test_known_values(self, rng):
        layer = Dense(2, 1, rng=rng)
        layer.weight.value[:] = [[2.0], [3.0]]
        layer.bias.value[:] = [10.0]
        y = layer.forward(np.array([[1.0, 1.0]]))
        assert y[0, 0] == pytest.approx(15.0)

    def test_gradcheck_with_bias(self, rng):
        net = Network([Dense(4, 3, rng=rng)])
        x = rng.normal(size=(5, 4))

        def loss(out):
            return float(np.sum(out**2)), 2 * out

        check_gradients(net, x, loss)

    def test_gradcheck_without_bias(self, rng):
        net = Network([Dense(4, 3, bias=False, rng=rng)])
        x = rng.normal(size=(5, 4))

        def loss(out):
            return float(np.sum(out**2)), 2 * out

        check_gradients(net, x, loss)


class TestLeakyReLU:
    def test_forward(self):
        layer = LeakyReLU(alpha=0.1)
        x = np.array([[-2.0, 0.0, 3.0]])
        y = layer.forward(x)
        assert y == pytest.approx(np.array([[-0.2, 0.0, 3.0]]))

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=-0.1)

    def test_backward(self):
        layer = LeakyReLU(alpha=0.1)
        x = np.array([[-1.0, 2.0]])
        layer.forward(x)
        grad = layer.backward(np.array([[1.0, 1.0]]))
        assert grad == pytest.approx(np.array([[0.1, 1.0]]))

    def test_no_parameters(self):
        assert LeakyReLU().parameters() == []


class TestStackedGradcheck:
    def test_full_dras_stack(self, rng):
        """Gradient-check the exact DRAS layer composition (small dims)."""
        from repro.nn.network import build_dras_network

        net = build_dras_network(rows=6, hidden1=5, hidden2=4, outputs=3, rng=rng)
        x = rng.normal(size=(2, 6, 2))

        def loss(out):
            return float(np.sum(out**2)), 2 * out

        check_gradients(net, x, loss)
