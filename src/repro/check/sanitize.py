"""Runtime sanitizer: invariant assertions for the simulator and NN stack.

Activation
----------
Hooks are compiled into the hot paths but cost a single boolean check
when inactive.  They activate when either

* the environment variable ``REPRO_SANITIZE`` is set to a truthy value
  (anything except ``""``, ``"0"``, ``"false"``, ``"no"``, ``"off"``), or
* the caller opts in explicitly (``Engine(sanitize=True)``,
  ``run_simulation(..., sanitize=True)``), which also covers the
  cluster owned by that engine.

On violation every hook raises :class:`SanitizerError` with a message
naming the invariant, the offending object and the simulation time —
fail loud and early instead of producing a silently-corrupt trajectory.

Checked invariants
------------------
* **node conservation** — after every allocate/release/fail/repair:
  ``used + free + down == total``, allocation table sizes match the
  busy-node count, and the set of job ids on nodes equals the
  allocation table;
* **event-time monotonicity** — ``Engine.run`` never moves the clock
  backwards;
* **metric sanity** — per-job wait and turnaround are non-negative when
  summarised by :class:`repro.sim.metrics.RunMetrics`;
* **scheduling-view integrity** — no double-start, and a reservation is
  never created for a running job or in the past;
* **NN numerics** — every forward/backward tensor and every Adam update
  is finite (no NaN/Inf), with shape preservation across updates.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.cluster import Cluster

_TRUTHY_OFF = ("", "0", "false", "no", "off")

#: test/CLI override: None = follow the environment variable
_FORCED: bool | None = None


class SanitizerError(RuntimeError):
    """A runtime invariant of the simulator or NN stack was violated."""


def sanitizer_enabled() -> bool:
    """Is the sanitizer globally active (env var or forced override)?"""
    if _FORCED is not None:
        return _FORCED
    # sanctioned observability gate: toggles extra *assertions*, never
    # results — a sanitized and an unsanitized run produce identical
    # traces, so the env read cannot break run-from-config determinism
    return os.environ.get(  # repro: noqa[ambient-env-read]
        "REPRO_SANITIZE", "").strip().lower() not in _TRUTHY_OFF


def force_sanitizer(value: bool | None) -> bool | None:
    """Override env detection (``None`` restores it); returns the old value."""
    global _FORCED
    previous = _FORCED
    _FORCED = value
    return previous


def _fail(invariant: str, detail: str) -> None:
    raise SanitizerError(f"sanitizer[{invariant}]: {detail}")


# -- simulator invariants ------------------------------------------------------

def check_node_conservation(cluster: "Cluster", context: str = "") -> None:
    """``used + free + down == total`` and the allocation table matches.

    Without faults ``down`` is zero, reducing to the classic
    ``used + free == total`` conservation law.
    """
    total = cluster.num_nodes
    free = cluster.available_nodes
    used = cluster.used_nodes
    down = cluster.down_nodes
    where = f" after {context}" if context else ""
    if used + free + down != total:
        _fail(
            "node-conservation",
            f"used ({used}) + free ({free}) + down ({down}) != "
            f"total ({total}){where}",
        )
    allocated = sum(len(nodes) for nodes in cluster._alloc.values())
    if allocated != used:
        _fail(
            "node-conservation",
            f"allocation table covers {allocated} nodes but {used} nodes "
            f"are marked busy{where}",
        )
    on_nodes = {int(j) for j in cluster._job_of if j >= 0}
    in_table = set(cluster._alloc.keys())
    if on_nodes != in_table:
        _fail(
            "node-conservation",
            f"jobs on nodes {sorted(on_nodes)} != allocation table "
            f"{sorted(in_table)}{where}",
        )


def check_monotonic_time(previous: float, now: float) -> None:
    """Fail if the simulation clock moved backwards."""
    if now < previous:
        _fail(
            "time-monotonic",
            f"simulation clock moved backwards: {previous} -> {now}",
        )


def check_job_start(job, now: float, already_running: Iterable[int]) -> None:
    """Fail on double-starts and starts before submission."""
    if job.job_id in set(already_running):
        _fail(
            "double-start",
            f"job {job.job_id} started while already running (t={now})",
        )
    if job.submit_time > now:
        _fail(
            "causality",
            f"job {job.job_id} started at t={now} before its submission "
            f"at t={job.submit_time}",
        )


def check_reservation(job, reservation, now: float, running: Iterable[int]) -> None:
    """Fail on reservations that violate backfill invariants."""
    if job.job_id in set(running):
        _fail(
            "reservation",
            f"reservation created for already-running job {job.job_id} (t={now})",
        )
    if reservation.job_id != job.job_id:
        _fail(
            "reservation",
            f"reservation is for job {reservation.job_id}, expected "
            f"{job.job_id}",
        )
    if reservation.shadow_time < now:
        _fail(
            "reservation",
            f"reservation for job {job.job_id} has a shadow time in the "
            f"past ({reservation.shadow_time} < now={now})",
        )


def check_job_metrics(job) -> None:
    """Non-negative wait/turnaround for one finished job."""
    if job.wait_time < 0:
        _fail(
            "metrics",
            f"job {job.job_id} has negative wait time {job.wait_time} "
            f"(submit={job.submit_time}, start={job.start_time})",
        )
    if job.response_time < 0:
        _fail(
            "metrics",
            f"job {job.job_id} has negative turnaround {job.response_time} "
            f"(submit={job.submit_time}, end={job.end_time})",
        )
    if job.response_time < job.wait_time:
        _fail(
            "metrics",
            f"job {job.job_id} turnaround {job.response_time} is below its "
            f"wait time {job.wait_time}",
        )


# -- NN numerics -------------------------------------------------------------

def check_finite(name: str, array: np.ndarray) -> None:
    """Raise unless every entry of ``array`` is finite."""
    if np.isfinite(array).all():
        return
    arr = np.asarray(array)
    nans = int(np.isnan(arr).sum())
    infs = int(np.isinf(arr).sum())
    _fail(
        "non-finite",
        f"{name} contains {nans} NaN / {infs} Inf entries "
        f"(shape {arr.shape})",
    )


def check_same_shape(name: str, before: tuple[int, ...], after: tuple[int, ...]) -> None:
    """Fail if a parameter changed shape during an update."""
    if before != after:
        _fail("shape", f"{name} changed shape {before} -> {after} during update")
