"""Benchmark: regenerate Fig 7 (wait time by job size — starvation)."""

from conftest import SCALE, save_report

from repro.experiments import fig7


def test_fig7(benchmark, report_dir):
    results = benchmark.pedantic(lambda: fig7.run(SCALE), rounds=1, iterations=1)
    text = fig7.report(results)
    save_report(report_dir, "fig7", text)

    # reservation-less methods starve jobs far longer than FCFS/DRAS
    for starver in ("BinPacking", "Random", "Decima-PG"):
        assert results[starver].max_wait_days > results["FCFS"].max_wait_days
    assert results["DRAS-PG"].max_wait_days < 2.0 * results["FCFS"].max_wait_days


def test_fig7_starvation_ellipses(benchmark, report_dir):
    """The large-vs-small wait gap that the paper circles in Fig 7."""
    summary = benchmark.pedantic(
        lambda: fig7.starvation(SCALE), rounds=1, iterations=1
    )
    lines = ["Fig 7 starvation indicators (large jobs >= half the system):"]
    for method, stats in summary.items():
        lines.append(
            f"  {method:14s} max wait {stats['max_wait_days']:6.2f} d   "
            f"large-job wait {stats['large_avg_wait_h']:8.2f} h   "
            f"small-job wait {stats['small_avg_wait_h']:6.2f} h"
        )
    save_report(report_dir, "fig7_starvation", "\n".join(lines))

    def gap(method):
        s = summary[method]
        small = max(s["small_avg_wait_h"], 1e-9)
        return s["large_avg_wait_h"] / small

    # the large/small wait gap of reservation-less methods exceeds the
    # reservation-based reference (FCFS) — the paper's second finding
    for starver in ("BinPacking", "Random", "Optimization"):
        assert gap(starver) > gap("FCFS")
