"""Trace analytics: rollups, histograms, timelines, manifest diffs."""

import numpy as np
import pytest

from repro.obs.analyze import (
    Histogram,
    diff_manifests,
    decision_latencies,
    format_trace_summary,
    latency_histogram,
    mean_utilization,
    rollup_spans,
    summarize_trace,
    utilization_timeline,
)
from repro.obs.manifest import RunManifest
from repro.obs.trace import Tracer, build_span_tree, read_trace
from repro.schedulers.fcfs import FCFSEasy
from repro.sim.engine import run_simulation
from repro.workload.models import ThetaModel


def _jobs(n=120, nodes=32, seed=0):
    model = ThetaModel.scaled(nodes)
    return model.generate(n, np.random.default_rng(seed))


def _trace_roots(tmp_path, build):
    path = tmp_path / "t.jsonl"
    with Tracer(path) as tr:
        build(tr)
    return build_span_tree(read_trace(path))


class TestRollups:
    def test_rollup_counts_and_nesting(self, tmp_path):
        def build(tr):
            for _ in range(3):
                with tr.span("outer"):
                    with tr.span("inner"):
                        pass

        rollups = rollup_spans(_trace_roots(tmp_path, build))
        by_name = {r.name: r for r in rollups}
        assert by_name["outer"].count == 3
        assert by_name["inner"].count == 3
        assert by_name["outer"].unclosed == 0
        # self time excludes the nested child
        assert by_name["outer"].self_s <= by_name["outer"].total_s
        assert by_name["outer"].mean_s == pytest.approx(
            by_name["outer"].total_s / 3)

    def test_unclosed_spans_counted_not_timed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tr = Tracer(path)
        tr.begin("crashed")
        tr.close()
        (rollup,) = rollup_spans(build_span_tree(read_trace(path)))
        assert rollup.count == 1 and rollup.unclosed == 1
        assert rollup.total_s == 0.0 and rollup.mean_s == 0.0


class TestLatencyHistogram:
    def test_empty_and_degenerate(self):
        empty = latency_histogram([])
        assert empty.n == 0 and sum(empty.counts) == 0
        single = latency_histogram([0.25] * 5)
        assert single.n == 5 and sum(single.counts) == 5
        assert single.p50 == 0.25 and single.max == 0.25

    def test_counts_and_percentiles(self):
        values = [0.001 * (i + 1) for i in range(100)]
        hist = latency_histogram(values, bins=10)
        assert hist.n == 100 and sum(hist.counts) == 100
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.100)
        assert hist.p50 == pytest.approx(0.050)
        assert hist.p99 == pytest.approx(0.099)
        assert len(hist.edges) == len(hist.counts) + 1
        # log-spaced edges are strictly increasing
        assert all(a < b for a, b in zip(hist.edges, hist.edges[1:]))

    def test_bins_validation(self):
        with pytest.raises(ValueError, match="bins"):
            latency_histogram([1.0], bins=0)

    def test_as_dict_round_trip(self):
        doc = latency_histogram([0.1, 0.2, 0.3]).as_dict()
        assert doc["n"] == 3 and len(doc["edges"]) == len(doc["counts"]) + 1

    def test_decision_latencies_from_engine_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        result = run_simulation(32, FCFSEasy(), _jobs(), trace=path)
        roots = build_span_tree(read_trace(path))
        latencies = decision_latencies(roots)
        assert len(latencies) == result.num_instances
        assert all(d >= 0.0 for d in latencies)


class TestUtilizationTimeline:
    def test_step_series_from_events(self):
        records = [
            {"type": "event", "name": "engine.allocate", "t": 0.0, "size": 4},
            {"type": "event", "name": "engine.allocate", "t": 0.0, "size": 2},
            {"type": "event", "name": "engine.release", "t": 10.0, "size": 4},
            {"type": "event", "name": "engine.release", "t": 30.0, "size": 2},
            {"type": "event", "name": "unrelated", "t": 5.0, "size": 99},
            "garbage",
        ]
        timeline = utilization_timeline(records)
        # simultaneous events collapse to one point per timestamp
        assert timeline == [(0.0, 6), (10.0, 2), (30.0, 0)]
        # 6 nodes for 10s + 2 nodes for 20s over 8 nodes * 30s
        assert mean_utilization(timeline, 8) == pytest.approx(100.0 / 240.0)

    def test_engine_trace_ends_drained(self, tmp_path):
        path = tmp_path / "t.jsonl"
        run_simulation(32, FCFSEasy(), _jobs(), trace=path)
        timeline = utilization_timeline(read_trace(path))
        assert timeline[-1][1] == 0  # all nodes released at the end
        assert max(busy for _, busy in timeline) <= 32
        assert min(busy for _, busy in timeline) >= 0

    def test_validation(self):
        with pytest.raises(ValueError, match="num_nodes"):
            mean_utilization([(0.0, 1), (1.0, 0)], 0)
        assert mean_utilization([], 4) == 0.0


class TestManifestDiff:
    def test_identical_minus_volatile(self):
        a = RunManifest.create(kind="simulate", seed=1, config={"n": 2},
                               summary={"wait": 3.0})
        b = RunManifest.create(kind="simulate", seed=1, config={"n": 2},
                               summary={"wait": 3.0})
        assert diff_manifests(a, b) == []

    def test_nested_and_one_sided_fields(self):
        a = RunManifest.create(kind="simulate", seed=1,
                               config={"n": 2, "only_a": True},
                               summary={"wait": 4.0})
        b = RunManifest.create(kind="simulate", seed=1, config={"n": 3},
                               summary={"wait": 5.0})
        diffs = {d.path: d for d in diff_manifests(a, b)}
        assert diffs["config.n"].baseline == 2
        assert diffs["config.n"].current == 3
        assert diffs["config.only_a"].current is None
        assert diffs["summary.wait"].rel_change == pytest.approx(0.25)
        # non-numeric pairs have no relative change
        assert diffs["config.only_a"].rel_change is None

    def test_accepts_plain_dicts(self):
        a = {"seed": 1, "created_unix": 100}
        b = {"seed": 2, "created_unix": 999}
        (diff,) = diff_manifests(a, b)
        assert diff.path == "seed"  # created_unix is volatile, excluded


class TestSummarize:
    def test_summarize_and_format(self, tmp_path):
        path = tmp_path / "t.jsonl"
        result = run_simulation(32, FCFSEasy(), _jobs(), trace=path)
        summary = summarize_trace(path)
        assert summary.n_unclosed == 0
        assert summary.decision_histogram.n == result.num_instances
        assert summary.event_counts["engine.allocate"] == len(
            result.finished_jobs)
        assert summary.peak_busy_nodes <= 32
        t0, t1 = summary.sim_time_span
        assert t0 <= t1
        text = format_trace_summary(summary)
        assert "engine.instance" in text
        assert "decision latency" in text

    def test_summarize_tolerates_truncation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        run_simulation(32, FCFSEasy(), _jobs(n=40), trace=path)
        lines = path.read_text().splitlines()
        # cut mid-run and corrupt the tail, as a crash would
        truncated = tmp_path / "crash.jsonl"
        truncated.write_text(
            "\n".join(lines[: len(lines) // 2]) + '\n{"type": "beg')
        with pytest.warns(UserWarning):
            summary = summarize_trace(truncated)
        assert summary.n_records > 0
