"""Shared experiment infrastructure: scales, traces, trained agents.

The expensive pieces (workload generation, agent training, the
seven-method evaluation) are cached per ``(scale, seed)`` inside one
process so that the Fig 6 / Fig 7 / Fig 8 / Table IV benchmarks — which
all analyze the same evaluation runs, exactly as the paper does — share
the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.analysis.comparison import MethodResult, evaluate_method
from repro.core.config import DRASConfig
from repro.core.decima import DecimaPG
from repro.core.dras_dql import DRASDQL
from repro.core.dras_pg import DRASPG
from repro.rl.curriculum import train_with_curriculum
from repro.rl.trainer import TrainingHistory
from repro.schedulers import BinPacking, FCFSEasy, KnapsackOptimization, RandomScheduler
from repro.sim.job import Job
from repro.workload.models import CoriModel, ThetaModel, WorkloadModel


@dataclass(frozen=True)
class Scale:
    """Knobs controlling experiment cost.

    ``paper`` reproduces the full-size setup; smaller scales shrink the
    system, the traces and the curriculum together, preserving offered
    load and the train/validate/test structure.
    """

    name: str
    theta_nodes: int
    cori_nodes: int
    window: int
    #: jobs in the reference ("real") trace used for training material
    train_jobs: int
    #: jobs in the held-out validation trace
    validation_jobs: int
    #: jobs in the test trace (the paper tests on 21 months / 15 weeks)
    test_jobs: int
    #: curriculum sizes (sampled, real, synthetic)
    n_sampled: int
    n_real: int
    n_synthetic: int
    jobs_per_set: int
    #: capacity systems see far more (small) jobs than capability
    #: systems over the same horizon; Cori trace sizes are multiplied
    #: by this factor
    cori_jobs_factor: int = 3


_SCALES: dict[str, Scale] = {
    "tiny": Scale(
        name="tiny",
        theta_nodes=64,
        cori_nodes=96,
        window=8,
        train_jobs=500,
        validation_jobs=250,
        test_jobs=350,
        n_sampled=2,
        n_real=2,
        n_synthetic=2,
        jobs_per_set=100,
    ),
    "default": Scale(
        name="default",
        theta_nodes=256,
        cori_nodes=384,
        window=16,
        train_jobs=2000,
        validation_jobs=400,
        test_jobs=1200,
        n_sampled=4,
        n_real=4,
        n_synthetic=12,
        jobs_per_set=250,
    ),
    "paper": Scale(
        name="paper",
        theta_nodes=4360,
        cori_nodes=12076,
        window=50,
        train_jobs=10000,
        validation_jobs=5000,
        test_jobs=100000,
        n_sampled=9,
        n_real=9,
        n_synthetic=82,
        jobs_per_set=3200,
    ),
}


def get_scale(scale: str | Scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    try:
        return _SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; available: {sorted(_SCALES)}"
        ) from None


@dataclass(frozen=True)
class SystemSetup:
    """One system's model, traces and DRAS configuration."""

    system: str
    model: WorkloadModel
    config: DRASConfig
    train_trace: list[Job]
    validation_trace: list[Job]
    test_trace: list[Job]


@lru_cache(maxsize=8)
def system_setup(system: str, scale_name: str, seed: int = 0) -> SystemSetup:
    """Build the model, traces and agent config for one system."""
    scale = get_scale(scale_name)
    if system == "theta":
        model = ThetaModel.scaled(scale.theta_nodes)
        objective = "capability"
        time_scale = ThetaModel.MAX_RUNTIME
    elif system == "cori":
        model = CoriModel.scaled(scale.cori_nodes)
        objective = "capacity"
        time_scale = CoriModel.MAX_RUNTIME
    else:
        raise ValueError(f"unknown system {system!r}; expected 'theta' or 'cori'")
    config = DRASConfig.scaled(
        model.num_nodes,
        objective=objective,
        window=scale.window,
        time_scale=time_scale,
        seed=seed,
    )
    factor = scale.cori_jobs_factor if system == "cori" else 1
    rng = np.random.default_rng(seed)
    return SystemSetup(
        system=system,
        model=model,
        config=config,
        train_trace=model.generate(scale.train_jobs * factor, rng),
        validation_trace=model.generate(scale.validation_jobs * factor, rng),
        test_trace=model.generate(scale.test_jobs * factor, rng),
    )


def make_agent(kind: str, config: DRASConfig):
    """Build a fresh learning agent: ``pg`` / ``dql`` / ``decima``."""
    if kind == "pg":
        return DRASPG(config)
    if kind == "dql":
        return DRASDQL(config)
    if kind == "decima":
        return DecimaPG(config)
    raise ValueError(f"unknown agent kind {kind!r}")


@lru_cache(maxsize=16)
def trained_agent(
    kind: str, system: str, scale_name: str, seed: int = 0
) -> tuple[object, TrainingHistory]:
    """Train one agent with the three-phase curriculum (cached)."""
    scale = get_scale(scale_name)
    setup = system_setup(system, scale_name, seed)
    agent = make_agent(kind, setup.config)
    history = train_with_curriculum(
        agent,
        setup.model,
        setup.train_trace,
        setup.validation_trace,
        np.random.default_rng(seed),
        n_sampled=scale.n_sampled,
        n_real=scale.n_real,
        n_synthetic=scale.n_synthetic,
        jobs_per_set=scale.jobs_per_set,
    )
    return agent, history


def fresh_trained_agent(kind: str, system: str, scale_name: str, seed: int = 0):
    """A *new* agent loaded with the cached trained weights.

    :func:`full_comparison` keeps online learning on during evaluation,
    mutating the cached agent; experiments that need the
    pristine post-training policy (e.g. Fig 9) rebuild from the last
    training snapshot instead.
    """
    _, history = trained_agent(kind, system, scale_name, seed)
    setup = system_setup(system, scale_name, seed)
    agent = make_agent(kind, setup.config)
    agent.load_state_dict(history.snapshots[-1])
    return agent


def baseline_schedulers(objective: str, window: int = 100, seed: int = 0) -> list:
    """The four non-learning baselines of §IV-A."""
    return [
        FCFSEasy(),
        BinPacking(),
        RandomScheduler(seed=seed),
        KnapsackOptimization(objective, window=window),
    ]


@lru_cache(maxsize=8)
def full_comparison(
    system: str, scale_name: str, seed: int = 0
) -> dict[str, MethodResult]:
    """Evaluate all seven methods on the test trace (cached).

    DRAS and Decima agents are trained first, then evaluated with
    online learning enabled (the paper's deployment mode).  Returns
    ``{method name: MethodResult}`` in the paper's method order.
    """
    setup = system_setup(system, scale_name, seed)
    methods: list = baseline_schedulers(setup.config.objective, seed=seed)
    for kind in ("decima", "pg", "dql"):
        agent, _ = trained_agent(kind, system, scale_name, seed)
        agent.eval(online_learning=True)
        methods.append(agent)
    results: dict[str, MethodResult] = {}
    for scheduler in methods:
        results[scheduler.name] = evaluate_method(
            scheduler, setup.test_trace, setup.model.num_nodes
        )
    return results


#: canonical method display order used by the paper's figures
METHOD_ORDER = (
    "FCFS",
    "BinPacking",
    "Random",
    "Optimization",
    "Decima-PG",
    "DRAS-PG",
    "DRAS-DQL",
)
