"""The lint engine: file walking, suppression comments, reporting.

Suppression syntax (checked per physical line, flake8-style):

* ``# repro: noqa`` — suppress every rule on that line;
* ``# repro: noqa[slug]`` / ``# repro: noqa[slug, slug2]`` — suppress
  only the named rules (slug or rule id, e.g. ``float-time-eq`` or
  ``RPR105``);
* ``# repro: noqa-file`` / ``# repro: noqa-file[slug]`` — same, for the
  whole file, on a line of its own anywhere in the file.

Every suppression should carry a justification comment next to it —
the linter cannot check that, but reviewers can.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.check.rules import RULES, FileContext, Rule

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?\s*(?:\[(?P<rules>[^\]]*)\])?",
)


@dataclass(frozen=True)
class Violation:
    """One reported lint violation."""

    path: str
    line: int
    col: int
    rule_id: str
    slug: str
    message: str

    def format(self) -> str:
        """The conventional ``path:line:col: ID [slug] message`` line."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} [{self.slug}] {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Which rules run where.

    ``scopes`` overrides a rule's ``default_scopes`` (path fragments the
    rule is limited to; ``None`` entry = everywhere).  ``whitelists``
    exempts path fragments from a rule entirely — the shipped default
    exempts the profiling modules from the wall-clock rule, and the
    linter's own rule definitions (whose docstrings/regexes mention the
    banned constructs) from everything.
    """

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    scopes: dict[str, tuple[str, ...] | None] = field(default_factory=dict)
    whitelists: dict[str, tuple[str, ...]] = field(default_factory=lambda: {
        "wall-clock": ("sim/profile.py", "experiments/overhead.py",
                       "experiments/runner.py"),
    })
    #: path fragments never linted at all
    exclude: tuple[str, ...] = ("check/rules.py", "check/lint.py")

    def rules(self) -> list[Rule]:
        """The registered rules this configuration selects, sorted."""
        chosen = []
        for slug, rule in sorted(RULES.items()):
            if self.select is not None and slug not in self.select \
                    and rule.id not in self.select:
                continue
            if slug in self.ignore or rule.id in self.ignore:
                continue
            chosen.append(rule)
        return chosen

    def with_overrides(
        self,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> "LintConfig":
        """A copy with ``select``/``ignore`` replaced when provided."""
        return replace(
            self,
            select=frozenset(select) if select else self.select,
            ignore=frozenset(ignore) if ignore else self.ignore,
        )


class _Suppressions:
    """Per-file suppression table parsed from ``# repro: noqa`` comments."""

    def __init__(self, source: str) -> None:
        self.file_all = False
        self.file_rules: set[str] = set()
        self.line_all: set[int] = set()
        self.line_rules: dict[int, set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            m = _NOQA.search(text)
            if m is None:
                continue
            rules = {
                r.strip() for r in (m.group("rules") or "").split(",") if r.strip()
            }
            if m.group("file"):
                if rules:
                    self.file_rules |= rules
                else:
                    self.file_all = True
            elif rules:
                self.line_rules.setdefault(lineno, set()).update(rules)
            else:
                self.line_all.add(lineno)

    def suppressed(self, line: int, rule: Rule) -> bool:
        keys = {rule.slug, rule.id}
        if self.file_all or (self.file_rules & keys):
            return True
        if line in self.line_all:
            return True
        return bool(self.line_rules.get(line, set()) & keys)


def _rule_applies(rule: Rule, config: LintConfig, ctx: FileContext) -> bool:
    whitelist = config.whitelists.get(rule.slug) or config.whitelists.get(rule.id)
    if whitelist and ctx.path_matches(whitelist):
        return False
    scopes = config.scopes.get(rule.slug, rule.default_scopes)
    if scopes is not None and not ctx.path_matches(scopes):
        return False
    return True


def lint_source(
    source: str, path: str = "<string>", config: LintConfig | None = None
) -> list[Violation]:
    """Lint one module's source text."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(
            path, exc.lineno or 1, (exc.offset or 1) - 1, "RPR000",
            "syntax-error", f"file does not parse: {exc.msg}",
        )]
    ctx = FileContext(path, source, tree)
    suppressions = _Suppressions(source)
    violations: list[Violation] = []
    for rule in config.rules():
        if not _rule_applies(rule, config, ctx):
            continue
        for finding in rule.check(tree, ctx):
            if suppressions.suppressed(finding.line, rule):
                continue
            violations.append(Violation(
                ctx.path, finding.line, finding.col,
                rule.id, rule.slug, finding.message,
            ))
    violations.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return violations


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Sequence[str | Path], config: LintConfig | None = None
) -> list[Violation]:
    """Lint every ``.py`` file under ``paths``; missing paths error."""
    config = config or LintConfig()
    for raw in paths:
        if not Path(raw).exists():
            raise FileNotFoundError(f"lint target does not exist: {raw}")
    violations: list[Violation] = []
    for file in iter_python_files(paths):
        posix = file.as_posix()
        if any(posix.endswith(fragment) for fragment in config.exclude):
            continue
        violations.extend(
            lint_source(file.read_text(encoding="utf-8"), posix, config)
        )
    return violations
