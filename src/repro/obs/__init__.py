"""Observability layer: tracing, metrics, profiling, analytics, reports.

``repro.obs`` gives every long simulation and training run visibility,
all designed around the same contract as the PR 1 sanitizer:
**disabled-path cost is one boolean/None check**, and an instrumented
run is bit-identical to an uninstrumented one (the layer only ever
*observes* — it never touches simulation or RNG state).

* :mod:`repro.obs.trace` — a near-zero-overhead structured event tracer
  writing JSONL spans/counters/events.  Activate globally with
  ``REPRO_TRACE=/path/to/trace.jsonl`` or per-engine with
  ``Engine(trace=...)``.  The engine emits scheduler-decision spans and
  allocate/release/backfill events; the NN stack emits
  forward/backward/optimizer-step spans.  Traces survive crashes: the
  buffered tail is flushed on engine exit and at interpreter exit.
* :mod:`repro.obs.profile` — a deterministic hierarchical wall-time
  profiler (call counts + cumulative/self seconds per scope path).
  Activate globally with ``REPRO_PROFILE=/path/to/profile.json`` or
  per-engine with ``Engine(profile=...)``.
* :mod:`repro.obs.metrics` — lightweight always-on counters, gauges and
  wall-clock timers (with EMA smoothing) grouped in a
  :class:`~repro.obs.metrics.MetricsRegistry`, exposed from
  :class:`~repro.sim.engine.Engine`, :class:`~repro.rl.trainer.Trainer`
  and every scheduler.
* :mod:`repro.obs.manifest` — :class:`~repro.obs.manifest.RunManifest`
  records what produced a result file: seed, git SHA, configuration,
  workload-model parameters and summary metrics.  Manifests with the
  same inputs are identical minus timestamps.
* :mod:`repro.obs.analyze` — post-run trace analytics: span-time
  rollups, scheduler decision-latency histograms, node-utilization
  timeline reconstruction and manifest diffing.
* :mod:`repro.obs.report` — a dependency-free self-contained HTML run
  report (inline SVG charts) behind ``python -m repro report`` and the
  ``--report`` flag of the run commands.
* :mod:`repro.obs.bench` — the perf-benchmark harness behind
  ``python -m repro bench``, writing ``BENCH_sim.json`` /
  ``BENCH_nn.json`` regression baselines.

See ``docs/observability.md`` and ``docs/benchmarks.md`` for usage.
"""

from __future__ import annotations

from repro.obs.analyze import (
    Histogram,
    ManifestDiff,
    SpanRollup,
    TraceSummary,
    decision_latencies,
    diff_manifests,
    format_trace_summary,
    latency_histogram,
    mean_utilization,
    rollup_spans,
    summarize_trace,
    utilization_timeline,
)
from repro.obs.manifest import RunManifest, describe_workload, git_sha
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.profile import (
    Profiler,
    global_profiler,
    set_global_profiler,
)
from repro.obs.report import render_report, write_report
from repro.obs.trace import (
    Span,
    Tracer,
    TraceWarning,
    build_span_tree,
    global_tracer,
    read_trace,
    set_global_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "ManifestDiff",
    "MetricsRegistry",
    "Profiler",
    "RunManifest",
    "Span",
    "SpanRollup",
    "Timer",
    "TraceSummary",
    "TraceWarning",
    "Tracer",
    "build_span_tree",
    "decision_latencies",
    "describe_workload",
    "diff_manifests",
    "format_trace_summary",
    "git_sha",
    "global_profiler",
    "global_tracer",
    "latency_histogram",
    "mean_utilization",
    "read_trace",
    "render_report",
    "rollup_spans",
    "set_global_profiler",
    "set_global_tracer",
    "summarize_trace",
    "utilization_timeline",
    "write_report",
]
