"""Unit tests for DRAS-DQL: ε-greedy, TD transitions, updates."""

import numpy as np
import pytest

from repro.core.config import DRASConfig
from repro.core.dras_dql import DRASDQL
from repro.sim.engine import run_simulation
from repro.sim.job import ExecMode, JobState
from tests.conftest import make_job


def small_config(**overrides):
    base = dict(num_nodes=8, window=3, hidden1=12, hidden2=6, seed=0,
                objective="capability", time_scale=100.0)
    base.update(overrides)
    return DRASConfig(**base)


class TestScheduling:
    def test_runs_full_jobset(self):
        agent = DRASDQL(small_config())
        jobs = [make_job(size=s, walltime=50.0, submit=float(i * 5))
                for i, s in enumerate((2, 4, 8, 1, 2, 4))]
        result = run_simulation(8, agent, jobs)
        assert all(j.state is JobState.FINISHED for j in result.jobs)

    def test_hierarchy_reserves_blocked_job(self):
        agent = DRASDQL(small_config())
        blocker = make_job(size=7, walltime=100.0, submit=0.0)
        big = make_job(size=8, walltime=10.0, submit=1.0)
        tiny = make_job(size=1, walltime=20.0, submit=2.0)
        run_simulation(8, agent, [blocker, big, tiny])
        # the whole-system job can only start via reservation...
        assert big.mode is ExecMode.RESERVED
        assert big.start_time == pytest.approx(100.0)
        # ...while the 1-node job slips ahead (READY if level-1 picked it
        # before the reservation existed, BACKFILLED otherwise)
        assert tiny.mode in (ExecMode.READY, ExecMode.BACKFILLED)
        assert tiny.start_time < big.start_time

    def test_q_values_shape(self):
        agent = DRASDQL(small_config())
        from repro.sim.cluster import Cluster
        from repro.sim.engine import Engine, SchedulingView

        engine = Engine(Cluster(8), agent, [])
        view = SchedulingView(engine)
        jobs = [make_job(size=1), make_job(size=2)]
        batch, q = agent.q_values(jobs, view)
        assert batch.shape == (2, agent.encoder.dql_rows, 2)
        assert q.shape == (2,)


class TestEpsilon:
    def test_decays_per_update(self):
        agent = DRASDQL(small_config(update_every=1))
        jobs = [make_job(size=2, walltime=20.0, submit=float(i * 30))
                for i in range(10)]
        run_simulation(8, agent, jobs)
        assert agent.updates_done > 0
        expected = max(
            agent.config.epsilon_min,
            agent.config.epsilon_start * agent.config.epsilon_decay ** agent.updates_done,
        )
        assert agent.epsilon == pytest.approx(expected)

    def test_floor_respected(self):
        agent = DRASDQL(small_config(epsilon_start=0.05, epsilon_min=0.04,
                                     epsilon_decay=0.5, update_every=1))
        jobs = [make_job(size=2, walltime=20.0, submit=float(i * 30))
                for i in range(10)]
        run_simulation(8, agent, jobs)
        assert agent.epsilon == pytest.approx(0.04)

    def test_eval_mode_greedy(self):
        """With learning off, identical Q inputs give a deterministic pick."""
        agent = DRASDQL(small_config())
        agent.eval(online_learning=False)

        def run_once():
            jobs = [make_job(size=s, walltime=20.0, submit=0.0)
                    for s in (1, 2, 4)]
            run_simulation(8, agent, jobs)
            return [j.start_time for j in jobs]

        assert run_once() == run_once()


class TestTransitions:
    def test_updates_and_memory_flush(self):
        agent = DRASDQL(small_config(update_every=2))
        jobs = [make_job(size=2, walltime=20.0, submit=float(i * 30))
                for i in range(12)]
        run_simulation(8, agent, jobs)
        assert agent.updates_done >= 2
        assert agent._pending == []

    def test_parameters_move_when_learning(self):
        agent = DRASDQL(small_config(update_every=2))
        before = {k: v.copy() for k, v in agent.state_dict().items()}
        jobs = [make_job(size=2, walltime=20.0, submit=float(i * 3))
                for i in range(12)]
        run_simulation(8, agent, jobs)
        after = agent.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_frozen_eval_keeps_parameters(self):
        agent = DRASDQL(small_config())
        agent.eval(online_learning=False)
        before = {k: v.copy() for k, v in agent.state_dict().items()}
        jobs = [make_job(size=2, walltime=20.0, submit=float(i * 3))
                for i in range(12)]
        run_simulation(8, agent, jobs)
        after = agent.state_dict()
        assert all(np.allclose(before[k], after[k]) for k in before)
        assert agent.epsilon == agent.config.epsilon_start

    def test_terminal_transition_bootstraps_zero(self):
        agent = DRASDQL(small_config(update_every=10_000))
        jobs = [make_job(size=2, walltime=20.0, submit=0.0)]
        run_simulation(8, agent, jobs)
        # single selection: flushed at episode end with next_max_q = 0
        assert agent.updates_done == 1
        assert agent._pending == []

    def test_losses_recorded(self):
        agent = DRASDQL(small_config(update_every=1))
        jobs = [make_job(size=2, walltime=20.0, submit=float(i * 30))
                for i in range(6)]
        run_simulation(8, agent, jobs)
        assert len(agent.losses) == agent.updates_done
        assert all(np.isfinite(l) for l in agent.losses)


class TestLearning:
    def test_q_learns_reward_preference(self):
        """DQL learns to Q-rank the reward-bearing job above the other."""
        cfg = small_config(update_every=1, learning_rate=0.05,
                           epsilon_start=1.0, epsilon_decay=0.9,
                           epsilon_min=0.0,
                           reward_kwargs={"w1": 0.0, "w2": 1.0, "w3": 0.0})
        agent = DRASDQL(cfg)
        for _ in range(60):
            jobs = [
                make_job(size=1, walltime=10.0, submit=0.0),
                make_job(size=8, walltime=10.0, submit=0.0),
            ]
            run_simulation(8, agent, jobs)
        agent.eval(online_learning=False)
        from repro.sim.cluster import Cluster
        from repro.sim.engine import Engine

        chosen = []

        class Spy:
            def on_start(self, job, now):
                chosen.append(job.size)

        probe = [
            make_job(size=1, walltime=10.0, submit=0.0),
            make_job(size=8, walltime=10.0, submit=0.0),
        ]
        Engine(Cluster(8), agent, probe, observers=[Spy()]).run()
        assert chosen[0] == 8
