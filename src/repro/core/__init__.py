"""DRAS — the paper's primary contribution.

This package implements the Deep Reinforcement Agent for Scheduling:

* :mod:`repro.core.rewards` — the capability (Eq. 1) and capacity
  (Eq. 2) reward functions;
* :mod:`repro.core.state` — the job/node state encoding of §III-A;
* :mod:`repro.core.config` — network and agent configuration, including
  the exact Table III architectures;
* :mod:`repro.core.agent` — the hierarchical two-level decision loop of
  §III-B shared by both agents;
* :mod:`repro.core.dras_pg` / :mod:`repro.core.dras_dql` — the policy
  gradient and deep Q-learning variants;
* :mod:`repro.core.decima` — the flat Decima-PG baseline (a policy
  gradient agent without the hierarchical structure or reservations).
"""

from repro.core.rewards import (
    CapabilityReward,
    CapacityReward,
    RewardFunction,
    make_reward,
)
from repro.core.state import StateEncoder
from repro.core.config import DRASConfig, NetworkDims, table3_configs
from repro.core.agent import HierarchicalAgent
from repro.core.dras_pg import DRASPG
from repro.core.dras_dql import DRASDQL
from repro.core.decima import DecimaPG

__all__ = [
    "CapabilityReward",
    "CapacityReward",
    "DRASConfig",
    "DRASDQL",
    "DRASPG",
    "DecimaPG",
    "HierarchicalAgent",
    "NetworkDims",
    "RewardFunction",
    "StateEncoder",
    "make_reward",
    "table3_configs",
]
