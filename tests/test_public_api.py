"""Public-API surface tests.

Guards the contract a downstream user relies on: everything advertised
in ``__all__`` actually resolves, the version is set, and every example
script at least compiles against the current API.
"""

import importlib
import pathlib
import py_compile

import pytest

PACKAGES = (
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.nn",
    "repro.rl",
    "repro.schedulers",
    "repro.sim",
    "repro.workload",
)


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), package
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_sorted_and_unique(self, package):
        module = importlib.import_module(package)
        exported = [n for n in module.__all__ if n != "__version__"]
        assert len(exported) == len(set(exported)), package

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_star_import_clean(self):
        namespace: dict = {}
        exec("from repro import *", namespace)  # noqa: S102 - deliberate
        assert "DRASPG" in namespace
        assert "run_simulation" in namespace


class TestExamples:
    EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

    def test_examples_exist(self):
        scripts = sorted(self.EXAMPLES_DIR.glob("*.py"))
        names = {s.name for s in scripts}
        assert "quickstart.py" in names
        assert len(scripts) >= 3  # the deliverable minimum

    @pytest.mark.parametrize(
        "script",
        sorted(
            (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
        ),
        ids=lambda p: p.name,
    )
    def test_example_compiles(self, script, tmp_path):
        py_compile.compile(str(script), cfile=str(tmp_path / "out.pyc"),
                           doraise=True)

    @pytest.mark.parametrize(
        "script",
        sorted(
            (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
        ),
        ids=lambda p: p.name,
    )
    def test_example_has_main_and_docstring(self, script):
        text = script.read_text()
        assert 'if __name__ == "__main__":' in text, script.name
        assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""')), (
            f"{script.name} must start with a shebang + module docstring"
        )


class TestCLIEntry:
    def test_module_entrypoint_exists(self):
        import repro.__main__  # noqa: F401

    def test_parser_builds(self):
        from repro.cli import build_parser

        parser = build_parser()
        # every documented command is registered
        text = parser.format_help()
        for command in ("reproduce", "generate", "simulate", "train",
                        "evaluate", "fit"):
            assert command in text
