"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``reproduce``
    Regenerate any of the paper's tables/figures and print the report.
``generate``
    Synthesize a Theta/Cori-like trace and write it as SWF.
``simulate``
    Replay an SWF trace under a named policy and print the metrics.
``train``
    Train a DRAS/Decima agent with the three-phase curriculum and
    checkpoint it; ``--checkpoint``/``--resume`` make the run
    crash-safe (see :mod:`repro.rl.checkpoint`).
``evaluate``
    Replay an SWF trace under a checkpointed agent.
``check``
    Run the determinism/correctness linter (:mod:`repro.check`) over
    source paths and report violations.
``bench``
    Run the perf-benchmark harness (:mod:`repro.obs.bench`) and write
    ``BENCH_sim.json`` / ``BENCH_nn.json`` regression baselines.
``report``
    Stitch run artifacts (manifest, telemetry, trace, bench, profile)
    into one self-contained HTML report (:mod:`repro.obs.report`).
``trace``
    Trace-file utilities; ``trace summarize <path>`` prints span
    rollups, decision-latency percentiles and event counts
    (:mod:`repro.obs.analyze`).
``live``
    Live-snapshot shard utilities; ``live summarize <shards...>``
    merges per-process ``repro.live/v1`` / ``repro.telemetry/v1``
    JSONL shards into one deterministic rollup
    (:mod:`repro.obs.aggregate`).

``reproduce``, ``simulate`` and ``train`` accept ``--manifest PATH`` to
write a :class:`~repro.obs.manifest.RunManifest` (seed, git SHA, config,
workload parameters, summary metrics) alongside their output, and
``--report PATH`` to emit the HTML report directly; ``train`` also
accepts ``--telemetry PATH`` for per-episode JSONL training records.
They also accept ``--faults SPEC`` to run under seeded fault injection
(:mod:`repro.sim.faults`; ``reproduce`` only for the ``faultsweep``
experiment) — see ``docs/resilience.md`` — and ``--live [PORT]`` /
``--live-record PATH`` for an in-flight view of the run (a terminal
progress/ETA line, optional ``/metrics`` + ``/status`` HTTP endpoints,
snapshot shards; :mod:`repro.obs.live`, also via the ``REPRO_LIVE``
env var) — see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

EXPERIMENTS = (
    "table1", "table2", "table3", "table4",
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "faultsweep", "overhead",
)

POLICIES = (
    "fcfs", "binpacking", "random", "knapsack",
    "sjf", "ljf", "saf", "wfp", "unicef", "conservative",
)


def make_policy(name: str, objective: str = "capability", seed: int = 0):
    """Instantiate a named non-learning policy."""
    from repro import schedulers as s

    factories = {
        "fcfs": s.FCFSEasy,
        "binpacking": s.BinPacking,
        "random": lambda: s.RandomScheduler(seed=seed),
        "knapsack": lambda: s.KnapsackOptimization(objective),
        "sjf": s.sjf,
        "ljf": s.ljf,
        "saf": s.smallest_area_first,
        "wfp": s.f1_wfp,
        "unicef": s.unicef,
        "conservative": s.ConservativeBackfill,
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {', '.join(POLICIES)}"
        ) from None


def parse_faults(spec: str | None):
    """``--faults mtbf=...,mttr=...,seed=...`` → :class:`FaultConfig` or None."""
    if spec is None:
        return None
    from repro.sim.faults import FaultConfig

    return FaultConfig.from_spec(spec)


def _make_live_bus(args: argparse.Namespace):
    """``--live [PORT]`` / ``--live-record PATH`` → a LiveBus or None.

    ``--live`` with no value shows the terminal progress/ETA line;
    ``--live PORT`` additionally serves ``/metrics`` + ``/status`` on
    ``127.0.0.1:PORT``; ``--live-record PATH`` appends every snapshot
    to a JSONL shard (mergeable with ``repro live summarize``).  With
    neither flag, returns ``None`` so components fall back to the
    ``REPRO_LIVE`` process-global bus.
    """
    from repro.obs import live as _live

    spec = getattr(args, "live", None)
    record = getattr(args, "live_record", None)
    if spec is None and record is None:
        return None
    bus = _live.live_from_spec(spec if spec is not None else "1")
    server = getattr(bus, "server", None)
    if server is not None:
        print(f"live: serving /metrics and /status on "
              f"http://127.0.0.1:{server.port}", file=sys.stderr)
    if record is not None:
        bus.attach(_live.SnapshotWriter(record))
        print(f"live: recording snapshots to {record}", file=sys.stderr)
    return bus


def _print_resilience(result) -> None:
    """Print the resilience block of a faulted simulation result."""
    r = result.resilience
    if r is None:
        return
    print("  -- faults --")
    print(f"  node failures   {r.node_failures} ({r.nodes_failed} nodes)")
    print(f"  jobs killed     {r.jobs_killed} "
          f"(requeued {r.requeues}, abandoned {r.abandoned})")
    print(f"  lost capacity   {r.lost_node_seconds / 3600:.1f} node-h")
    print(f"  wasted work     {r.wasted_node_seconds / 3600:.1f} node-h")
    print(f"  degraded util   {r.degraded_utilization:.3f}")


# -- report assembly helper ----------------------------------------------------

def _emit_report(
    out: str,
    title: str,
    manifest_path: str | None = None,
    metrics: dict | None = None,
    telemetry_path: str | None = None,
    trace_path: str | None = None,
    bench_paths: tuple = (),
    profile_path: str | None = None,
) -> None:
    """Load whatever artifacts exist and write the HTML report."""
    from repro.obs.analyze import summarize_trace
    from repro.obs.report import write_report
    from repro.rl.telemetry import episode_records, read_telemetry

    def load(path):
        return json.loads(Path(path).read_text(encoding="utf-8"))

    path = write_report(
        out,
        title=title,
        manifest=load(manifest_path) if manifest_path else None,
        metrics=metrics,
        telemetry=(episode_records(read_telemetry(telemetry_path))
                   if telemetry_path else None),
        trace=summarize_trace(trace_path) if trace_path else None,
        bench=[load(p) for p in bench_paths] or None,
        profile=load(profile_path) if profile_path else None,
    )
    print(f"wrote report to {path}")


# -- subcommand implementations ------------------------------------------------

def cmd_reproduce(args: argparse.Namespace) -> int:
    if args.faults and args.experiment != "faultsweep":
        print("--faults applies only to the faultsweep experiment",
              file=sys.stderr)
        return 2

    # the live bus is installed process-globally so every simulation an
    # experiment runs internally publishes to it (the faultsweep also
    # publishes its own per-cell "sweep" snapshots)
    live = _make_live_bus(args)
    if live is not None:
        from repro.obs.live import set_global_live_bus

        set_global_live_bus(live)
        try:
            return _cmd_reproduce_body(args)
        finally:
            set_global_live_bus(None)
            live.close()
    return _cmd_reproduce_body(args)


def _cmd_reproduce_body(args: argparse.Namespace) -> int:
    import importlib

    if args.experiment == "all":
        from repro.experiments.runner import combined_report, run_all

        reports = run_all(
            scale=args.scale,
            seed=args.seed,
            full_size_overhead=not args.scaled_overhead,
            progress=lambda msg: print(f"  [{msg}]", file=sys.stderr),
            manifest_path=args.manifest,
        )
        text = combined_report(reports, args.scale)
        if args.out:
            Path(args.out).write_text(text + "\n")
        print(text)
        if args.report:
            _emit_report(args.report, "reproduce all",
                         manifest_path=args.manifest)
        return 0

    module = importlib.import_module(f"repro.experiments.{args.experiment}")
    if args.experiment in ("table1",):
        result = module.run()
    elif args.experiment in ("table3",):
        result = module.run()
    elif args.experiment == "overhead":
        result = module.run(full_size=not args.scaled_overhead)
    elif args.experiment == "faultsweep":
        result = module.run(args.scale, seed=args.seed,
                            faults=parse_faults(args.faults))
    else:
        result = module.run(args.scale, seed=args.seed)
    text = module.report(result)
    if args.out:
        Path(args.out).write_text(text + "\n")
    if args.manifest:
        from repro.obs.manifest import RunManifest

        RunManifest.create(
            kind="reproduce",
            seed=args.seed,
            config={"experiment": args.experiment, "scale": args.scale},
            summary={"report_chars": len(text)},
        ).write(args.manifest)
    print(text)
    if args.report:
        _emit_report(args.report, f"reproduce {args.experiment}",
                     manifest_path=args.manifest)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.workload import CoriModel, ThetaModel, write_swf

    factory = ThetaModel if args.system == "theta" else CoriModel
    model = factory.scaled(args.nodes) if args.nodes else factory.paper()
    rng = np.random.default_rng(args.seed)
    jobs = model.generate(args.jobs, rng, load_factor=args.load_factor)
    write_swf(
        jobs, args.out,
        header=f"synthetic {model.name} trace, {args.jobs} jobs, seed {args.seed}",
    )
    print(f"wrote {len(jobs)} jobs ({model.name}) to {args.out}")
    return 0


def _print_metrics(name: str, result) -> None:
    from repro.sim.metrics import RunMetrics

    m = RunMetrics.from_result(result)
    print(f"{name}:")
    print(f"  jobs            {m.num_jobs}")
    print(f"  avg wait        {m.avg_wait / 3600:.2f} h")
    print(f"  max wait        {m.max_wait / 3600:.2f} h")
    print(f"  avg response    {m.avg_response / 3600:.2f} h")
    print(f"  avg slowdown    {m.avg_slowdown:.2f}")
    print(f"  utilization     {m.utilization:.3f}")
    print(f"  makespan        {m.makespan / 3600:.2f} h")


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.engine import run_simulation
    from repro.workload import read_swf

    jobs = read_swf(args.trace, procs_per_node=args.procs_per_node,
                    max_jobs=args.max_jobs)
    if not jobs:
        print("trace contains no usable jobs", file=sys.stderr)
        return 1
    policy = make_policy(args.policy, objective=args.objective, seed=args.seed)
    faults = parse_faults(args.faults)
    live = _make_live_bus(args)
    try:
        result = run_simulation(args.nodes, policy, jobs,
                                trace=args.trace_out, faults=faults,
                                live=live)
    finally:
        if live is not None:
            live.close()
    _print_metrics(policy.name, result)
    _print_resilience(result)
    if args.manifest:
        from repro.obs.manifest import RunManifest
        from repro.sim.metrics import RunMetrics

        summary = RunMetrics.from_result(result).as_dict()
        if result.resilience is not None:
            summary["resilience"] = result.resilience.as_dict()
        RunManifest.create(
            kind="simulate",
            seed=args.seed,
            config={
                "trace": args.trace,
                "nodes": args.nodes,
                "policy": args.policy,
                "objective": args.objective,
                "procs_per_node": args.procs_per_node,
                "max_jobs": args.max_jobs,
                "faults": faults.as_dict() if faults is not None else None,
            },
            summary=summary,
        ).write(args.manifest)
    if args.report:
        from repro.sim.metrics import RunMetrics

        _emit_report(
            args.report, f"simulate {args.policy}",
            manifest_path=args.manifest,
            metrics=RunMetrics.from_result(result).as_dict(),
            trace_path=args.trace_out,
        )
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from repro.core.config import DRASConfig
    from repro.core.persistence import save_agent
    from repro.experiments.common import make_agent
    from repro.rl.curriculum import train_with_curriculum
    from repro.rl.trainer import TrainingHistory
    from repro.workload import CoriModel, ThetaModel

    factory = ThetaModel if args.system == "theta" else CoriModel
    model = factory.scaled(args.nodes)
    objective = "capability" if args.system == "theta" else "capacity"
    config = DRASConfig.scaled(
        args.nodes, objective=objective, window=args.window,
        time_scale=factory.MAX_RUNTIME, seed=args.seed,
    )
    faults = parse_faults(args.faults)
    history = None
    resume_offset = None
    if args.resume:
        from repro.rl.checkpoint import episode_stats_from_json, load_checkpoint

        loaded = load_checkpoint(args.resume)
        agent = loaded.agent
        history = TrainingHistory(
            episodes=episode_stats_from_json(loaded.episodes)
        )
        resume_offset = loaded.telemetry_offset
        if faults is None:
            faults = loaded.faults
        print(f"resuming from {args.resume}: "
              f"{loaded.episodes_done} episodes already done")
    else:
        agent = make_agent(args.agent, config)
    checkpoint_path = args.checkpoint or args.resume
    rng = np.random.default_rng(args.seed)
    base = model.generate(args.train_jobs, rng)
    validation = model.generate(max(50, args.train_jobs // 5), rng)
    # --report without an explicit --telemetry still records telemetry,
    # into a sidecar next to the checkpoint
    telemetry_path = args.telemetry
    if telemetry_path is None and args.report:
        telemetry_path = args.out + ".telemetry.jsonl"
    telemetry = None
    if telemetry_path is not None:
        from repro.rl.telemetry import TelemetryWriter

        telemetry = TelemetryWriter(
            telemetry_path,
            meta={"agent": args.agent, "system": args.system,
                  "seed": args.seed},
            resume_at=resume_offset,
        )
    live = _make_live_bus(args)
    try:
        history = train_with_curriculum(
            agent, model, base, validation, rng,
            n_sampled=args.sampled, n_real=args.real,
            n_synthetic=args.synthetic,
            jobs_per_set=args.jobs_per_set,
            telemetry=telemetry,
            faults=faults,
            checkpoint_path=checkpoint_path,
            checkpoint_every=args.checkpoint_every,
            history=history,
            live=live,
        )
    finally:
        if live is not None:
            live.close()
        if telemetry is not None:
            telemetry.close()
            print(f"wrote {telemetry.n_written} telemetry records "
                  f"to {telemetry_path}")
    save_agent(agent, args.out)
    curve = history.validation_curve
    print(f"trained {len(history.episodes)} episodes; validation reward "
          f"{curve[0]:.1f} -> {curve[-1]:.1f} (best {curve.max():.1f})")
    converged = history.converged_at()
    print(f"converged at episode: {converged if converged is not None else 'never'}")
    print(f"checkpoint written to {args.out}")
    if args.manifest:
        from repro.obs.manifest import RunManifest, describe_workload

        RunManifest.create(
            kind="train",
            seed=args.seed,
            config={
                "system": args.system,
                "agent": args.agent,
                "nodes": args.nodes,
                "window": args.window,
                "train_jobs": args.train_jobs,
                "curriculum": {
                    "sampled": args.sampled,
                    "real": args.real,
                    "synthetic": args.synthetic,
                    "jobs_per_set": args.jobs_per_set,
                },
                "checkpoint": args.out,
                "faults": faults.as_dict() if faults is not None else None,
                "resume": args.resume,
                "resumable_checkpoint": str(checkpoint_path)
                if checkpoint_path else None,
            },
            workload=describe_workload(model),
            summary={
                "episodes": len(history.episodes),
                "validation_first": float(curve[0]),
                "validation_last": float(curve[-1]),
                "validation_best": float(curve.max()),
                "converged_at": converged,
            },
        ).write(args.manifest)
    if args.report:
        _emit_report(
            args.report, f"train {args.agent} ({args.system})",
            manifest_path=args.manifest,
            telemetry_path=telemetry_path,
        )
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    from repro.workload import analyze_trace, fit_model, read_swf, write_swf

    jobs = read_swf(args.trace, procs_per_node=args.procs_per_node,
                    max_jobs=args.max_jobs)
    if len(jobs) < 2:
        print("trace too small to fit", file=sys.stderr)
        return 1
    stats = analyze_trace(jobs, args.nodes)
    print(f"analyzed {stats.num_jobs} jobs over "
          f"{stats.span_seconds / 86400:.1f} days:")
    print(f"  arrival rate      {stats.arrival_rate * 3600:.2f} jobs/h")
    print(f"  runtime median    {stats.runtime_median / 3600:.2f} h "
          f"(log-sigma {stats.runtime_log_sigma:.2f})")
    print(f"  mean overestimate {stats.mean_overestimate:.2f}x")
    print(f"  offered load      {stats.offered_load_per_node:.2f}")
    print(f"  size categories   {len(stats.size_mix)}")
    model = fit_model(jobs, args.nodes)
    synthetic = model.generate(args.jobs, np.random.default_rng(args.seed))
    write_swf(synthetic, args.out,
              header=f"synthetic trace fitted from {args.trace}")
    print(f"wrote {len(synthetic)} fitted synthetic jobs to {args.out}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.persistence import load_agent
    from repro.sim.engine import run_simulation
    from repro.workload import read_swf

    agent = load_agent(args.checkpoint)
    agent.eval(online_learning=not args.frozen)
    jobs = read_swf(args.trace, procs_per_node=args.procs_per_node,
                    max_jobs=args.max_jobs)
    if not jobs:
        print("trace contains no usable jobs", file=sys.stderr)
        return 1
    result = run_simulation(agent.config.num_nodes, agent, jobs)
    _print_metrics(agent.name, result)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """The ``repro check`` driver.

    Exit codes: 0 — clean (or every finding is baselined); 1 — findings;
    2 — usage/configuration error (unknown rule, missing path, bad
    baseline file).
    """
    from repro.check import RULES, LintConfig, analyze_project, lint_paths
    from repro.check import report as _report
    from repro.check.project import PROJECT_RULES, project_rules

    project_rules()  # populate PROJECT_RULES for --list-rules / validation

    if args.list_rules:
        catalogue = [
            (r.id, slug,
             ", ".join(r.default_scopes) if r.default_scopes else "all files",
             r.rationale)
            for slug, r in RULES.items()
        ]
        if args.strict:
            catalogue += [(r.id, slug, "whole program", r.rationale)
                          for slug, r in PROJECT_RULES.items()]
        for rule_id, slug, scopes, rationale in sorted(catalogue):
            print(f"{rule_id} [{slug}] ({scopes})")
            print(f"    {rationale}")
        return 0

    known = {slug for slug in RULES} | {r.id for r in RULES.values()}
    known |= {slug for slug in PROJECT_RULES}
    known |= {r.id for r in PROJECT_RULES.values()}
    unknown = [r for r in (args.select or []) + (args.ignore or []) if r not in known]
    if unknown:
        print(f"unknown rule(s): {', '.join(unknown)}; see --list-rules",
              file=sys.stderr)
        return 2

    if args.profile_baseline:
        # route the hotness machinery at an explicit baseline (the
        # env var is how rules discover it without plumbing)
        from repro.check import hotness as _hotness
        os.environ[_hotness.BASELINE_ENV] = args.profile_baseline

    if args.effects_report:
        from repro.check import effects as _effects
        from repro.check.project import ProjectModel
        root = Path(args.paths[0])
        if root.is_file():
            root = root.parent
        if not root.is_dir():
            print(f"project root is not a directory: {root}", file=sys.stderr)
            return 2
        model = _effects.effects_for_project(ProjectModel.load(root))
        doc = _effects.effects_report(model)
        Path(args.effects_report).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        if not args.quiet:
            impure = len(doc["functions"])
            print(f"wrote effect signatures for {doc['functions_total']} "
                  f"functions ({impure} with effects) to "
                  f"{args.effects_report}", file=sys.stderr)
        return 0

    if args.hotness:
        from repro.check import hotness as _hotness
        from repro.check.project import ProjectModel
        root = Path(args.paths[0])
        if root.is_file():
            root = root.parent
        if not root.is_dir():
            print(f"project root is not a directory: {root}", file=sys.stderr)
            return 2
        ranking = _hotness.hotness_for_project(ProjectModel.load(root))
        if ranking is None:
            print("no profile baseline found; run "
                  "`repro bench --emit-profile profile_baseline.json` first "
                  "or pass --profile-baseline", file=sys.stderr)
            return 2
        print(_hotness.format_ranking(ranking))
        return 0

    config = LintConfig().with_overrides(select=args.select, ignore=args.ignore)
    try:
        violations = lint_paths(args.paths, config)
        if args.strict:
            for path in args.paths:
                root = Path(path)
                if root.is_file():
                    root = root.parent
                violations.extend(analyze_project(root, config))
            violations.sort(key=lambda v: (str(v.path), v.line, v.col, v.rule_id))
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.baseline:
        try:
            baseline = _report.load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline: {exc}", file=sys.stderr)
            return 2
        violations, _stale = _report.diff_baseline(violations, baseline)

    if args.sarif:
        rules = [(r.id, slug, r.rationale) for slug, r in RULES.items()]
        rules += [(r.id, slug, r.rationale) for slug, r in PROJECT_RULES.items()]
        Path(args.sarif).write_text(
            json.dumps(_report.to_sarif(violations, rules), indent=2) + "\n",
            encoding="utf-8",
        )
        if not args.quiet:
            print(f"wrote SARIF log to {args.sarif}", file=sys.stderr)

    if args.json:
        sys.stdout.write(_report.to_json(violations, args.paths, args.strict))
        return 1 if violations else 0

    for violation in violations:
        print(violation.format())
    if violations:
        suffix = " (beyond the baseline)" if args.baseline else ""
        print(f"\n{len(violations)} violation(s) found{suffix}", file=sys.stderr)
        return 1
    if not args.quiet:
        checked = ", ".join(str(p) for p in args.paths)
        mode = "strict whole-program" if args.strict else "determinism/correctness"
        print(f"no {mode} violations in {checked}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import write_bench_files

    if args.emit_profile:
        from repro.obs.bench import write_profile_baseline
        path = write_profile_baseline(
            args.emit_profile, seed=args.seed, quick=args.quick,
        )
        print(f"wrote {path}")
        return 0

    paths = write_bench_files(
        out_dir=args.out_dir,
        seed=args.seed,
        quick=args.quick,
        only=args.only,
        progress=lambda msg: print(f"  {msg}"),
    )
    for path in paths:
        print(f"wrote {path}")
    if args.report:
        _emit_report(
            args.report, "bench baselines",
            bench_paths=tuple(str(p) for p in paths),
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """The ``repro report`` driver: stitch artifacts into one HTML file."""
    try:
        _emit_report(
            args.out,
            title=args.title,
            manifest_path=args.manifest,
            telemetry_path=args.telemetry,
            trace_path=args.trace,
            bench_paths=tuple(args.bench or ()),
            profile_path=args.profile,
        )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot build report: {exc}", file=sys.stderr)
        return 2
    return 0


def _parse_sweep_params(pairs: "list[str] | None") -> dict:
    """``--param KEY=VALUE`` pairs → a sweep params dict.

    Values parse as JSON when they can (``--param mtbf_grid=[0,2000]``,
    ``--param cells=6``) and fall back to plain strings
    (``--param faults=mtbf=2000,mttr=600``).
    """
    params: dict = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--param wants KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def cmd_sweep(args: argparse.Namespace) -> int:
    """The ``repro sweep`` driver: fault-tolerant parallel sweeps."""
    from repro.experiments import pool

    try:
        params = _parse_sweep_params(args.param)
        if args.faults:
            if args.kind != "faultsweep":
                print("--faults applies only to faultsweep sweeps",
                      file=sys.stderr)
                return 2
            params["faults"] = args.faults
        spec = pool.SweepSpec(
            kind=args.kind,
            scale=args.scale,
            seed=args.seed,
            params=params,
            timeout_s=args.timeout,
            retries=args.retries,
            backoff_s=args.backoff,
        )
    except (pool.SweepError, ValueError) as exc:
        print(f"bad sweep spec: {exc}", file=sys.stderr)
        return 2

    live = _make_live_bus(args)
    if live is not None:
        from repro.obs.live import set_global_live_bus

        set_global_live_bus(live)
    try:
        result = pool.run_sweep(
            spec,
            args.store,
            workers=args.workers,
            resume=args.resume,
            live=live,
        )
    except pool.SweepError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    finally:
        if live is not None:
            from repro.obs.live import set_global_live_bus

            set_global_live_bus(None)
            live.close()

    text = _render_sweep_report(args.kind, spec, result)
    if text:
        if args.out:
            Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(text)
    print(f"sweep: {result.completed}/{result.total} cells complete "
          f"({result.resumed} resumed, {len(result.quarantined)} "
          f"quarantined this run)", file=sys.stderr)
    print(f"sweep: rollup {result.rollup_path} "
          f"digest {result.digest}", file=sys.stderr)
    for key, reason in sorted(result.quarantined.items()):
        print(f"sweep: quarantined {key}: {reason}", file=sys.stderr)
    return 0 if result.completed == result.total else 3


def _render_sweep_report(kind: str, spec, result) -> str:
    """Render a completed sweep's rollup with the kind's reporter."""
    from repro.experiments import pool

    if kind == "faultsweep":
        from repro.experiments import faultsweep

        return faultsweep.report(faultsweep.result_from_rollup(result.rollup))
    if kind == "experiments":
        from repro.experiments.runner import (
            combined_report,
            reports_from_rollup,
        )

        reports, failures = reports_from_rollup(result.rollup)
        expected = [cell["exp"] for cell in pool.expand_cells(spec)]
        return combined_report(reports, spec.scale,
                               expected=expected, failures=failures)
    return ""


def cmd_trace(args: argparse.Namespace) -> int:
    """The ``repro trace`` driver (currently: ``summarize``)."""
    from repro.obs.analyze import format_trace_summary, summarize_trace

    try:
        summary = summarize_trace(args.path)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    print(format_trace_summary(summary, top=args.top))
    return 0


def cmd_live(args: argparse.Namespace) -> int:
    """The ``repro live`` driver (currently: ``summarize``)."""
    from repro.obs.aggregate import format_rollup, merge_shards

    try:
        rollup = merge_shards(args.shards)
    except OSError as exc:
        print(f"cannot read shard: {exc}", file=sys.stderr)
        return 2
    if args.json or args.out:
        text = json.dumps(rollup, sort_keys=True, indent=2) + "\n"
        if args.out:
            Path(args.out).write_text(text, encoding="utf-8")
            print(f"wrote rollup to {args.out}")
        if args.json:
            print(text, end="")
    if not args.json:
        print(format_rollup(rollup), end="")
    return 0


# -- parser -----------------------------------------------------------------------

def _add_live_args(p: argparse.ArgumentParser) -> None:
    """Attach the shared ``--live`` / ``--live-record`` flags."""
    p.add_argument("--live", nargs="?", const="1", metavar="PORT",
                   help="show a live progress/ETA line; with a PORT, also "
                        "serve /metrics (Prometheus text) and /status "
                        "(JSON) on 127.0.0.1:PORT while the run executes")
    p.add_argument("--live-record", metavar="PATH",
                   help="append every live snapshot to a JSONL shard "
                        "(repro.live/v1; merge shards with "
                        "'repro live summarize')")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DRAS (IPDPS'21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("reproduce", help="regenerate a paper table/figure")
    p.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    p.add_argument("--scale", default="default",
                   help="tiny | default | paper (default: default)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", help="also write the report to this file")
    p.add_argument("--scaled-overhead", action="store_true",
                   help="overhead experiment: use a scaled network")
    p.add_argument("--faults", metavar="SPEC",
                   help="fault-process override for the faultsweep "
                        "experiment, e.g. mtbf=5000,mttr=1800,seed=1")
    p.add_argument("--manifest", metavar="PATH",
                   help="write a run manifest (JSON provenance record)")
    p.add_argument("--report", metavar="PATH",
                   help="also write a self-contained HTML run report")
    _add_live_args(p)
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser(
        "sweep",
        help="run an experiment grid on worker processes (crash-safe)")
    p.add_argument("kind", choices=("faultsweep", "experiments", "selftest"),
                   help="which grid to expand")
    p.add_argument("--store", required=True, metavar="DIR",
                   help="crash-durable result store (per-worker JSONL "
                        "shards + merged rollup.json)")
    p.add_argument("--scale", default="default",
                   help="tiny | default | paper (default: default)")
    p.add_argument("--seed", type=int, default=0,
                   help="sweep seed; per-cell seeds derive from it")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="worker processes (default 0: run every cell "
                        "inline in this process)")
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted sweep: skip cells the "
                        "store already holds, retry quarantined ones")
    p.add_argument("--timeout", type=float, default=0.0, metavar="S",
                   help="per-cell wall-clock budget; a cell attempt "
                        "running longer is killed and retried "
                        "(default 0: no parent-side timeout)")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="retry budget per cell before quarantine "
                        "(default 2)")
    p.add_argument("--backoff", type=float, default=0.25, metavar="S",
                   help="base of the capped exponential backoff between "
                        "attempts (default 0.25)")
    p.add_argument("--param", action="append", metavar="KEY=VALUE",
                   help="kind-specific knob (JSON value or string); "
                        "repeatable, e.g. --param 'mtbf_grid=[0,2000]'")
    p.add_argument("--faults", metavar="SPEC",
                   help="fault-process override for faultsweep sweeps, "
                        "e.g. mtbf=5000,mttr=1800,seed=1")
    p.add_argument("--out", help="also write the rendered report here")
    _add_live_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("generate", help="synthesize an SWF trace")
    p.add_argument("system", choices=("theta", "cori"))
    p.add_argument("jobs", type=int)
    p.add_argument("--nodes", type=int, default=0,
                   help="system size (default: the paper's full size)")
    p.add_argument("--load-factor", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("simulate", help="replay an SWF trace under a policy")
    p.add_argument("trace")
    p.add_argument("--nodes", type=int, required=True)
    p.add_argument("--policy", choices=POLICIES, default="fcfs")
    p.add_argument("--objective", choices=("capability", "capacity"),
                   default="capability")
    p.add_argument("--procs-per-node", type=int, default=1)
    p.add_argument("--max-jobs", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", metavar="SPEC",
                   help="inject seeded faults, e.g. "
                        "mtbf=5000,mttr=1800,seed=1,requeue=requeue-front "
                        "(keys: mtbf mttr seed blade_size blade_prob "
                        "job_kill_mtbf requeue min_repair max_requeues)")
    p.add_argument("--manifest", metavar="PATH",
                   help="write a run manifest (JSON provenance record)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a structured JSONL event trace of the run")
    p.add_argument("--report", metavar="PATH",
                   help="also write a self-contained HTML run report")
    _add_live_args(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("train", help="train and checkpoint a DRAS agent")
    p.add_argument("--system", choices=("theta", "cori"), default="theta")
    p.add_argument("--agent", choices=("pg", "dql", "decima"), default="pg")
    p.add_argument("--nodes", type=int, default=256)
    p.add_argument("--window", type=int, default=16)
    p.add_argument("--train-jobs", type=int, default=2000)
    p.add_argument("--sampled", type=int, default=4)
    p.add_argument("--real", type=int, default=4)
    p.add_argument("--synthetic", type=int, default=12)
    p.add_argument("--jobs-per-set", type=int, default=250)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.add_argument("--faults", metavar="SPEC",
                   help="train under seeded fault injection, e.g. "
                        "mtbf=5000,mttr=1800,seed=1 (the fault seed is "
                        "offset per episode; validation uses the base seed)")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="write a crash-safe resumable training checkpoint "
                        "after every --checkpoint-every episodes")
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="episodes between resumable checkpoints (default 1)")
    p.add_argument("--resume", metavar="PATH",
                   help="resume an interrupted run from its resumable "
                        "checkpoint (other flags must match the original "
                        "run; keeps checkpointing to the same file unless "
                        "--checkpoint overrides it)")
    p.add_argument("--manifest", metavar="PATH",
                   help="write a run manifest (JSON provenance record)")
    p.add_argument("--telemetry", metavar="PATH",
                   help="write per-episode JSONL training telemetry "
                        "(repro.telemetry/v1)")
    p.add_argument("--report", metavar="PATH",
                   help="also write a self-contained HTML run report "
                        "(records telemetry to a sidecar if --telemetry "
                        "is not given)")
    _add_live_args(p)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser(
        "fit", help="fit a workload model to an SWF trace and resample it"
    )
    p.add_argument("trace")
    p.add_argument("--nodes", type=int, required=True)
    p.add_argument("--jobs", type=int, default=1000,
                   help="synthetic jobs to generate from the fitted model")
    p.add_argument("--procs-per-node", type=int, default=1)
    p.add_argument("--max-jobs", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_fit)

    p = sub.add_parser(
        "check", help="run the determinism/correctness linter over source paths"
    )
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to lint (default: src/repro)")
    p.add_argument("--select", action="append", metavar="RULE",
                   help="run only these rules (slug or id; repeatable)")
    p.add_argument("--ignore", action="append", metavar="RULE",
                   help="skip these rules (slug or id; repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="also run the whole-program rules (RPR2xx units, "
                        "RPR3xx NN shapes/params, RPR4xx API contracts, "
                        "RPR5xx profile-guided performance, RPR6xx "
                        "determinism taint)")
    p.add_argument("--hotness", action="store_true",
                   help="print the profile-guided hotness ranking of the "
                        "first path's project and exit")
    p.add_argument("--effects-report", metavar="PATH",
                   help="write the inferred per-function effect signatures "
                        "(RNG/clock/env/IO/global-mutation) of the first "
                        "path's project as JSON to PATH and exit")
    p.add_argument("--profile-baseline", metavar="PATH",
                   help="profiler baseline JSON anchoring the RPR5xx "
                        "hotness model (default: profile_baseline.json "
                        "discovered near the project root)")
    p.add_argument("--json", action="store_true",
                   help="emit findings as a JSON document on stdout")
    p.add_argument("--sarif", metavar="PATH",
                   help="also write a SARIF 2.1.0 log to PATH")
    p.add_argument("--baseline", metavar="PATH",
                   help="suppress findings recorded in this baseline file; "
                        "only new findings fail (see scripts/check_ratchet.py)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="print nothing when the check passes")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "bench", help="run the perf benchmarks and write BENCH_*.json"
    )
    p.add_argument("--quick", action="store_true",
                   help="small reps for smoke testing (not comparable to "
                        "full-run baselines)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out-dir", default=".",
                   help="directory for BENCH_*.json (default: current dir)")
    p.add_argument("--only", choices=("sim", "nn"), default=None,
                   help="run a single suite instead of both")
    p.add_argument("--emit-profile", metavar="PATH",
                   help="instead of the suites, run the deterministic "
                        "profiling workload and write the hotness "
                        "baseline JSON for `repro check --strict`")
    p.add_argument("--report", metavar="PATH",
                   help="also write a self-contained HTML run report")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "report",
        help="stitch run artifacts into one self-contained HTML report",
    )
    p.add_argument("--out", required=True, metavar="PATH",
                   help="output HTML file")
    p.add_argument("--title", default="repro run report")
    p.add_argument("--manifest", metavar="PATH",
                   help="run manifest JSON (repro.manifest/v1)")
    p.add_argument("--telemetry", metavar="PATH",
                   help="training telemetry JSONL (repro.telemetry/v1)")
    p.add_argument("--trace", metavar="PATH",
                   help="event trace JSONL (repro.trace/v1)")
    p.add_argument("--bench", action="append", metavar="PATH",
                   help="bench baseline JSON (repeatable)")
    p.add_argument("--profile", metavar="PATH",
                   help="profiler output JSON (repro.profile/v1)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("trace", help="trace-file utilities")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    ps = trace_sub.add_parser(
        "summarize",
        help="print span rollups, latency percentiles and event counts",
    )
    ps.add_argument("path", help="event trace JSONL (repro.trace/v1)")
    ps.add_argument("--top", type=int, default=10,
                    help="rollup rows to print (default 10)")
    ps.set_defaults(func=cmd_trace)

    p = sub.add_parser("live", help="live-snapshot shard utilities")
    live_sub = p.add_subparsers(dest="live_command", required=True)
    ps = live_sub.add_parser(
        "summarize",
        help="merge per-process snapshot/telemetry shards into one rollup",
    )
    ps.add_argument("shards", nargs="+",
                    help="JSONL shards (repro.live/v1 or repro.telemetry/v1)")
    ps.add_argument("--json", action="store_true",
                    help="print the rollup as JSON instead of a summary")
    ps.add_argument("--out", metavar="PATH",
                    help="also write the rollup JSON to this file")
    ps.set_defaults(func=cmd_live)

    p = sub.add_parser("evaluate", help="replay a trace under a checkpointed agent")
    p.add_argument("checkpoint")
    p.add_argument("trace")
    p.add_argument("--frozen", action="store_true",
                   help="disable online learning during evaluation")
    p.add_argument("--procs-per-node", type=int, default=1)
    p.add_argument("--max-jobs", type=int, default=None)
    p.set_defaults(func=cmd_evaluate)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
