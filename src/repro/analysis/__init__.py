"""Cross-run analysis: metric normalization, Kiviat values, tables."""

from repro.analysis.comparison import (
    MethodResult,
    evaluate_method,
    kiviat_area,
    kiviat_normalize,
    starvation_summary,
)
from repro.analysis.gantt import render_gantt
from repro.analysis.plots import hbar_chart, kiviat_text, line_chart, sparkline
from repro.analysis.significance import (
    BootstrapCI,
    bootstrap_mean,
    bootstrap_mean_difference,
    compare_wait_times,
)
from repro.analysis.tables import format_table

__all__ = [
    "BootstrapCI",
    "MethodResult",
    "bootstrap_mean",
    "bootstrap_mean_difference",
    "compare_wait_times",
    "evaluate_method",
    "format_table",
    "hbar_chart",
    "kiviat_area",
    "kiviat_normalize",
    "kiviat_text",
    "line_chart",
    "render_gantt",
    "sparkline",
    "starvation_summary",
]
