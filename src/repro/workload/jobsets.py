"""Training jobsets and the three-phase curriculum (paper section III-C).

DRAS is trained episodically, one jobset per episode, following the
principle of gradual improvement: *start with simple average cases and
gradually improve with unseen rare cases*.  Three jobset types are used
in order:

1. **sampled** — jobs sampled at random from the real training trace
   with arrivals re-drawn from a Poisson process whose mean
   inter-arrival matches the original trace: the easiest, most
   controlled environment;
2. **real** — contiguous one-week chunks of the actual trace, exposing
   real arrival burstiness;
3. **synthetic** — jobsets from the statistical workload model,
   covering rare states absent from the original trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.job import Job
from repro.workload.generator import PoissonArrivals
from repro.workload.models import WorkloadModel

SECONDS_PER_WEEK = 7 * 24 * 3600.0


def normalize_times(jobs: list[Job]) -> list[Job]:
    """Fresh copies with submit times shifted so the earliest is 0."""
    if not jobs:
        return []
    origin = min(j.submit_time for j in jobs)
    out = []
    for j in jobs:
        fresh = j.copy_fresh()
        fresh.submit_time = j.submit_time - origin
        out.append(fresh)
    out.sort(key=lambda j: (j.submit_time, j.job_id))
    return out


def split_weeks(jobs: list[Job], week_seconds: float = SECONDS_PER_WEEK) -> list[list[Job]]:
    """Split a trace into contiguous week-long jobsets (times re-zeroed).

    Dependencies crossing a chunk boundary are dropped: the parent is
    not part of the chunk, so keeping the edge would hold the child
    forever.
    """
    if not jobs:
        return []
    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    origin = ordered[0].submit_time
    chunks: dict[int, list[Job]] = {}
    for j in ordered:
        chunks.setdefault(int((j.submit_time - origin) // week_seconds), []).append(j)
    out: list[list[Job]] = []
    for week in sorted(chunks):
        members = chunks[week]
        ids = {j.job_id for j in members}
        cleaned = []
        for j in members:
            fresh = j.copy_fresh()
            fresh.dependencies = tuple(d for d in j.dependencies if d in ids)
            cleaned.append(fresh)
        out.append(normalize_times(cleaned))
    return out


def sampled_jobset(
    base: list[Job],
    n_jobs: int,
    rng: np.random.Generator,
    rate: float | None = None,
) -> list[Job]:
    """A *sampled* jobset: random jobs + Poisson arrivals (§IV-D).

    Jobs are drawn uniformly with replacement from ``base``; arrival
    times are re-drawn from a Poisson process whose rate defaults to
    the average arrival rate of ``base``.  Dependencies are dropped —
    sampled jobs lose their parents.
    """
    if not base:
        raise ValueError("base trace is empty")
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    if rate is None:
        span = max(j.submit_time for j in base) - min(j.submit_time for j in base)
        if span <= 0 or len(base) < 2:
            raise ValueError("cannot infer arrival rate from a degenerate trace")
        rate = (len(base) - 1) / span
    times = PoissonArrivals(rate).sample(n_jobs, rng)
    picks = rng.integers(len(base), size=n_jobs)
    out: list[Job] = []
    for t, k in zip(times, picks):
        src = base[int(k)]
        out.append(
            Job(
                size=src.size,
                walltime=src.walltime,
                runtime=src.runtime,
                submit_time=float(t),
                priority=src.priority,
                user=src.user,
            )
        )
    return out


def real_jobsets(base: list[Job], n_sets: int) -> list[list[Job]]:
    """``n_sets`` contiguous chunks of the real (reference) trace.

    Chunks are one week long when the trace is long enough (the paper
    splits the Theta training data into nine one-week jobsets);
    shorter traces are split into ``n_sets`` equal-duration chunks.
    """
    if not base:
        raise ValueError("trace is empty")
    if n_sets <= 0:
        raise ValueError("n_sets must be positive")
    span = max(j.submit_time for j in base) - min(j.submit_time for j in base)
    chunk = min(SECONDS_PER_WEEK, max(1.0, span / n_sets))
    chunks = split_weeks(base, week_seconds=chunk)
    chunks = [c for c in chunks if c]
    if len(chunks) < n_sets:
        raise ValueError(
            f"trace yields only {len(chunks)} non-empty chunks, "
            f"cannot build {n_sets} real jobsets"
        )
    return chunks[:n_sets]


def synthetic_jobsets(
    model: WorkloadModel,
    n_sets: int,
    jobs_per_set: int,
    rng: np.random.Generator,
    load_factors: tuple[float, ...] = (0.7, 1.0, 1.0, 1.3),
) -> list[list[Job]]:
    """Synthetic jobsets spanning a range of load conditions.

    Cycling through ``load_factors`` exposes the agent to under- and
    over-loaded states that may not occur in the original trace.
    """
    if n_sets <= 0 or jobs_per_set <= 0:
        raise ValueError("n_sets and jobs_per_set must be positive")
    sets = []
    for i in range(n_sets):
        lf = load_factors[i % len(load_factors)]
        sets.append(model.generate(jobs_per_set, rng, load_factor=lf))
    return sets


@dataclass(frozen=True)
class CurriculumPhase:
    """One phase of the training curriculum."""

    name: str
    jobsets: list[list[Job]]

    def __len__(self) -> int:
        return len(self.jobsets)


def three_phase_curriculum(
    model: WorkloadModel,
    base_trace: list[Job],
    rng: np.random.Generator,
    n_sampled: int = 9,
    n_real: int = 9,
    n_synthetic: int = 82,
    jobs_per_set: int | None = None,
    order: tuple[str, ...] = ("sampled", "real", "synthetic"),
) -> list[CurriculumPhase]:
    """Build the paper's three-phase curriculum in a configurable order.

    The defaults (9 sampled, 9 real, 82 synthetic) match the Theta
    training setup of §IV-D.  ``order`` permutes the phases, which the
    Fig 4 experiment uses to show that sampled -> real -> synthetic
    converges fastest.
    """
    valid = {"sampled", "real", "synthetic"}
    if set(order) != valid or len(order) != 3:
        raise ValueError(f"order must be a permutation of {sorted(valid)}, got {order}")
    if jobs_per_set is None:
        weeks = max(1, len(split_weeks(base_trace)))
        jobs_per_set = max(10, len(base_trace) // weeks)

    phases: dict[str, CurriculumPhase] = {
        "sampled": CurriculumPhase(
            "sampled",
            [sampled_jobset(base_trace, jobs_per_set, rng) for _ in range(n_sampled)],
        ),
        "real": CurriculumPhase("real", real_jobsets(base_trace, n_real)),
        "synthetic": CurriculumPhase(
            "synthetic",
            synthetic_jobsets(model, n_synthetic, jobs_per_set, rng),
        ),
    }
    return [phases[name] for name in order]
