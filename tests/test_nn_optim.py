"""Unit tests for optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam


def quadratic_step(param: Parameter) -> float:
    """Set grad of f(x) = ||x||^2 and return the loss."""
    param.zero_grad()
    param.grad += 2 * param.value
    return float(np.sum(param.value**2))


class TestSGD:
    def test_basic_descent(self):
        p = Parameter("x", np.array([10.0]))
        opt = SGD([p], lr=0.1)
        losses = []
        for _ in range(50):
            losses.append(quadratic_step(p))
            opt.step()
        assert losses[-1] < losses[0] * 1e-3

    def test_known_update(self):
        p = Parameter("x", np.array([1.0]))
        opt = SGD([p], lr=0.5)
        p.grad += 2.0
        opt.step()
        assert p.value[0] == pytest.approx(0.0)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter("x", np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(20):
                quadratic_step(p)
                opt.step()
            return abs(p.value[0])

        assert run(0.9) < run(0.0)

    def test_validation(self):
        p = Parameter("x", np.ones(1))
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter("x", np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            quadratic_step(p)
            opt.step()
        assert np.all(np.abs(p.value) < 1e-3)

    def test_first_step_magnitude_is_lr(self):
        # with bias correction, |first step| ~= lr regardless of grad scale
        for scale in (1e-3, 1.0, 1e3):
            p = Parameter("x", np.array([1.0]))
            opt = Adam([p], lr=0.01)
            p.grad += scale
            opt.step()
            assert abs(1.0 - p.value[0]) == pytest.approx(0.01, rel=1e-4)

    def test_grad_clip_bounds_internal_moment(self):
        p = Parameter("x", np.array([0.0, 0.0]))
        opt = Adam([p], lr=0.1, grad_clip=1.0)
        p.grad += np.array([300.0, 400.0])  # norm 500 -> rescaled to norm 1
        opt.step()
        # the first moment reflects the clipped gradient: (1-beta1)*g_clipped
        m_norm = float(np.linalg.norm(opt._m[0]))
        assert m_norm == pytest.approx(0.1 * 1.0, rel=1e-6)
        # and the clipped direction is preserved inside m
        assert opt._m[0][1] / opt._m[0][0] == pytest.approx(400.0 / 300.0, rel=1e-6)

    def test_zero_grad(self):
        p = Parameter("x", np.ones(2))
        opt = Adam([p], lr=0.1)
        p.grad += 7.0
        opt.zero_grad()
        assert np.all(p.grad == 0)

    def test_validation(self):
        p = Parameter("x", np.ones(1))
        with pytest.raises(ValueError):
            Adam([p], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, beta1=1.0)
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, beta2=-0.1)
