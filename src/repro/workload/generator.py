"""Building blocks for synthetic workload generation.

Synthetic jobsets (training phase 3, §III-C) must mimic the target
system's workload patterns "in terms of hourly and daily job arrivals,
and distributions of job sizes and runtimes" (Fig. 3).  These pieces
are modelled independently:

* arrival times — homogeneous Poisson or a non-homogeneous Poisson
  process with hour-of-day and day-of-week intensity profiles (sampled
  by thinning);
* job sizes — a categorical mix over discrete node counts;
* runtimes — lognormal, clipped to the system's runtime cap, with a
  multiplicative user over-estimation factor producing the walltime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workload.units import SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrival process.

    ``rate`` is in arrivals per second.  Used for the *sampled* training
    jobsets, which model arrivals with the average inter-arrival time of
    the original trace (§IV-D).
    """

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def sample(self, n: int, rng: np.random.Generator, start: float = 0.0) -> np.ndarray:
        """``n`` ordered arrival times starting at ``start``."""
        gaps = rng.exponential(1.0 / self.rate, size=n)
        return start + np.cumsum(gaps)


@dataclass(frozen=True)
class DiurnalArrivals:
    """Non-homogeneous Poisson process with daily/weekly seasonality.

    The instantaneous rate at time ``t`` is
    ``base_rate * hourly[hour(t)] * daily[weekday(t)]`` where the two
    profiles are normalized to mean 1.  Sampling uses Lewis-Shedler
    thinning against the peak rate.
    """

    base_rate: float
    hourly: tuple[float, ...] = field(default=tuple([1.0] * 24))
    daily: tuple[float, ...] = field(default=tuple([1.0] * 7))

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {self.base_rate}")
        if len(self.hourly) != 24:
            raise ValueError("hourly profile must have 24 entries")
        if len(self.daily) != 7:
            raise ValueError("daily profile must have 7 entries")
        if any(h < 0 for h in self.hourly) or any(d < 0 for d in self.daily):
            raise ValueError("profile weights must be non-negative")
        if max(self.hourly) == 0 or max(self.daily) == 0:
            raise ValueError("profiles must not be identically zero")
        # normalize to mean 1 so base_rate is the long-run average rate
        object.__setattr__(
            self, "hourly", tuple(np.array(self.hourly) / np.mean(self.hourly))
        )
        object.__setattr__(
            self, "daily", tuple(np.array(self.daily) / np.mean(self.daily))
        )

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (jobs/second) at absolute time ``t``."""
        hour = int((t % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
        day = int((t // SECONDS_PER_DAY) % 7)
        return self.base_rate * self.hourly[hour] * self.daily[day]

    def sample(self, n: int, rng: np.random.Generator, start: float = 0.0) -> np.ndarray:
        """Sample ``n`` arrival times via thinning, from ``start`` onward."""
        peak = self.base_rate * max(self.hourly) * max(self.daily)
        times = np.empty(n)
        t = start
        produced = 0
        while produced < n:
            # draw candidate gaps in blocks for speed
            block = max(64, n - produced)
            gaps = rng.exponential(1.0 / peak, size=block)
            accepts = rng.random(block)
            for gap, u in zip(gaps, accepts):
                t += gap
                if u <= self.rate_at(t) / peak:
                    times[produced] = t
                    produced += 1
                    if produced == n:
                        break
        return times


@dataclass(frozen=True)
class CategoricalSizes:
    """Categorical distribution over discrete job sizes (node counts)."""

    sizes: tuple[int, ...]
    probs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.probs):
            raise ValueError("sizes and probs must have equal length")
        if not self.sizes:
            raise ValueError("at least one size category is required")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("sizes must be positive")
        if any(p < 0 for p in self.probs):
            raise ValueError("probabilities must be non-negative")
        total = float(sum(self.probs))
        if total <= 0:
            raise ValueError("probabilities must sum to a positive value")
        object.__setattr__(self, "probs", tuple(p / total for p in self.probs))

    @classmethod
    def from_dict(cls, mix: dict[int, float]) -> "CategoricalSizes":
        """Build from a ``{size: probability}`` mapping (normalized)."""
        items = sorted(mix.items())
        return cls(tuple(s for s, _ in items), tuple(p for _, p in items))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` job sizes from the categorical mix."""
        return rng.choice(np.array(self.sizes), size=n, p=np.array(self.probs))

    def mean(self) -> float:
        """Expected job size under the mix."""
        return float(np.dot(self.sizes, self.probs))


@dataclass(frozen=True)
class LognormalRuntimes:
    """Lognormal runtime distribution with a walltime over-estimation model.

    ``median`` and ``sigma`` parameterize the lognormal of the *actual*
    runtime, clipped to ``[min_runtime, max_runtime]``.  The
    user-requested walltime is ``runtime * (1 + overestimate)`` where
    ``overestimate`` is exponential with mean ``mean_overestimate`` —
    production studies consistently find heavy-tailed over-estimation.
    The walltime is clipped to ``max_runtime`` (the system cap) and
    floored at the runtime.
    """

    median: float
    sigma: float
    max_runtime: float
    min_runtime: float = 60.0
    mean_overestimate: float = 1.0

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise ValueError("median and sigma must be positive")
        if self.max_runtime < self.min_runtime:
            raise ValueError("max_runtime must be >= min_runtime")
        if self.mean_overestimate < 0:
            raise ValueError("mean_overestimate must be >= 0")

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(runtimes, walltimes)`` arrays of length ``n``."""
        runtimes = rng.lognormal(mean=np.log(self.median), sigma=self.sigma, size=n)
        runtimes = np.clip(runtimes, self.min_runtime, self.max_runtime)
        over = rng.exponential(self.mean_overestimate, size=n)
        walltimes = np.minimum(runtimes * (1.0 + over), self.max_runtime)
        walltimes = np.maximum(walltimes, runtimes)
        return runtimes, walltimes


#: a plausible HPC hour-of-day submission profile: quiet at night,
#: ramping through the morning, peaking in the afternoon work hours.
DEFAULT_HOURLY_PROFILE: tuple[float, ...] = (
    0.45, 0.40, 0.35, 0.33, 0.33, 0.38,
    0.50, 0.70, 0.95, 1.25, 1.45, 1.55,
    1.55, 1.60, 1.65, 1.60, 1.50, 1.35,
    1.20, 1.05, 0.90, 0.75, 0.60, 0.50,
)

#: weekday-heavy day-of-week profile (index 0 = Monday).
DEFAULT_DAILY_PROFILE: tuple[float, ...] = (
    1.20, 1.25, 1.25, 1.20, 1.10, 0.55, 0.45,
)
