"""Benchmark: regenerate Fig 8 (wait time by execution mode)."""

from conftest import SCALE, save_report

from repro.experiments import fig8


def test_fig8(benchmark, report_dir):
    rows = benchmark.pedantic(lambda: fig8.run(SCALE), rounds=1, iterations=1)
    text = fig8.report(rows)
    save_report(report_dir, "fig8", text)

    by_method = {r.method: r for r in rows}
    assert set(by_method) == {"FCFS", "DRAS-PG", "DRAS-DQL"}
    fcfs = by_method["FCFS"]
    # reserved jobs wait longest in every reservation-based method
    for r in rows:
        assert r.wait_h["reserved"] >= r.wait_h["ready"]
        assert r.wait_h["reserved"] >= r.wait_h["backfilled"]
    # DRAS reduces the wait of backfilled jobs relative to FCFS (the
    # learned level-2 selection vs first-fit), the paper's Fig 8 story
    assert min(
        by_method["DRAS-PG"].wait_h["backfilled"],
        by_method["DRAS-DQL"].wait_h["backfilled"],
    ) < fcfs.wait_h["backfilled"]
