"""Intraprocedural control-flow and dataflow analysis.

This is the foundation of the RPR5xx performance rule family
(:mod:`repro.check.perf`): a per-function control-flow graph covering
loops, ``try``/``except``/``finally``, ``with``, ``break``/``continue``
and ``match``, plus the classic dataflow passes built on top of it —
backward liveness (dead-store detection), forward reaching definitions,
loop-nesting depth, and a small classifier for expressions that
allocate new container objects.

Like the rest of :mod:`repro.check` the analysis is pure :mod:`ast`:
the analyzed code is never imported, and the module has no third-party
dependencies.

Soundness conventions (the analysis must never flag a live store):

* exception edges are over-approximated — inside a ``try`` body every
  statement gets its own block with an edge to every reachable handler
  and ``finally`` entry, so a store observed only by a handler is live;
* names read inside nested functions, lambdas or class bodies, and
  names declared ``global``/``nonlocal``, are *ambient* — treated as
  live everywhere;
* only plain ``name = value`` / annotated-assignment targets are
  candidate dead stores; tuple unpacking, ``for``/``with`` targets,
  augmented assignments and underscore-prefixed names are exempt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNCTION_NODES + (ast.Lambda,)

#: roles a statement node can play inside a block (which sub-expressions
#: of the node execute at that CFG position)
_ROLES = ("stmt", "test", "iter", "target", "with", "except", "def",
          "match", "case", "params")


@dataclass(frozen=True)
class Entry:
    """One executed (sub-)statement inside a basic block."""

    node: ast.AST
    role: str = "stmt"


class Block:
    """A basic block: straight-line entries plus successor edges."""

    __slots__ = ("id", "entries", "succs")

    def __init__(self, block_id: int) -> None:
        self.id = block_id
        self.entries: list[Entry] = []
        self.succs: list[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block({self.id}, entries={len(self.entries)}, succs={self.succs})"


class ControlFlowGraph:
    """The CFG of one function body."""

    __slots__ = ("fn", "blocks", "entry", "exit")

    def __init__(self, fn: ast.AST, blocks: list[Block],
                 entry: Block, exit_block: Block) -> None:
        self.fn = fn
        self.blocks = blocks
        self.entry = entry
        self.exit = exit_block

    def preds(self) -> dict[int, list[int]]:
        """Predecessor lists, derived from the successor edges."""
        out: dict[int, list[int]] = {b.id: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                out[succ].append(block.id)
        return out


class _CFGBuilder:
    """Builds a :class:`ControlFlowGraph` from a function definition."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        self.current = self.entry
        #: (header, after) pairs for active loops
        self._loops: list[tuple[Block, Block]] = []
        #: entry blocks of the handlers of each active ``try`` body
        self._handlers: list[list[Block]] = []
        #: entry blocks of active ``finally`` suites
        self._finallys: list[Block] = []

    def _new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def _edge(self, src: Block, dst: Block) -> None:
        if dst.id not in src.succs:
            src.succs.append(dst.id)

    def _escape_targets(self) -> list[Block]:
        """Blocks an exception raised at the current point could reach."""
        targets: list[Block] = []
        for handlers in self._handlers:
            targets.extend(handlers)
        targets.extend(self._finallys)
        targets.append(self.exit)
        return targets

    def _emit(self, node: ast.AST, role: str = "stmt") -> None:
        """Append one executed entry, splitting the block in try context.

        Inside a ``try`` (or under a ``finally``) each statement ends
        its block so the exception edge leaving *between* statements is
        represented — that is what keeps handler-observed stores live.
        """
        if self._handlers or self._finallys:
            for target in self._escape_targets():
                self._edge(self.current, target)
            self.current.entries.append(Entry(node, role))
            nxt = self._new_block()
            self._edge(self.current, nxt)
            self.current = nxt
        else:
            self.current.entries.append(Entry(node, role))

    # -- statement dispatch -------------------------------------------------
    def build(self, fn: ast.AST) -> ControlFlowGraph:
        self._emit(fn, role="params")
        self._visit_body(fn.body)
        self._edge(self.current, self.exit)
        return ControlFlowGraph(fn, self.blocks, self.entry, self.exit)

    def _visit_body(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._visit(stmt)

    def _visit(self, stmt: ast.stmt) -> None:
        method = getattr(self, f"_visit_{type(stmt).__name__}", None)
        if method is not None:
            method(stmt)
        else:
            self._emit(stmt)

    def _visit_If(self, stmt: ast.If) -> None:
        self._emit(stmt, role="test")
        branch = self.current
        after = self._new_block()
        body = self._new_block()
        self._edge(branch, body)
        self.current = body
        self._visit_body(stmt.body)
        self._edge(self.current, after)
        if stmt.orelse:
            orelse = self._new_block()
            self._edge(branch, orelse)
            self.current = orelse
            self._visit_body(stmt.orelse)
            self._edge(self.current, after)
        else:
            self._edge(branch, after)
        self.current = after

    def _visit_While(self, stmt: ast.While) -> None:
        header = self._new_block()
        self._edge(self.current, header)
        self.current = header
        self._emit(stmt, role="test")
        branch = self.current
        after = self._new_block()
        body = self._new_block()
        self._edge(branch, body)
        self._loops.append((header, after))
        self.current = body
        self._visit_body(stmt.body)
        self._edge(self.current, header)
        self._loops.pop()
        if stmt.orelse:
            orelse = self._new_block()
            self._edge(branch, orelse)
            self.current = orelse
            self._visit_body(stmt.orelse)
            self._edge(self.current, after)
        else:
            self._edge(branch, after)
        self.current = after

    def _visit_For(self, stmt: ast.For | ast.AsyncFor) -> None:
        self._emit(stmt, role="iter")
        header = self._new_block()
        self._edge(self.current, header)
        branch = header
        after = self._new_block()
        body = self._new_block()
        self._edge(branch, body)
        self._loops.append((header, after))
        self.current = body
        # the loop target binds only on the iterating path, so a prior
        # store of the same name stays live across a zero-trip loop
        self._emit(stmt, role="target")
        self._visit_body(stmt.body)
        self._edge(self.current, header)
        self._loops.pop()
        if stmt.orelse:
            orelse = self._new_block()
            self._edge(branch, orelse)
            self.current = orelse
            self._visit_body(stmt.orelse)
            self._edge(self.current, after)
        else:
            self._edge(branch, after)
        self.current = after

    _visit_AsyncFor = _visit_For

    def _visit_Break(self, stmt: ast.Break) -> None:
        self._emit(stmt)
        if self._loops:
            for fin in self._finallys:
                self._edge(self.current, fin)
            self._edge(self.current, self._loops[-1][1])
        self.current = self._new_block()

    def _visit_Continue(self, stmt: ast.Continue) -> None:
        self._emit(stmt)
        if self._loops:
            for fin in self._finallys:
                self._edge(self.current, fin)
            self._edge(self.current, self._loops[-1][0])
        self.current = self._new_block()

    def _visit_Return(self, stmt: ast.Return) -> None:
        self._emit(stmt)
        for fin in self._finallys:
            self._edge(self.current, fin)
        self._edge(self.current, self.exit)
        self.current = self._new_block()

    def _visit_Raise(self, stmt: ast.Raise) -> None:
        self._emit(stmt)
        for target in self._escape_targets():
            self._edge(self.current, target)
        self.current = self._new_block()

    def _visit_Try(self, stmt: ast.Try) -> None:
        handler_entries = [self._new_block() for _ in stmt.handlers]
        finally_entry = self._new_block() if stmt.finalbody else None
        after = self._new_block()

        if finally_entry is not None:
            self._finallys.append(finally_entry)
        if handler_entries:
            self._handlers.append(handler_entries)
        body = self._new_block()
        self._edge(self.current, body)
        self.current = body
        self._visit_body(stmt.body)
        if handler_entries:
            self._handlers.pop()

        if stmt.orelse:
            orelse = self._new_block()
            self._edge(self.current, orelse)
            self.current = orelse
            self._visit_body(stmt.orelse)
        self._edge(self.current, finally_entry or after)

        # handler bodies run with this try's handlers inactive (an
        # exception there propagates out) but its finally still active
        for entry_block, handler in zip(handler_entries, stmt.handlers):
            self.current = entry_block
            self._emit(handler, role="except")
            self._visit_body(handler.body)
            self._edge(self.current, finally_entry or after)

        if finally_entry is not None:
            self._finallys.pop()
            self.current = finally_entry
            self._visit_body(stmt.finalbody)
            self._edge(self.current, after)
            # exceptional entry: the suite completes then re-raises
            for target in self._escape_targets():
                self._edge(self.current, target)
        self.current = after

    _visit_TryStar = _visit_Try

    def _visit_With(self, stmt: ast.With | ast.AsyncWith) -> None:
        self._emit(stmt, role="with")
        self._visit_body(stmt.body)

    _visit_AsyncWith = _visit_With

    def _visit_Match(self, stmt: ast.Match) -> None:
        self._emit(stmt, role="match")
        branch = self.current
        after = self._new_block()
        for case in stmt.cases:
            block = self._new_block()
            self._edge(branch, block)
            self.current = block
            self._emit(case, role="case")
            self._visit_body(case.body)
            self._edge(self.current, after)
        self._edge(branch, after)
        self.current = after

    def _visit_FunctionDef(self, stmt: ast.AST) -> None:
        self._emit(stmt, role="def")

    _visit_AsyncFunctionDef = _visit_FunctionDef
    _visit_ClassDef = _visit_FunctionDef


def build_cfg(fn: ast.AST) -> ControlFlowGraph:
    """Build the control-flow graph of one function definition."""
    if not isinstance(fn, _FUNCTION_NODES):
        raise TypeError(f"expected a function definition, got {type(fn).__name__}")
    return _CFGBuilder().build(fn)


# -- per-entry use/def extraction -------------------------------------------

def _immediate_parts(node: ast.AST) -> list[ast.AST]:
    """Sub-expressions of a scope-introducing node evaluated *now*."""
    parts: list[ast.AST] = []
    parts.extend(getattr(node, "decorator_list", ()))
    if isinstance(node, ast.ClassDef):
        parts.extend(node.bases)
        parts.extend(kw.value for kw in node.keywords)
        return parts
    args = node.args
    parts.extend(args.defaults)
    parts.extend(d for d in args.kw_defaults if d is not None)
    return parts


def _name_loads(node: ast.AST | None) -> set[str]:
    """Names read when ``node`` evaluates, excluding deferred bodies."""
    if node is None:
        return set()
    loads: set[str] = set()
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Name):
            if isinstance(current.ctx, ast.Load):
                loads.add(current.id)
        elif isinstance(current, _SCOPE_NODES + (ast.ClassDef,)):
            stack.extend(_immediate_parts(current))
        else:
            stack.extend(ast.iter_child_nodes(current))
    return loads


def _target_names(node: ast.AST | None) -> set[str]:
    """Plain names bound by an assignment/loop/with target."""
    if node is None:
        return set()
    names: set[str] = set()
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Name):
            names.add(current.id)
        elif isinstance(current, (ast.Tuple, ast.List)):
            stack.extend(current.elts)
        elif isinstance(current, ast.Starred):
            stack.append(current.value)
    return names


def _walrus_defs(node: ast.AST | None) -> set[str]:
    """Names bound by ``:=`` inside ``node``, excluding deferred bodies."""
    if node is None:
        return set()
    defs: set[str] = set()
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.NamedExpr):
            if isinstance(current.target, ast.Name):
                defs.add(current.target.id)
            stack.append(current.value)
        elif isinstance(current, _SCOPE_NODES):
            stack.extend(_immediate_parts(current))
        else:
            stack.extend(ast.iter_child_nodes(current))
    return defs


def _pattern_names(pattern: ast.AST) -> set[str]:
    """Capture names bound by a ``match`` case pattern."""
    names: set[str] = set()
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchAs) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.MatchStar) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.MatchMapping) and node.rest:
            names.add(node.rest)
    return names


def _fn_param_names(fn: ast.AST) -> set[str]:
    args = fn.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


def entry_uses(entry: Entry) -> set[str]:
    """Names read when this entry executes."""
    node, role = entry.node, entry.role
    if role == "stmt":
        uses = _name_loads(node)
        if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            uses.add(node.target.id)
        elif isinstance(node, ast.Delete):
            # ``del x`` needs the binding; treat it as a read so the
            # preceding store is not reported dead
            uses |= _target_names(node)
        return uses
    if role == "test":
        return _name_loads(node.test)
    if role == "iter":
        return _name_loads(node.iter)
    if role == "target":
        return _name_loads(node.target)
    if role == "with":
        uses: set[str] = set()
        for item in node.items:
            uses |= _name_loads(item.context_expr)
        return uses
    if role == "except":
        return _name_loads(node.type)
    if role == "def":
        return _name_loads(node)
    if role == "match":
        return _name_loads(node.subject)
    if role == "case":
        uses = _name_loads(node.guard)
        for sub in ast.walk(node.pattern):
            if isinstance(sub, ast.MatchValue):
                uses |= _name_loads(sub.value)
        return uses
    return set()  # params


def entry_defs(entry: Entry) -> set[str]:
    """Names bound when this entry executes."""
    node, role = entry.node, entry.role
    if role == "stmt":
        defs = _walrus_defs(node)
        if isinstance(node, ast.Assign):
            for target in node.targets:
                defs |= _target_names(target)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                defs.add(node.target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                defs.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name.split(".")[0]
                defs.add(bound)
        elif isinstance(node, ast.Delete):
            defs |= _target_names(node)
        return defs
    if role == "test":
        return _walrus_defs(node.test)
    if role == "iter":
        return _walrus_defs(node.iter)
    if role == "target":
        return _target_names(node.target)
    if role == "with":
        defs = set()
        for item in node.items:
            defs |= _target_names(item.optional_vars)
            defs |= _walrus_defs(item.context_expr)
        return defs
    if role == "except":
        return {node.name} if node.name else set()
    if role == "def":
        return {node.name}
    if role == "match":
        return _walrus_defs(node.subject)
    if role == "case":
        return _pattern_names(node.pattern)
    if role == "params":
        return _fn_param_names(node)
    return set()


def _flaggable_stores(entry: Entry) -> Iterator[tuple[str, ast.Name]]:
    """Candidate dead-store targets: plain non-underscore names."""
    node = entry.node
    if entry.role != "stmt":
        return
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name) and not target.id.startswith("_"):
                yield target.id, target
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        target = node.target
        if isinstance(target, ast.Name) and not target.id.startswith("_"):
            yield target.id, target


# -- dataflow ----------------------------------------------------------------

@dataclass(frozen=True)
class DeadStore:
    """A store whose value can never be read."""

    name: str
    lineno: int
    col: int


def ambient_names(fn: ast.AST) -> set[str]:
    """Names that must be treated as live everywhere in ``fn``.

    Covers ``global``/``nonlocal`` declarations and every name read in
    a nested function, lambda, or class body (those reads happen at
    times the CFG does not model).
    """
    ambient: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            ambient.update(node.names)
        elif isinstance(node, _SCOPE_NODES + (ast.ClassDef,)) and node is not fn:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    ambient.add(sub.id)
    return ambient


class FunctionFlow:
    """The dataflow facts of one function: liveness and reaching defs."""

    def __init__(self, fn: ast.AST) -> None:
        self.fn = fn
        self.cfg = build_cfg(fn)
        self.ambient = ambient_names(fn)

    def _block_use_def(self, block: Block) -> tuple[set[str], set[str]]:
        use: set[str] = set()
        defs: set[str] = set()
        for entry in block.entries:
            use |= entry_uses(entry) - defs
            defs |= entry_defs(entry)
        return use, defs

    def liveness(self) -> tuple[dict[int, set[str]], dict[int, set[str]]]:
        """Per-block live-in / live-out sets (backward fixpoint)."""
        blocks = self.cfg.blocks
        use_def = {b.id: self._block_use_def(b) for b in blocks}
        live_in: dict[int, set[str]] = {b.id: set() for b in blocks}
        live_out: dict[int, set[str]] = {b.id: set() for b in blocks}
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                out: set[str] = set()
                for succ in block.succs:
                    out |= live_in[succ]
                use, defs = use_def[block.id]
                inn = use | (out - defs)
                if out != live_out[block.id] or inn != live_in[block.id]:
                    live_out[block.id] = out
                    live_in[block.id] = inn
                    changed = True
        return live_in, live_out

    def dead_stores(self) -> list[DeadStore]:
        """Stores provably never read on any path (ambient names exempt)."""
        _, live_out = self.liveness()
        found: list[DeadStore] = []
        for block in self.cfg.blocks:
            live = set(live_out[block.id])
            for entry in reversed(block.entries):
                for name, target in _flaggable_stores(entry):
                    if name not in live and name not in self.ambient:
                        found.append(DeadStore(name, target.lineno,
                                               target.col_offset))
                live -= entry_defs(entry)
                live |= entry_uses(entry)
        found.sort(key=lambda ds: (ds.lineno, ds.col, ds.name))
        return found

    def reaching(self) -> tuple[dict[int, set[tuple[str, int]]],
                                dict[int, set[tuple[str, int]]]]:
        """Per-block reaching definitions (forward fixpoint).

        Definition sites are ``(name, lineno)`` pairs; function
        parameters count as definitions at the ``def`` line.
        """
        blocks = self.cfg.blocks
        gen: dict[int, set[tuple[str, int]]] = {}
        kill_names: dict[int, set[str]] = {}
        for block in blocks:
            last: dict[str, tuple[str, int]] = {}
            for entry in block.entries:
                line = getattr(entry.node, "lineno", 0)
                for name in entry_defs(entry):
                    last[name] = (name, line)
            gen[block.id] = set(last.values())
            kill_names[block.id] = set(last)
        preds = self.cfg.preds()
        reach_in: dict[int, set[tuple[str, int]]] = {b.id: set() for b in blocks}
        reach_out: dict[int, set[tuple[str, int]]] = {b.id: set() for b in blocks}
        changed = True
        while changed:
            changed = False
            for block in blocks:
                inn: set[tuple[str, int]] = set()
                for pred in preds[block.id]:
                    inn |= reach_out[pred]
                killed = kill_names[block.id]
                out = gen[block.id] | {d for d in inn if d[0] not in killed}
                if inn != reach_in[block.id] or out != reach_out[block.id]:
                    reach_in[block.id] = inn
                    reach_out[block.id] = out
                    changed = True
        return reach_in, reach_out


# -- loop depth & allocation classification ----------------------------------

def loop_depths(fn: ast.AST) -> dict[ast.AST, int]:
    """Loop-nesting depth of every node in ``fn``.

    ``for``/``while`` bodies add one level, as does each comprehension
    generator; ``else`` suites and ``for`` iterables run once and stay
    at the surrounding depth.  Nested function and lambda bodies reset
    to depth 0 — they execute when called, not where defined.
    """
    depths: dict[ast.AST, int] = {fn: 0}

    def visit(node: ast.AST, depth: int) -> None:
        depths[node] = depth
        if isinstance(node, (ast.For, ast.AsyncFor)):
            visit(node.iter, depth)
            visit(node.target, depth + 1)
            for stmt in node.body:
                visit(stmt, depth + 1)
            for stmt in node.orelse:
                visit(stmt, depth)
        elif isinstance(node, ast.While):
            visit(node.test, depth + 1)
            for stmt in node.body:
                visit(stmt, depth + 1)
            for stmt in node.orelse:
                visit(stmt, depth)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            inner = depth
            for gen in node.generators:
                visit(gen.iter, inner)
                inner += 1
                visit(gen.target, inner)
                for cond in gen.ifs:
                    visit(cond, inner)
            if isinstance(node, ast.DictComp):
                visit(node.key, inner)
                visit(node.value, inner)
            else:
                visit(node.elt, inner)
        elif isinstance(node, _SCOPE_NODES):
            for part in _immediate_parts(node):
                visit(part, depth)
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                visit(stmt, 0)
        else:
            for child in ast.iter_child_nodes(node):
                visit(child, depth)

    for stmt in fn.body:
        visit(stmt, 0)
    return depths


#: constructor names whose calls always allocate a fresh container
ALLOC_CTORS = frozenset({"list", "dict", "set", "frozenset", "bytearray"})

_ALLOC_DISPLAYS = {ast.List: "list display", ast.Set: "set display",
                   ast.Dict: "dict display"}
_ALLOC_COMPS = {ast.ListComp: "list comprehension",
                ast.SetComp: "set comprehension",
                ast.DictComp: "dict comprehension"}


def allocations(fn: ast.AST) -> list[tuple[ast.AST, str]]:
    """Expressions in ``fn`` that allocate a new container object.

    Tuples and generator expressions are excluded: tuple displays are
    cheap (often constant-folded) and genexps allocate once, lazily.
    """
    found: list[tuple[ast.AST, str]] = []
    for node in ast.walk(fn):
        kind = _ALLOC_DISPLAYS.get(type(node)) or _ALLOC_COMPS.get(type(node))
        if kind is not None:
            found.append((node, kind))
        elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
              and node.func.id in ALLOC_CTORS):
            found.append((node, f"{node.func.id}() constructor call"))
    found.sort(key=lambda pair: (getattr(pair[0], "lineno", 0),
                                 getattr(pair[0], "col_offset", 0)))
    return found
