"""Three-phase curriculum training and the Fig 4 ordering study.

The paper's key training insight: *DRAS starts with simple average
cases and gradually improves its capability with unseen rare cases*
(§III-C).  Training proceeds through sampled, real, then synthetic
jobsets; Fig 4 shows this ordering converges fastest and to the best
model, while synthetic-first converges slowly and real-only never
converges.
"""

from __future__ import annotations

import numpy as np

from repro.rl.trainer import Trainer, TrainingHistory
from repro.sim.job import Job
from repro.workload.jobsets import CurriculumPhase, three_phase_curriculum
from repro.workload.models import WorkloadModel


def _flatten(phases: list[CurriculumPhase]) -> list[tuple[str, list[Job]]]:
    return [(phase.name, jobset) for phase in phases for jobset in phase.jobsets]


def train_with_curriculum(
    agent,
    model: WorkloadModel,
    base_trace: list[Job],
    validation_jobs: list[Job],
    rng: np.random.Generator,
    n_sampled: int = 9,
    n_real: int = 9,
    n_synthetic: int = 82,
    jobs_per_set: int | None = None,
    order: tuple[str, ...] = ("sampled", "real", "synthetic"),
    telemetry=None,
    faults=None,
    checkpoint_path=None,
    checkpoint_every: int = 1,
    history: TrainingHistory | None = None,
    live=None,
) -> TrainingHistory:
    """Train ``agent`` with the three-phase curriculum.

    Defaults mirror the Theta setup of §IV-D (9 sampled + 9 real + 82
    synthetic jobsets); experiments scale the counts down via the
    keyword arguments.  ``telemetry`` (a
    :class:`~repro.rl.telemetry.TelemetryWriter` or path), ``faults``
    (a :class:`~repro.sim.faults.FaultConfig`), ``live`` (a
    :class:`~repro.obs.live.LiveBus`) and the checkpoint knobs
    are forwarded to the :class:`~repro.rl.trainer.Trainer`; ``history``
    resumes a checkpointed run (completed episodes are skipped, so the
    curriculum must be regenerated with the *same* ``rng`` seed the
    interrupted run used).
    """
    phases = three_phase_curriculum(
        model,
        base_trace,
        rng,
        n_sampled=n_sampled,
        n_real=n_real,
        n_synthetic=n_synthetic,
        jobs_per_set=jobs_per_set,
        order=order,
    )
    trainer = Trainer(agent, model.num_nodes, validation_jobs=validation_jobs,
                      telemetry=telemetry, faults=faults,
                      checkpoint_path=checkpoint_path,
                      checkpoint_every=checkpoint_every, live=live)
    return trainer.train(_flatten(phases), history=history)


def compare_phase_orders(
    agent_factory,
    model: WorkloadModel,
    base_trace: list[Job],
    validation_jobs: list[Job],
    seed: int = 0,
    orders: tuple[tuple[str, ...], ...] = (
        ("sampled", "real", "synthetic"),
        ("real", "sampled", "synthetic"),
        ("synthetic", "sampled", "real"),
    ),
    **curriculum_kwargs,
) -> dict[tuple[str, ...], TrainingHistory]:
    """Train one fresh agent per phase ordering (the Fig 4 study).

    ``agent_factory`` builds an identically-initialized agent for every
    ordering; the jobset RNG is reseeded per ordering so each agent
    sees statistically identical (but order-permuted) curricula.
    """
    results: dict[tuple[str, ...], TrainingHistory] = {}
    for order in orders:
        rng = np.random.default_rng(seed)
        agent = agent_factory()
        results[order] = train_with_curriculum(
            agent,
            model,
            base_trace,
            validation_jobs,
            rng,
            order=order,
            **curriculum_kwargs,
        )
    return results
