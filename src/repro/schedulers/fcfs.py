"""FCFS with EASY backfilling (paper section IV-A).

Jobs are prioritized by arrival time.  The head of the queue runs as
soon as it fits; when it does not, resources are reserved for it at the
shadow time and subsequent jobs may backfill under the EASY condition
(they must not delay the reservation).  Candidate selection is
*first-fit*: the earliest-arrived legal candidate backfills first.
"""

from __future__ import annotations

from repro.schedulers.base import BaseScheduler
from repro.sim.engine import SchedulingView


class FCFSEasy(BaseScheduler):
    """First come, first served with EASY backfilling."""

    name = "FCFS"

    def schedule(self, view: SchedulingView) -> None:
        # Phase 1: run jobs from the head of the queue while they fit.
        # window(1) peeks the head without copying the whole queue.
        while True:
            window = view.window(1)
            if not window:
                return
            head = window[0]
            if head.size <= view.free_nodes:
                view.start(head)
            else:
                break

        # Phase 2: reserve for the blocked head job.
        view.reserve(head)

        # Phase 3: first-fit backfilling until no candidate remains.
        while True:
            job = view.backfill_first()
            if job is None:
                return
            view.start(job)
