"""The rigid-job model used throughout the reproduction.

Typical HPC jobs are *rigid*: the number of nodes is fixed for the whole
execution (paper section II-A).  A user submits a job with a size
``n_i`` (nodes) and a walltime estimate ``t_i``; the estimate is an
upper bound — the scheduler kills any job whose actual runtime exceeds
it, so the effective runtime is ``min(actual, estimate)``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class JobState(enum.Enum):
    """Lifecycle state of a job inside the simulator."""

    PENDING = "pending"      #: known to the trace, not yet submitted
    HELD = "held"            #: submitted but blocked on dependencies
    WAITING = "waiting"      #: in the wait queue, eligible for scheduling
    RUNNING = "running"      #: allocated and executing
    FINISHED = "finished"    #: completed (or killed at its walltime)
    FAILED = "failed"        #: lost to a fault and not requeued (abandoned)


class ExecMode(enum.Enum):
    """How a job was started — the paper's three execution modes (§III-B)."""

    READY = "ready"            #: selected to run immediately
    RESERVED = "reserved"      #: started at (or after) a resource reservation
    BACKFILLED = "backfilled"  #: filled a hole ahead of a reservation


_id_counter = itertools.count(1)


def _next_job_id() -> int:
    return next(_id_counter)


@dataclass(slots=True)
class Job:
    """A rigid batch job.

    Parameters
    ----------
    size:
        Number of compute nodes requested.  Fixed for the job lifetime.
    walltime:
        User-supplied runtime estimate in seconds (upper bound).
    runtime:
        Actual runtime in seconds.  Clamped to ``walltime`` on creation,
        mirroring production schedulers that kill jobs exceeding their
        estimate.
    submit_time:
        Submission timestamp in seconds since the trace epoch.
    priority:
        1 for high-priority (e.g. capability) jobs, 0 otherwise.  This is
        the third field of the paper's per-job state encoding.
    dependencies:
        Ids of jobs that must finish before this one becomes eligible.
        On Theta ~2.25% of jobs have dependencies; the scheduler hides
        them until all parents have executed (paper §IV-C).
    """

    size: int
    walltime: float
    runtime: float
    submit_time: float
    priority: int = 0
    dependencies: tuple[int, ...] = ()
    user: str = ""
    job_id: int = field(default_factory=_next_job_id)

    # -- mutable lifecycle state ------------------------------------------
    state: JobState = field(default=JobState.PENDING, compare=False)
    start_time: float | None = field(default=None, compare=False)
    end_time: float | None = field(default=None, compare=False)
    mode: ExecMode | None = field(default=None, compare=False)
    #: set once the job has ever held the backfill reservation; used for
    #: execution-mode attribution (Table IV).
    ever_reserved: bool = field(default=False, compare=False)
    #: times this job was killed by a fault (node failure or job kill)
    times_killed: int = field(default=0, compare=False)
    #: node-seconds of partial work lost to fault kills (wasted work)
    wasted_node_seconds: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"job {self.job_id}: size must be positive, got {self.size}")
        if self.walltime <= 0:
            raise ValueError(f"job {self.job_id}: walltime must be positive, got {self.walltime}")
        if self.runtime <= 0:
            raise ValueError(f"job {self.job_id}: runtime must be positive, got {self.runtime}")
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: submit_time must be >= 0")
        if self.priority not in (0, 1):
            raise ValueError(f"job {self.job_id}: priority must be 0 or 1, got {self.priority}")
        # The scheduler kills jobs that run past their estimate.
        if self.runtime > self.walltime:
            self.runtime = float(self.walltime)
        self.walltime = float(self.walltime)
        self.runtime = float(self.runtime)
        self.submit_time = float(self.submit_time)

    # -- derived quantities -----------------------------------------------
    def queued_time(self, now: float) -> float:
        """Time elapsed since submission (the paper's fourth job feature)."""
        return max(0.0, now - self.submit_time)

    @property
    def wait_time(self) -> float:
        """Interval between submission and start (user-level metric)."""
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.start_time - self.submit_time

    @property
    def response_time(self) -> float:
        """Interval between submission and completion (user-level metric)."""
        if self.end_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.end_time - self.submit_time

    def slowdown(self, bound: float = 0.0) -> float:
        """Ratio of response time to actual runtime.

        ``bound`` optionally applies the standard *bounded slowdown*
        correction (e.g. 10 s) so that very short jobs do not dominate;
        the paper's plain slowdown corresponds to ``bound=0``.
        """
        denom = max(self.runtime, bound)
        return self.response_time / denom

    @property
    def node_seconds(self) -> float:
        """Nodes x actual runtime, the resource consumption of the job."""
        return self.size * self.runtime

    @property
    def core_hours(self) -> float:
        """Node-hours consumed (the paper reports these as core hours)."""
        return self.node_seconds / 3600.0

    # -- lifecycle transitions ---------------------------------------------
    def mark_started(self, now: float, mode: ExecMode) -> None:
        """Transition to RUNNING at ``now`` under execution mode ``mode``."""
        if self.state not in (JobState.WAITING, JobState.PENDING):
            raise RuntimeError(f"job {self.job_id} cannot start from state {self.state}")
        if now + 1e-9 < self.submit_time:
            raise RuntimeError(f"job {self.job_id} cannot start before submission")
        self.state = JobState.RUNNING
        self.start_time = float(now)
        self.mode = mode

    def mark_finished(self, now: float) -> None:
        """Transition from RUNNING to FINISHED at ``now``."""
        if self.state is not JobState.RUNNING:
            raise RuntimeError(f"job {self.job_id} cannot finish from state {self.state}")
        self.state = JobState.FINISHED
        self.end_time = float(now)

    def mark_killed(self, now: float, requeue: bool) -> None:
        """A fault killed this running job at ``now``.

        The partial work (``size * elapsed``) is accounted as wasted.
        With ``requeue`` the job returns to WAITING with a clean start
        (it restarts from scratch later); otherwise it becomes FAILED
        and never runs again.
        """
        if self.state is not JobState.RUNNING:
            raise RuntimeError(
                f"job {self.job_id} cannot be killed from state {self.state}"
            )
        assert self.start_time is not None
        self.wasted_node_seconds += self.size * max(0.0, now - self.start_time)
        self.times_killed += 1
        if requeue:
            self.state = JobState.WAITING
            self.start_time = None
            self.mode = None
        else:
            self.state = JobState.FAILED
            self.end_time = float(now)

    def mark_abandoned(self) -> None:
        """A fault made this non-running job permanently unrunnable.

        Used for held/pending dependents of a FAILED job (dependency
        cancellation): they never held nodes, so there is no wasted
        work to account.
        """
        if self.state in (JobState.RUNNING, JobState.FINISHED):
            raise RuntimeError(
                f"job {self.job_id} cannot be abandoned from state {self.state}"
            )
        self.state = JobState.FAILED

    def copy_fresh(self) -> "Job":
        """Return a pristine copy with all lifecycle state reset.

        Training runs many episodes over the same jobsets; each episode
        needs jobs with clean lifecycle state.
        """
        return Job(
            size=self.size,
            walltime=self.walltime,
            runtime=self.runtime,
            submit_time=self.submit_time,
            priority=self.priority,
            dependencies=self.dependencies,
            user=self.user,
            job_id=self.job_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, size={self.size}, walltime={self.walltime:.0f}, "
            f"runtime={self.runtime:.0f}, submit={self.submit_time:.0f}, "
            f"state={self.state.value})"
        )


def reset_job_id_counter(start: int = 1) -> None:
    """Reset the auto-id counter (useful for deterministic tests)."""
    global _id_counter
    _id_counter = itertools.count(start)
