"""Property-based tests of simulator-wide invariants.

Whatever the policy and workload, a correct scheduler run must satisfy:

* every job finishes exactly once, with ``start >= submit`` and
  ``end = start + runtime``;
* the node capacity is never exceeded at any point in time;
* with FCFS/EASY, a backfilled job never delays the reservation it
  jumped over (the reserved job starts no later than the shadow time
  computed when it was first blocked, given estimates are upper bounds).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DRASConfig
from repro.core.dras_dql import DRASDQL
from repro.core.dras_pg import DRASPG
from repro.schedulers import BinPacking, FCFSEasy, KnapsackOptimization, RandomScheduler
from repro.sim.engine import run_simulation
from repro.sim.job import Job, JobState

NUM_NODES = 16


@st.composite
def jobsets(draw, max_jobs=25):
    n = draw(st.integers(1, max_jobs))
    jobs = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(0.0, 100.0))
        size = draw(st.integers(1, NUM_NODES))
        walltime = draw(st.floats(1.0, 500.0))
        runtime = draw(st.floats(0.5, walltime))
        jobs.append(
            Job(size=size, walltime=walltime, runtime=runtime, submit_time=t)
        )
    return jobs


def check_invariants(jobs: list[Job]) -> None:
    events = []
    for job in jobs:
        assert job.state is JobState.FINISHED
        assert job.start_time is not None and job.end_time is not None
        assert job.start_time >= job.submit_time - 1e-9
        assert job.end_time == pytest.approx(job.start_time + job.runtime)
        assert job.mode is not None
        events.append((job.start_time, 1, job.size))
        events.append((job.end_time, 0, job.size))
    # capacity: sweep events (ends before starts at equal times)
    events.sort()
    used = 0
    for _, is_start, size in events:
        used += size if is_start else -size
        assert used <= NUM_NODES
    assert used == 0


@settings(max_examples=30, deadline=None)
@given(jobs=jobsets())
def test_fcfs_invariants(jobs):
    run_simulation(NUM_NODES, FCFSEasy(), jobs)
    check_invariants(jobs)


@settings(max_examples=30, deadline=None)
@given(jobs=jobsets())
def test_binpacking_invariants(jobs):
    run_simulation(NUM_NODES, BinPacking(), jobs)
    check_invariants(jobs)


@settings(max_examples=30, deadline=None)
@given(jobs=jobsets(), seed=st.integers(0, 100))
def test_random_invariants(jobs, seed):
    run_simulation(NUM_NODES, RandomScheduler(seed=seed), jobs)
    check_invariants(jobs)


@settings(max_examples=20, deadline=None)
@given(jobs=jobsets())
def test_knapsack_invariants(jobs):
    run_simulation(NUM_NODES, KnapsackOptimization("capability"), jobs)
    check_invariants(jobs)


@settings(max_examples=10, deadline=None)
@given(jobs=jobsets(max_jobs=12), seed=st.integers(0, 20))
def test_dras_pg_invariants(jobs, seed):
    cfg = DRASConfig(num_nodes=NUM_NODES, window=4, hidden1=10, hidden2=5,
                     seed=seed, time_scale=500.0)
    run_simulation(NUM_NODES, DRASPG(cfg), jobs)
    check_invariants(jobs)


@settings(max_examples=10, deadline=None)
@given(jobs=jobsets(max_jobs=12), seed=st.integers(0, 20))
def test_dras_dql_invariants(jobs, seed):
    cfg = DRASConfig(num_nodes=NUM_NODES, window=4, hidden1=10, hidden2=5,
                     seed=seed, time_scale=500.0)
    run_simulation(NUM_NODES, DRASDQL(cfg), jobs)
    check_invariants(jobs)


@settings(max_examples=30, deadline=None)
@given(jobs=jobsets())
def test_fcfs_is_deterministic(jobs):
    """Two FCFS replays of the same jobset give identical schedules."""
    first = [j.copy_fresh() for j in jobs]
    second = [j.copy_fresh() for j in jobs]
    run_simulation(NUM_NODES, FCFSEasy(), first)
    run_simulation(NUM_NODES, FCFSEasy(), second)
    for a, b in zip(first, second):
        assert a.start_time == b.start_time
        assert a.mode == b.mode


@settings(max_examples=20, deadline=None)
@given(jobs=jobsets())
def test_fcfs_head_never_overtaken_by_delaying_jobs(jobs):
    """EASY guarantee: each job starts no later than the moment the
    machine could first fit it had the queue frozen (weak no-starvation:
    the maximum wait is bounded by the sum of walltimes ahead of it)."""
    run_simulation(NUM_NODES, FCFSEasy(), jobs)
    horizon = sum(j.walltime for j in jobs)
    for job in jobs:
        assert job.wait_time <= horizon + 1e-6
