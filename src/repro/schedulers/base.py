"""Common scaffolding for scheduling policies."""

from __future__ import annotations

from repro.sim.engine import SchedulingView


class BaseScheduler:
    """Base class for all policies.

    Subclasses implement :meth:`schedule`; the engine calls it once per
    scheduling instance with a :class:`~repro.sim.engine.SchedulingView`
    through which the policy takes its actions.
    """

    #: human-readable policy name, used in experiment reports
    name: str = "base"

    def schedule(self, view: SchedulingView) -> None:
        raise NotImplementedError

    # Optional lifecycle hooks --------------------------------------------
    def on_simulation_start(self, engine) -> None:  # noqa: ANN001
        """Called by the engine before the first event is processed."""

    def on_simulation_end(self, engine) -> None:  # noqa: ANN001
        """Called by the engine after the last event is processed."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
