"""Wait-queue management with dependency gating and window extraction.

The queue is kept in arrival order (FCFS order).  Jobs with unfinished
dependencies are *held* — hidden from scheduling until all parents have
executed, exactly as the Theta scheduler does (paper section IV-C).

The *window* at the front of the queue is the mechanism DRAS uses to
alleviate starvation: only the ``W`` oldest eligible jobs are visible to
the level-1 network, giving older jobs structurally higher priority
(paper section III-B).
"""

from __future__ import annotations

from repro.sim.job import Job, JobState


class WaitQueue:
    """Arrival-ordered wait queue with dependency holding."""

    def __init__(self) -> None:
        #: eligible jobs in arrival order
        self._waiting: list[Job] = []
        #: submitted jobs blocked on dependencies
        self._held: list[Job] = []
        #: ids of all finished jobs, for dependency resolution
        self._finished: set[int] = set()
        #: ids of jobs lost to faults (FAILED); their dependents can
        #: never become eligible
        self._dead: set[int] = set()

    # -- submission / release ---------------------------------------------
    def submit(self, job: Job) -> bool:
        """Add a newly arrived job, holding it if dependencies are open.

        Returns ``False`` (without enqueueing) when a dependency has
        already FAILED — the job can never become eligible and the
        caller decides its fate (the engine abandons it).
        """
        if job.state not in (JobState.PENDING,):
            raise RuntimeError(f"job {job.job_id} resubmitted (state {job.state})")
        if self._deps_dead(job):
            self._dead.add(job.job_id)
            return False
        if self._deps_met(job):
            job.state = JobState.WAITING
            self._waiting.append(job)
        else:
            job.state = JobState.HELD
            self._held.append(job)
        return True

    def requeue(self, job: Job, front: bool) -> None:
        """Return a fault-killed job (already back in WAITING) to the queue.

        ``front`` inserts it at the head (it keeps its accumulated
        seniority and runs again as soon as possible); otherwise it
        joins the tail like a fresh arrival.
        """
        if job.state is not JobState.WAITING:
            raise RuntimeError(
                f"job {job.job_id} cannot be requeued from state {job.state}"
            )
        if front:
            self._waiting.insert(0, job)
        else:
            self._waiting.append(job)

    def notify_finished(self, job: Job) -> None:
        """Record a completion and release any dependents it unblocks.

        Released jobs are appended in submit-time order so the queue
        remains sorted by effective arrival.
        """
        self._finished.add(job.job_id)
        released = [j for j in self._held if self._deps_met(j)]
        if not released:
            return
        self._held = [j for j in self._held if not self._deps_met(j)]
        released.sort(key=lambda j: (j.submit_time, j.job_id))
        for j in released:
            j.state = JobState.WAITING
            self._waiting.append(j)

    def notify_failed(self, job: Job) -> list[Job]:
        """Record a fault-abandoned job and cascade to doomed dependents.

        A held job whose dependency FAILED can never become eligible;
        it (and, transitively, its own dependents) are removed from the
        held list and returned in ``(submit_time, job_id)`` order so the
        engine can mark them abandoned and account for them.  Returns an
        empty list when nothing depended on the failed job.
        """
        self._dead.add(job.job_id)
        doomed: list[Job] = []
        # the per-round rebuilds below run only when a job is abandoned
        # by a fault (rare by construction), never per event
        while True:
            newly = [j for j in self._held if self._deps_dead(j)]  # repro: noqa[hot-loop-alloc]
            if not newly:
                break
            self._held = [j for j in self._held if not self._deps_dead(j)]  # repro: noqa[hot-loop-alloc]
            for j in newly:
                self._dead.add(j.job_id)
            doomed.extend(newly)
        doomed.sort(key=lambda j: (j.submit_time, j.job_id))
        return doomed

    def _deps_met(self, job: Job) -> bool:
        return all(dep in self._finished for dep in job.dependencies)

    def _deps_dead(self, job: Job) -> bool:
        return any(dep in self._dead for dep in job.dependencies)

    # -- scheduling access ---------------------------------------------------
    def remove(self, job: Job) -> None:
        """Remove a job that has been selected to start."""
        # identity scan: ``list.remove`` would compare dataclass fields
        # pairwise down the queue, and the engine only ever removes the
        # exact object it was handed
        waiting = self._waiting
        for i, queued in enumerate(waiting):
            if queued is job:
                del waiting[i]
                return
        raise RuntimeError(f"job {job.job_id} is not waiting")

    def window(self, size: int) -> list[Job]:
        """The ``size`` oldest eligible jobs (the paper's window)."""
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size}")
        return self._waiting[:size]

    def peek_waiting(self) -> list[Job]:
        """The live waiting list (read-only; NOT safe across mutation).

        Engine-internal fast path: callers must not mutate it and must
        not hold it across :meth:`remove`/:meth:`submit`.  Policies go
        through the copying :attr:`waiting` instead.
        """
        return self._waiting

    @property
    def waiting(self) -> list[Job]:
        """All eligible jobs in arrival order (a copy)."""
        # the copy is the safety contract: policies iterate this while
        # starting jobs, which mutates the underlying queue
        return list(self._waiting)  # repro: noqa[hot-rebuild]

    @property
    def held(self) -> list[Job]:
        """Jobs whose dependencies are not yet satisfied (a copy)."""
        return list(self._held)

    def __len__(self) -> int:
        return len(self._waiting)

    @property
    def total_pending(self) -> int:
        """Waiting plus held jobs."""
        return len(self._waiting) + len(self._held)

    def __contains__(self, job: Job) -> bool:
        return job in self._waiting

    def clear(self) -> None:
        """Drop all queued, held, finished, and failed bookkeeping."""
        self._waiting.clear()
        self._held.clear()
        self._finished.clear()
        self._dead.clear()
