"""Tests for the intraprocedural CFG/dataflow engine (``repro.check.flow``).

Exercises the soundness conventions documented in the module: exception
edges keep handler-observed stores live, nested-scope reads are ambient,
zero-trip loops preserve prior stores, and only plain non-underscore
``name = value`` targets are candidate dead stores.  Also covers the
loop-depth and allocation classifiers the RPR5xx rules are built on.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.check.flow import (
    ALLOC_CTORS,
    FunctionFlow,
    allocations,
    ambient_names,
    build_cfg,
    loop_depths,
)


def fn_from(source: str, name: str | None = None) -> ast.FunctionDef:
    """Parse ``source`` and return the (named) function definition."""
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if name is None or node.name == name:
                return node
    raise AssertionError(f"no function {name!r} in source")


def dead_names(source: str) -> list[tuple[str, int]]:
    """``(name, lineno)`` of every dead store found in ``source``."""
    flow = FunctionFlow(fn_from(source))
    return [(ds.name, ds.lineno) for ds in flow.dead_stores()]


class TestCFG:
    def test_rejects_non_function(self):
        with pytest.raises(TypeError, match="function definition"):
            build_cfg(ast.parse("x = 1").body[0])

    def test_straight_line_reaches_exit(self):
        cfg = build_cfg(fn_from("def f():\n    a = 1\n    return a\n"))
        assert cfg.entry is not cfg.exit
        # exit is reachable from entry through the successor edges
        seen, frontier = set(), [cfg.entry.id]
        while frontier:
            bid = frontier.pop()
            if bid in seen:
                continue
            seen.add(bid)
            frontier.extend(cfg.blocks[bid].succs)
        assert cfg.exit.id in seen

    def test_preds_mirror_succs(self):
        cfg = build_cfg(fn_from("""
            def f(c):
                if c:
                    return 1
                return 2
        """))
        preds = cfg.preds()
        for block in cfg.blocks:
            for succ in block.succs:
                assert block.id in preds[succ]


class TestDeadStores:
    def test_overwritten_store_is_dead(self):
        assert dead_names("""
            def f():
                x = 1
                x = 2
                return x
        """) == [("x", 3)]

    def test_store_never_read_is_dead(self):
        assert dead_names("""
            def f(a):
                result = a + 1
                return a
        """) == [("result", 3)]

    def test_underscore_names_exempt(self):
        assert dead_names("""
            def f(pairs):
                _unused = 1
                return len(pairs)
        """) == []

    def test_augmented_assign_not_flaggable_and_keeps_base_live(self):
        # x += 1 both reads x (so x = 0 is live) and is itself exempt
        assert dead_names("""
            def f():
                x = 0
                x += 1
        """) == []

    def test_tuple_unpacking_exempt(self):
        assert dead_names("""
            def f(pair):
                a, b = pair
                return 0
        """) == []

    def test_conditional_read_keeps_store_live(self):
        assert dead_names("""
            def f(c):
                x = 1
                if c:
                    return x
                return 0
        """) == []

    def test_zero_trip_for_loop_keeps_prior_store_live(self):
        # the loop target binds only on the iterating path, so the
        # pre-loop store must survive an empty iterable
        assert dead_names("""
            def f(xs):
                x = -1
                for x in xs:
                    pass
                return x
        """) == []

    def test_store_read_only_in_except_handler_is_live(self):
        assert dead_names("""
            def f(a, risky):
                x = a + 1
                try:
                    risky()
                except ValueError:
                    return x
                return 0
        """) == []

    def test_exception_between_try_statements_keeps_first_store_live(self):
        # risky() may raise after x = 1 and before x = 2; the handler
        # then observes the first store, so neither is dead
        assert dead_names("""
            def f(risky):
                try:
                    x = 1
                    risky()
                    x = 2
                except Exception:
                    return x
                return x
        """) == []

    def test_unread_store_in_finally_is_dead(self):
        assert dead_names("""
            def f(g):
                try:
                    g()
                finally:
                    leftover = 1
                return 0
        """) == [("leftover", 6)]

    def test_while_else_reads_keep_store_live(self):
        assert dead_names("""
            def f(n):
                total = 0
                while n > 0:
                    n -= 1
                else:
                    return total
        """) == []

    def test_break_edge_keeps_store_live(self):
        assert dead_names("""
            def f(items):
                found = None
                for item in items:
                    if item:
                        found = item
                        break
                return found
        """) == []

    def test_unread_store_before_break_is_dead(self):
        assert dead_names("""
            def f(items, compute):
                for item in items:
                    x = compute(item)
                    break
                return 0
        """) == [("x", 4)]

    def test_continue_path_keeps_loop_carried_store_live(self):
        assert dead_names("""
            def f(items):
                prev = 0
                for item in items:
                    if item < 0:
                        continue
                    prev = prev + item
                return prev
        """) == []

    def test_nested_function_read_is_ambient(self):
        assert dead_names("""
            def f():
                x = 1
                def g():
                    return x
                return g
        """) == []

    def test_lambda_read_is_ambient(self):
        assert dead_names("""
            def f():
                factor = 2
                return lambda v: v * factor
        """) == []

    def test_global_declaration_is_ambient(self):
        assert dead_names("""
            def f():
                global cfg
                cfg = 1
        """) == []

    def test_store_read_only_inside_comprehension(self):
        assert dead_names("""
            def f(rows):
                width = len(rows)
                return [r * width for r in rows]
        """) == []

    def test_genexp_result_stored_then_dropped_is_dead(self):
        assert dead_names("""
            def f(rows):
                squares = [r * r for r in rows]
                return len(rows)
        """) == [("squares", 3)]


class TestAmbientNames:
    def test_collects_nested_scope_loads_and_globals(self):
        fn = fn_from("""
            def f():
                global shared
                x = 1
                def g():
                    return x + other
                h = lambda: captured
                return g, h
        """)
        ambient = ambient_names(fn)
        assert {"shared", "x", "other", "captured"} <= ambient


class TestReaching:
    def test_both_branch_definitions_reach_the_join(self):
        fn = fn_from("""
            def f(c):
                x = 1
                if c:
                    x = 2
                return x
        """)
        flow = FunctionFlow(fn)
        reach_in, _ = flow.reaching()
        return_block = next(
            b for b in flow.cfg.blocks
            if any(isinstance(e.node, ast.Return) for e in b.entries)
        )
        sites = {d for d in reach_in[return_block.id] if d[0] == "x"}
        assert sites == {("x", 3), ("x", 5)}

    def test_parameters_reach_the_body(self):
        fn = fn_from("""
            def f(c):
                return c
        """)
        flow = FunctionFlow(fn)
        _, reach_out = flow.reaching()
        assert ("c", 2) in reach_out[flow.cfg.entry.id]


class TestLoopDepths:
    def test_nested_for_and_iter_depths(self):
        fn = fn_from("""
            def f(rows):
                for row in rows:
                    for cell in row:
                        touch(cell)
                    finish(row)
        """)
        depths = loop_depths(fn)
        by_line = {getattr(n, "lineno", 0): d for n, d in depths.items()
                   if isinstance(n, ast.Call)}
        assert by_line[5] == 2  # touch(cell) in the inner body
        assert by_line[6] == 1  # finish(row) in the outer body
        outer, inner = [n for n in ast.walk(fn) if isinstance(n, ast.For)]
        assert depths[outer.iter] == 0  # rows evaluated once
        assert depths[inner.iter] == 1  # row evaluated per outer iteration

    def test_for_else_stays_at_surrounding_depth(self):
        fn = fn_from("""
            def f(xs):
                for x in xs:
                    step(x)
                else:
                    wrap_up()
        """)
        depths = loop_depths(fn)
        calls = {n.func.id: d for n, d in depths.items()
                 if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)}
        assert calls == {"step": 1, "wrap_up": 0}

    def test_while_test_and_body_are_inside_the_loop(self):
        fn = fn_from("""
            def f(q):
                while check(q):
                    drain(q)
        """)
        depths = loop_depths(fn)
        calls = {n.func.id: d for n, d in depths.items()
                 if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)}
        assert calls == {"check": 1, "drain": 1}

    def test_comprehension_generators_nest_incrementally(self):
        fn = fn_from("""
            def f(m):
                return [y for row in m for y in row]
        """)
        depths = loop_depths(fn)
        comp = next(n for n in ast.walk(fn) if isinstance(n, ast.ListComp))
        assert depths[comp.elt] == 2
        assert depths[comp.generators[0].iter] == 0
        assert depths[comp.generators[1].iter] == 1

    def test_nested_function_body_resets_to_zero(self):
        fn = fn_from("""
            def f(xs):
                for x in xs:
                    def g():
                        return helper()
                    h = lambda: other()
                    use(g, h, x)
        """, name="f")
        depths = loop_depths(fn)
        calls = {n.func.id: d for n, d in depths.items()
                 if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)}
        # the definitions sit inside the loop, but their bodies run when
        # called, not where defined
        assert calls["helper"] == 0
        assert calls["other"] == 0
        assert calls["use"] == 1


class TestAllocations:
    def test_classifies_displays_comprehensions_and_ctors(self):
        fn = fn_from("""
            def f(xs):
                a = [1]
                b = {1}
                c = {"k": 1}
                d = [x for x in xs]
                e = {x for x in xs}
                g = {x: x for x in xs}
                h = list(xs)
                i = set(xs)
                return a, b, c, d, e, g, h, i
        """)
        kinds = [kind for _, kind in allocations(fn)]
        assert kinds == [
            "list display", "set display", "dict display",
            "list comprehension", "set comprehension", "dict comprehension",
            "list() constructor call", "set() constructor call",
        ]

    def test_tuples_and_genexps_are_excluded(self):
        fn = fn_from("""
            def f(xs):
                pair = (1, 2)
                lazy = (x for x in xs)
                t = tuple(xs)
                return pair, lazy, t
        """)
        assert allocations(fn) == []
        assert "tuple" not in ALLOC_CTORS

    def test_sorted_by_position(self):
        fn = fn_from("""
            def f(xs):
                return list(xs), [0], {1}
        """)
        found = allocations(fn)
        positions = [(n.lineno, n.col_offset) for n, _ in found]
        assert positions == sorted(positions)
