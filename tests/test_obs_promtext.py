"""Prometheus text exposition: rendering, name sanitising, the linter."""

import math

from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import (
    lint_prometheus,
    render_prometheus,
    render_registry,
    sanitize_metric_name,
)


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("engine.events_submit") == \
            "engine_events_submit"

    def test_leading_digit_gains_prefix(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_invalid_chars_replaced(self):
        assert sanitize_metric_name("a-b c") == "a_b_c"


class TestRenderRegistry:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("jobs.started").inc(3)
        reg.gauge("queue.depth").set(17.0)
        page = render_registry(reg, prefix="repro_engine")
        assert "# TYPE repro_engine_jobs_started counter" in page
        assert "repro_engine_jobs_started 3" in page
        assert "# TYPE repro_engine_queue_depth gauge" in page
        assert "repro_engine_queue_depth 17.0" in page

    def test_timer_renders_as_summary_with_quantiles(self):
        reg = MetricsRegistry()
        timer = reg.timer("schedule_s")
        for _ in range(10):
            timer.observe(0.01)
        page = render_registry(reg, prefix="repro")
        assert "# TYPE repro_schedule_s summary" in page
        for label in ("0.5", "0.9", "0.99"):
            assert f'repro_schedule_s{{quantile="{label}"}}' in page
        assert "repro_schedule_s_count 10" in page
        sum_line = next(l for l in page.splitlines()
                        if l.startswith("repro_schedule_s_sum "))
        assert float(sum_line.split()[1]) == timer.total

    def test_empty_registry_renders_empty(self):
        assert render_registry(MetricsRegistry()) == ""

    def test_non_finite_values_spelled_prometheus_style(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(float("nan"))
        page = render_registry(reg, prefix="p")
        assert "p_g NaN" in page
        reg.gauge("g").set(float("inf"))
        assert "p_g +Inf" in render_registry(reg, prefix="p")
        reg.gauge("g").set(float("-inf"))
        assert "p_g -Inf" in render_registry(reg, prefix="p")


class TestRenderPrometheus:
    def _page(self):
        engine, trainer = MetricsRegistry(), MetricsRegistry()
        engine.counter("events").inc(5)
        trainer.gauge("loss").set(0.25)
        trainer.timer("episode_s").observe(1.5)
        return render_prometheus({"engine": engine, "trainer": trainer},
                                 extra={"live_sim_progress": 0.5,
                                        "live_sim_eta_s": 12.0})

    def test_tags_namespace_the_metrics(self):
        page = self._page()
        assert "repro_engine_events 5" in page
        assert "repro_trainer_loss 0.25" in page
        assert "repro_trainer_episode_s_count 1" in page

    def test_extra_scalars_render_as_gauges(self):
        page = self._page()
        assert "# TYPE repro_live_sim_progress gauge" in page
        assert "repro_live_sim_progress 0.5" in page
        assert "repro_live_sim_eta_s 12.0" in page

    def test_rendered_page_passes_the_linter(self):
        assert lint_prometheus(self._page()) == []


class TestLint:
    def test_missing_trailing_newline(self):
        assert "missing trailing newline" in \
            lint_prometheus("# TYPE a counter\na 1")[0]

    def test_sample_without_type_flagged(self):
        problems = lint_prometheus("orphan 1\n")
        assert any("no preceding # TYPE" in p for p in problems)

    def test_sum_count_ride_on_the_family_type(self):
        page = ('# TYPE s summary\ns{quantile="0.5"} 1.0\n'
                "s_sum 2.0\ns_count 2\n")
        assert lint_prometheus(page) == []

    def test_duplicate_type_flagged(self):
        problems = lint_prometheus("# TYPE a counter\n# TYPE a counter\na 1\n")
        assert any("duplicate # TYPE" in p for p in problems)

    def test_bad_value_and_bad_name_flagged(self):
        problems = lint_prometheus("# TYPE a gauge\na one\n")
        assert any("invalid value 'one'" in p for p in problems)
        problems = lint_prometheus("# TYPE 3bad gauge\n")
        assert any("invalid metric name" in p for p in problems)

    def test_unknown_type_and_bad_labels_flagged(self):
        problems = lint_prometheus("# TYPE a carrots\na 1\n")
        assert any("unknown TYPE" in p for p in problems)
        problems = lint_prometheus('# TYPE a gauge\na{bad-label="x"} 1\n')
        assert any("unparseable sample" in p or "invalid label block" in p
                   for p in problems)

    def test_empty_page_is_valid(self):
        assert lint_prometheus("") == []
