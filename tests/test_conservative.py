"""Unit + property tests for conservative backfilling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers import ConservativeBackfill, FCFSEasy
from repro.sim.engine import run_simulation
from repro.sim.job import Job, JobState
from tests.conftest import make_job


class TestBehaviour:
    def test_behaves_like_fcfs_without_contention(self):
        jobs_a = [make_job(size=1, walltime=10.0, submit=float(i)) for i in range(4)]
        jobs_b = [j.copy_fresh() for j in jobs_a]
        run_simulation(8, ConservativeBackfill(), jobs_a)
        run_simulation(8, FCFSEasy(), jobs_b)
        assert [j.start_time for j in jobs_a] == [j.start_time for j in jobs_b]

    def test_backfills_safe_short_job(self):
        blocker = make_job(size=3, walltime=100.0, submit=0.0)
        big = make_job(size=4, walltime=10.0, submit=1.0)
        short = make_job(size=1, walltime=50.0, submit=2.0)
        run_simulation(4, ConservativeBackfill(), [blocker, big, short])
        assert short.start_time == pytest.approx(2.0)
        assert big.start_time == pytest.approx(100.0)

    def test_never_delays_any_planned_job(self):
        """The defining conservative property: a later small job cannot
        delay the *second* blocked job either (EASY would let it)."""
        blocker = make_job(size=3, walltime=100.0, submit=0.0)
        big1 = make_job(size=4, walltime=10.0, submit=1.0)   # planned at 100
        big2 = make_job(size=4, walltime=10.0, submit=2.0)   # planned at 110
        # 1-node job of length 115: ends after big1's start (no extra
        # nodes), and under conservative it would also delay big2
        sneaky = make_job(size=1, walltime=115.0, submit=3.0)
        run_simulation(4, ConservativeBackfill(), [blocker, big1, big2, sneaky])
        assert big1.start_time == pytest.approx(100.0)
        assert big2.start_time == pytest.approx(110.0)
        assert sneaky.start_time >= 120.0 - 1e-6

    def test_all_jobs_finish(self):
        jobs = [make_job(size=s, walltime=30.0, submit=float(i * 3))
                for i, s in enumerate((2, 8, 1, 4, 6, 3))]
        result = run_simulation(8, ConservativeBackfill(), jobs)
        assert all(j.state is JobState.FINISHED for j in result.jobs)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n=st.integers(2, 15),
)
def test_property_conservative_no_later_job_hurts(seed, n):
    """Adding a later-arriving job never delays earlier jobs.

    This is conservative backfilling's contract (and not EASY's, whose
    backfills can delay non-head queued jobs).
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    base = []
    t = 0.0
    for _ in range(n):
        t += float(rng.exponential(30.0))
        walltime = float(rng.uniform(10.0, 200.0))
        base.append(
            Job(size=int(rng.integers(1, 9)), walltime=walltime,
                runtime=walltime, submit_time=t)
        )
    extra_walltime = float(rng.uniform(10.0, 400.0))
    extra = Job(size=int(rng.integers(1, 9)), walltime=extra_walltime,
                runtime=extra_walltime, submit_time=t + 1.0)

    without = [j.copy_fresh() for j in base]
    run_simulation(8, ConservativeBackfill(), without)
    with_extra = [j.copy_fresh() for j in base] + [extra.copy_fresh()]
    run_simulation(8, ConservativeBackfill(), with_extra)

    for a, b in zip(without, with_extra):
        # actual runtimes equal estimates here, so plans are exact and
        # the last arrival can never improve or hurt earlier jobs
        assert b.start_time <= a.start_time + 1e-6
