"""Unit tests for bootstrap statistics."""

import numpy as np
import pytest

from repro.analysis.significance import (
    BootstrapCI,
    bootstrap_mean,
    bootstrap_mean_difference,
    compare_wait_times,
)
from repro.schedulers import BinPacking, FCFSEasy
from repro.sim.engine import run_simulation
from tests.conftest import make_job


class TestBootstrapMean:
    def test_ci_contains_true_mean(self, rng):
        x = rng.normal(10.0, 2.0, size=500)
        ci = bootstrap_mean(x)
        assert ci.low <= 10.0 <= ci.high
        assert ci.estimate == pytest.approx(float(x.mean()))

    def test_ci_narrows_with_sample_size(self, rng):
        small = bootstrap_mean(rng.normal(0, 1, size=20), seed=1)
        large = bootstrap_mean(rng.normal(0, 1, size=2000), seed=1)
        assert (large.high - large.low) < (small.high - small.low)

    def test_degenerate_sample(self):
        ci = bootstrap_mean([5.0, 5.0, 5.0])
        assert ci.low == ci.high == ci.estimate == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.5)

    def test_deterministic_with_seed(self, rng):
        x = rng.normal(size=100)
        assert bootstrap_mean(x, seed=7) == bootstrap_mean(x, seed=7)


class TestBootstrapDifference:
    def test_paired_detects_shift(self, rng):
        a = rng.normal(5.0, 1.0, size=300)
        b = a - 1.0  # perfectly paired constant shift
        ci = bootstrap_mean_difference(a, b, paired=True)
        assert ci.estimate == pytest.approx(1.0)
        assert ci.excludes_zero
        # paired CI of a constant shift is exact
        assert ci.high - ci.low < 1e-9

    def test_unpaired_wider_than_paired(self, rng):
        a = rng.normal(5.0, 2.0, size=300)
        b = a - 0.5 + rng.normal(0, 0.01, size=300)
        paired = bootstrap_mean_difference(a, b, paired=True, seed=2)
        unpaired = bootstrap_mean_difference(a, b, paired=False, seed=2)
        assert (unpaired.high - unpaired.low) > (paired.high - paired.low)

    def test_no_difference_straddles_zero(self, rng):
        a = rng.normal(0, 1, size=400)
        b = rng.permutation(a)
        ci = bootstrap_mean_difference(a, b, paired=False, seed=3)
        assert not ci.excludes_zero

    def test_paired_length_mismatch(self):
        with pytest.raises(ValueError, match="equal-length"):
            bootstrap_mean_difference([1.0, 2.0], [1.0], paired=True)


class TestCompareWaitTimes:
    def test_same_policy_zero_difference(self):
        jobs = [make_job(size=4, walltime=50.0, submit=float(i * 10))
                for i in range(10)]
        r1 = run_simulation(4, FCFSEasy(), [j.copy_fresh() for j in jobs])
        r2 = run_simulation(4, FCFSEasy(), [j.copy_fresh() for j in jobs])
        ci = compare_wait_times(r1, r2)
        assert ci.estimate == 0.0
        assert not ci.excludes_zero

    def test_different_policies_produce_estimate(self):
        jobs = [make_job(size=s, walltime=50.0, submit=float(i * 5))
                for i, s in enumerate((4, 1, 4, 2, 4, 1, 3, 2))]
        fcfs = run_simulation(4, FCFSEasy(), [j.copy_fresh() for j in jobs])
        pack = run_simulation(4, BinPacking(), [j.copy_fresh() for j in jobs])
        ci = compare_wait_times(fcfs, pack)
        assert np.isfinite(ci.estimate)

    def test_disjoint_runs_rejected(self):
        a = run_simulation(4, FCFSEasy(), [make_job(size=1, job_id=1)])
        b = run_simulation(4, FCFSEasy(), [make_job(size=1, job_id=2)])
        with pytest.raises(ValueError, match="no finished jobs"):
            compare_wait_times(a, b)


class TestBootstrapCI:
    def test_excludes_zero(self):
        assert BootstrapCI(1.0, 0.5, 1.5, 0.95).excludes_zero
        assert BootstrapCI(-1.0, -1.5, -0.5, 0.95).excludes_zero
        assert not BootstrapCI(0.1, -0.2, 0.4, 0.95).excludes_zero
