"""Unit tests for the SWF reader/writer."""

import pytest

from repro.workload.swf import SWFWarning, read_swf, read_swf_report, write_swf
from tests.conftest import make_job


def _swf_line(
    job_id=1,
    submit=100,
    run_time=500,
    allocated=4,
    requested=8,
    requested_time=1000,
    queue=0,
    preceding=-1,
):
    fields = [
        job_id, submit, -1, run_time, allocated, -1, -1,
        requested, requested_time, -1, 1, 42, -1, -1, queue, -1, preceding, -1,
    ]
    return " ".join(str(f) for f in fields)


class TestRead:
    def test_basic_record(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(_swf_line() + "\n")
        jobs = read_swf(path)
        assert len(jobs) == 1
        job = jobs[0]
        assert job.job_id == 1
        assert job.submit_time == 100.0
        assert job.runtime == 500.0
        assert job.size == 8           # requested procs preferred
        assert job.walltime == 1000.0
        assert job.user == "42"

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("; header\n\n" + _swf_line() + "\n; trailer\n")
        assert len(read_swf(path)) == 1

    def test_procs_per_node_division(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(_swf_line(requested=10) + "\n")
        jobs = read_swf(path, procs_per_node=4)
        assert jobs[0].size == 3  # ceil(10/4)

    def test_fallback_to_allocated_procs(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(_swf_line(requested=-1, allocated=6) + "\n")
        assert read_swf(path)[0].size == 6

    def test_fallback_to_runtime_for_walltime(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(_swf_line(requested_time=-1, run_time=321) + "\n")
        assert read_swf(path)[0].walltime == 321.0

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="expected 18 fields"):
            read_swf(path)

    def test_non_numeric_field_raises_with_position(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(_swf_line() + "\n" + _swf_line(job_id="oops") + "\n")
        with pytest.raises(ValueError, match=r"t\.swf:2"):
            read_swf(path)


class TestLenientRead:
    def test_malformed_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(
            "; header\n"
            + _swf_line(job_id=1) + "\n"
            + "1 2 3\n"                          # too few fields
            + _swf_line(job_id="oops") + "\n"    # non-numeric job id
            + _swf_line(job_id=2) + "\n"
        )
        with pytest.warns(SWFWarning, match="2 malformed"):
            jobs, report = read_swf_report(path, strict=False)
        assert [j.job_id for j in jobs] == [1, 2]
        assert report.parsed_jobs == 2
        assert report.comment_lines == 1
        assert report.n_malformed == 2
        assert [lineno for lineno, _ in report.malformed] == [3, 4]
        assert "expected 18 fields" in report.malformed[0][1]

    def test_clean_file_produces_no_warning(self, tmp_path):
        import warnings

        path = tmp_path / "t.swf"
        path.write_text(_swf_line() + "\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            jobs, report = read_swf_report(path, strict=False)
        assert len(jobs) == 1 and report.n_malformed == 0

    def test_skipped_records_counted_separately(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(_swf_line(run_time=0) + "\n" + _swf_line(job_id=2) + "\n")
        jobs, report = read_swf_report(path, strict=False)
        assert [j.job_id for j in jobs] == [2]
        assert report.skipped_records == 1
        assert report.n_malformed == 0

    def test_strict_mode_still_raises_via_report_api(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("broken\n")
        with pytest.raises(ValueError, match="expected 18 fields"):
            read_swf_report(path, strict=True)

    def test_report_detail_capped(self, tmp_path):
        from repro.workload.swf import _MAX_REPORTED_LINES

        path = tmp_path / "t.swf"
        bad = _MAX_REPORTED_LINES + 5
        path.write_text("x y z\n" * bad + _swf_line() + "\n")
        with pytest.warns(SWFWarning, match="and 5 more"):
            jobs, report = read_swf_report(path, strict=False)
        assert len(jobs) == 1
        assert report.n_malformed == bad
        assert len(report.malformed) == _MAX_REPORTED_LINES

    def test_summary_mentions_path_and_counts(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(_swf_line() + "\nnope\n")
        with pytest.warns(SWFWarning):
            _, report = read_swf_report(path, strict=False)
        text = report.summary()
        assert "t.swf" in text and "1 jobs" in text and "1 malformed" in text

    def test_zero_runtime_record_skipped(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(_swf_line(run_time=0) + "\n" + _swf_line(job_id=2) + "\n")
        jobs = read_swf(path)
        assert [j.job_id for j in jobs] == [2]

    def test_max_jobs_limit(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("\n".join(_swf_line(job_id=i) for i in (1, 2, 3)))
        assert len(read_swf(path, max_jobs=2)) == 2

    def test_high_priority_queue_mapping(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(_swf_line(queue=3) + "\n")
        assert read_swf(path, high_priority_queues=frozenset({3}))[0].priority == 1
        assert read_swf(path)[0].priority == 0

    def test_dependency_kept_when_parent_present(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(
            _swf_line(job_id=1) + "\n" + _swf_line(job_id=2, preceding=1) + "\n"
        )
        jobs = read_swf(path)
        assert jobs[1].dependencies == (1,)

    def test_dependency_dropped_when_parent_missing(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(_swf_line(job_id=2, preceding=99) + "\n")
        assert read_swf(path)[0].dependencies == ()

    def test_dependencies_disabled(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(
            _swf_line(job_id=1) + "\n" + _swf_line(job_id=2, preceding=1) + "\n"
        )
        jobs = read_swf(path, keep_dependencies=False)
        assert jobs[1].dependencies == ()

    def test_sorted_by_submit_time(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(
            _swf_line(job_id=1, submit=500) + "\n" + _swf_line(job_id=2, submit=100) + "\n"
        )
        jobs = read_swf(path)
        assert [j.job_id for j in jobs] == [2, 1]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        original = [
            make_job(size=4, walltime=1000.0, runtime=500.0, submit=100.0,
                     priority=1, job_id=1),
            make_job(size=2, walltime=600.0, runtime=600.0, submit=200.0,
                     job_id=2, deps=(1,)),
        ]
        path = tmp_path / "out.swf"
        write_swf(original, path, header="round trip test")
        recovered = read_swf(path, high_priority_queues=frozenset({1}))
        assert len(recovered) == 2
        for a, b in zip(original, recovered):
            assert a.job_id == b.job_id
            assert a.size == b.size
            assert a.submit_time == b.submit_time
            assert a.runtime == b.runtime
            assert a.walltime == b.walltime
            assert a.priority == b.priority
        assert recovered[1].dependencies == (1,)

    def test_header_written_as_comments(self, tmp_path):
        path = tmp_path / "out.swf"
        write_swf([make_job(job_id=1)], path, header="line1\nline2")
        text = path.read_text()
        assert text.startswith("; line1\n; line2\n")
