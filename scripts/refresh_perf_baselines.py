#!/usr/bin/env python3
"""Regenerate the committed performance baselines in one shot.

Two artifacts at the repo root feed the perf tooling:

* ``profile_baseline.json`` — deterministic profiler scope counts from
  the canonical workload.  The *calls* counts anchor the RPR5xx
  hotness model (``repro check --strict``); they are machine-stable,
  so this file only needs refreshing when the instrumentation or the
  workload changes.
* ``BENCH_sim.json`` / ``BENCH_nn.json`` — throughput baselines that
  ``scripts/check_bench_regression.py`` compares against.  These carry
  wall-clock numbers, so refresh them on the reference machine.

Usage::

    python scripts/refresh_perf_baselines.py             # both
    python scripts/refresh_perf_baselines.py --profile   # hotness anchor only
    python scripts/refresh_perf_baselines.py --bench     # bench docs only
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.bench import write_bench_files, write_profile_baseline  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", action="store_true",
                        help="refresh only profile_baseline.json")
    parser.add_argument("--bench", action="store_true",
                        help="refresh only BENCH_sim.json / BENCH_nn.json")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    both = not (args.profile or args.bench)

    if args.profile or both:
        path = write_profile_baseline(REPO_ROOT / "profile_baseline.json",
                                      seed=args.seed)
        print(f"wrote {path}")
    if args.bench or both:
        for path in write_bench_files(out_dir=REPO_ROOT, seed=args.seed,
                                      progress=lambda m: print(f"  {m}")):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
