"""Text Gantt rendering of a simulated schedule.

Turns an :class:`~repro.sim.observers.EventLog` (or a finished
simulation result) into a node-rows × time-columns character grid — a
quick way to eyeball packing quality, backfill holes and reservations
without a plotting stack.  Each job is drawn with a letter cycling
through the alphabet; execution modes can optionally be distinguished
by case (backfilled jobs lower-case).
"""

from __future__ import annotations

import string

from repro.sim.engine import SimulationResult
from repro.sim.job import ExecMode, JobState

_GLYPHS = string.ascii_uppercase


def render_gantt(
    result: SimulationResult,
    width: int = 78,
    max_rows: int = 32,
    mark_backfill: bool = True,
) -> str:
    """Render the schedule of ``result`` as a character grid.

    Time is discretized into ``width`` columns over the run's span;
    rows are node indices (subsampled evenly when the system exceeds
    ``max_rows``).  A cell shows the job occupying that node for the
    majority of the column's time slice (``.`` = idle).
    """
    jobs = [j for j in result.jobs if j.state is JobState.FINISHED]
    if not jobs:
        raise ValueError("nothing to render: no finished jobs")
    if width <= 0 or max_rows <= 0:
        raise ValueError("width and max_rows must be positive")
    t0 = min(j.start_time for j in jobs)
    t1 = max(j.end_time for j in jobs)
    span = max(t1 - t0, 1e-9)

    # Recompute a deterministic node assignment by replaying starts in
    # time order against a lowest-free-index allocator (the cluster's
    # actual policy), so the rendering matches the simulation layout.
    num_nodes = result.num_nodes
    free = list(range(num_nodes - 1, -1, -1))  # pop() yields lowest index
    # ends sort before starts at equal timestamps, freeing nodes first
    events = sorted(
        [(j.end_time, 0, j) for j in jobs] + [(j.start_time, 1, j) for j in jobs],
        key=lambda e: (e[0], e[1]),
    )
    placement: dict[int, list[int]] = {}
    for _, kind, job in events:
        if kind == 0 and job.job_id in placement:
            for node in placement[job.job_id]:
                free.append(node)
            free.sort(reverse=True)
        elif kind == 1:
            if len(free) < job.size:
                raise RuntimeError("replay found an infeasible schedule")
            placement[job.job_id] = [free.pop() for _ in range(job.size)]

    rows = min(num_nodes, max_rows)
    node_of_row = [int(r * num_nodes / rows) for r in range(rows)]
    grid = [["."] * width for _ in range(rows)]
    for j_idx, job in enumerate(sorted(jobs, key=lambda j: j.start_time)):
        glyph = _GLYPHS[j_idx % len(_GLYPHS)]
        if mark_backfill and job.mode is ExecMode.BACKFILLED:
            glyph = glyph.lower()
        c0 = int((job.start_time - t0) / span * (width - 1))
        c1 = max(c0, int((job.end_time - t0) / span * (width - 1)))
        nodes = set(placement[job.job_id])
        for r, node in enumerate(node_of_row):
            if node in nodes:
                for c in range(c0, c1 + 1):
                    grid[r][c] = glyph

    header = (
        f"gantt: {len(jobs)} jobs on {num_nodes} nodes, "
        f"{span / 3600:.1f} h span "
        f"({'lower-case = backfilled' if mark_backfill else ''})"
    )
    lines = [header]
    for r, row in enumerate(grid):
        lines.append(f"node {node_of_row[r]:>5d} |" + "".join(row))
    lines.append(" " * 11 + f"t={t0:.0f}" + " " * (width - 16) + f"t={t1:.0f}")
    return "\n".join(lines)
