"""White-box tests of the hierarchical decision loop (§III-B).

A scripted agent with a deterministic ``select`` replaces the neural
network, so every branch of the level-1 / level-2 flow can be asserted
exactly: who is offered in each window, when the reservation happens,
and when level-2 engages.
"""

import pytest

from repro.core.agent import HierarchicalAgent
from repro.core.config import DRASConfig
from repro.sim.engine import run_simulation
from repro.sim.job import ExecMode
from tests.conftest import make_job


class ScriptedAgent(HierarchicalAgent):
    """Selects by a scripted preference; records every window offered."""

    name = "scripted"

    def __init__(self, config, prefer=None):
        super().__init__(config)
        self.learning = False
        #: (level, [job ids offered]) per selection
        self.offers: list[tuple[int, list[int]]] = []
        self._prefer = prefer or (lambda window: window[0])

    def select(self, window, view, level):
        self.offers.append((level, [j.job_id for j in window]))
        return self._prefer(window)

    def record_reward(self, reward):  # pragma: no cover - learning off
        raise AssertionError("no rewards should be recorded with learning off")

    def update(self):  # pragma: no cover - learning off
        raise AssertionError("no updates should run with learning off")

    def _has_observations(self):
        return False


def config(**overrides):
    base = dict(num_nodes=8, window=3, hidden1=4, hidden2=2, seed=0,
                time_scale=100.0)
    base.update(overrides)
    return DRASConfig(**base)


class TestLevelOne:
    def test_window_is_queue_prefix(self):
        agent = ScriptedAgent(config())
        jobs = [make_job(size=8, walltime=10.0, submit=0.0, job_id=i)
                for i in (1, 2, 3, 4)]
        run_simulation(8, agent, jobs)
        # first instance: all four queued, window of 3 offered
        first_offer = agent.offers[0]
        assert first_offer == (1, [1, 2, 3])

    def test_repeats_until_misfit_then_reserves(self):
        agent = ScriptedAgent(config())
        a = make_job(size=3, walltime=50.0, submit=0.0, job_id=1)
        b = make_job(size=3, walltime=50.0, submit=0.0, job_id=2)
        c = make_job(size=4, walltime=50.0, submit=0.0, job_id=3)
        run_simulation(8, agent, [a, b, c])
        # level-1 starts a (fits), b (fits), then c misfits -> reserved
        levels = [lvl for lvl, _ in agent.offers[:3]]
        assert levels == [1, 1, 1]
        assert a.mode is ExecMode.READY
        assert b.mode is ExecMode.READY
        assert c.mode is ExecMode.RESERVED

    def test_no_level2_when_queue_drains(self):
        agent = ScriptedAgent(config())
        jobs = [make_job(size=2, walltime=10.0, submit=0.0, job_id=i)
                for i in (1, 2)]
        run_simulation(8, agent, jobs)
        assert all(level == 1 for level, _ in agent.offers)


class TestLevelTwo:
    def _contended(self):
        blocker = make_job(size=6, walltime=100.0, submit=0.0, job_id=1)
        big = make_job(size=8, walltime=10.0, submit=1.0, job_id=2)
        fit1 = make_job(size=1, walltime=30.0, submit=1.0, job_id=3)
        fit2 = make_job(size=1, walltime=30.0, submit=1.0, job_id=4)
        return [blocker, big, fit1, fit2]

    def test_level2_offers_only_candidates(self):
        # prefer the blocked big job first so level-1 reserves immediately
        agent = ScriptedAgent(
            config(),
            prefer=lambda window: max(window, key=lambda j: j.size),
        )
        jobs = self._contended()
        run_simulation(8, agent, jobs)
        level2_offers = [ids for lvl, ids in agent.offers if lvl == 2]
        assert level2_offers, "level-2 must engage after the reservation"
        for ids in level2_offers:
            assert 2 not in ids          # the reserved job is never offered
            assert set(ids) <= {3, 4}

    def test_level2_jobs_marked_backfilled(self):
        agent = ScriptedAgent(
            config(),
            prefer=lambda window: max(window, key=lambda j: j.size),
        )
        jobs = self._contended()
        run_simulation(8, agent, jobs)
        assert jobs[2].mode is ExecMode.BACKFILLED
        assert jobs[3].mode is ExecMode.BACKFILLED

    def test_reserved_job_keeps_mode_on_later_start(self):
        agent = ScriptedAgent(
            config(),
            prefer=lambda window: max(window, key=lambda j: j.size),
        )
        jobs = self._contended()
        run_simulation(8, agent, jobs)
        big = jobs[1]
        assert big.mode is ExecMode.RESERVED
        assert big.start_time == pytest.approx(100.0)


class TestInstanceRewards:
    def test_one_entry_per_instance(self):
        agent = ScriptedAgent(config())
        jobs = [make_job(size=2, walltime=10.0, submit=float(i), job_id=i + 1)
                for i in range(3)]
        result = run_simulation(8, agent, jobs)
        assert len(agent.instance_rewards) == result.num_instances

    def test_empty_instances_score_zero(self):
        agent = ScriptedAgent(config())
        # one job: the completion instance has nothing to schedule
        run_simulation(8, agent, [make_job(size=2, walltime=10.0, job_id=1)])
        assert agent.instance_rewards[-1] == 0.0
