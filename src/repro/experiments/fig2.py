"""Fig 2 — job characterization: jobs and core hours by size category.

The paper's donut charts show, per system, the share of *jobs* in each
job-size category (outer circle) and the share of total *core hours*
consumed by each category (inner circle).  The qualitative shape to
reproduce: on Theta, small-category jobs dominate counts while large
categories dominate core hours; on Cori, 1-node jobs dominate counts
yet consume a small fraction of core hours.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments.common import system_setup
from repro.sim.job import Job


@dataclass(frozen=True)
class SizeCategoryShares:
    system: str
    labels: tuple[str, ...]
    job_share: tuple[float, ...]
    core_hour_share: tuple[float, ...]


def _category_bounds(system: str, num_nodes: int) -> list[tuple[str, int, int]]:
    """(label, lo, hi) size categories, scaled with the system size.

    At full scale they reduce to the paper's Theta categories
    (128-511, 512-1023, 1024-2047, 2048-4095, >=4096) and a
    capacity-style split for Cori (1, 2-15, 16-255, 256-1023, >=1024).
    """
    if system == "theta":
        fracs = [(128, 511), (512, 1023), (1024, 2047), (2048, 4095), (4096, 4360)]
        base = 4360
    else:
        fracs = [(1, 1), (2, 15), (16, 255), (256, 1023), (1024, 12076)]
        base = 12076
    out = []
    for lo, hi in fracs:
        slo = max(1, round(lo * num_nodes / base))
        shi = max(slo, round(hi * num_nodes / base))
        out.append((f"{slo}-{shi}" if slo != shi else f"{slo}", slo, shi))
    # make categories contiguous after rounding
    fixed = []
    prev_hi = 0
    for label, lo, hi in out:
        lo = max(lo, prev_hi + 1)
        hi = max(hi, lo)
        fixed.append((f"{lo}-{hi}" if lo != hi else f"{lo}", lo, hi))
        prev_hi = hi
    return fixed


def characterize(system: str, jobs: list[Job], num_nodes: int) -> SizeCategoryShares:
    cats = _category_bounds(system, num_nodes)
    counts = [0] * len(cats)
    hours = [0.0] * len(cats)
    for job in jobs:
        for i, (_, lo, hi) in enumerate(cats):
            if lo <= job.size <= hi or (i == len(cats) - 1 and job.size > hi):
                counts[i] += 1
                hours[i] += job.core_hours
                break
    total_jobs = max(1, sum(counts))
    total_hours = max(1e-12, sum(hours))
    return SizeCategoryShares(
        system=system,
        labels=tuple(label for label, _, _ in cats),
        job_share=tuple(c / total_jobs for c in counts),
        core_hour_share=tuple(h / total_hours for h in hours),
    )


def run(scale: str = "default", seed: int = 0) -> dict[str, SizeCategoryShares]:
    out = {}
    for system in ("theta", "cori"):
        setup = system_setup(system, scale, seed)
        # concatenating the splits is fine here: Fig 2 looks only at the
        # marginal size/core-hour mix, not at the time axis
        trace = setup.train_trace + setup.validation_trace + setup.test_trace
        out[system] = characterize(system, trace, setup.model.num_nodes)
    return out


def report(shares: dict[str, SizeCategoryShares]) -> str:
    blocks = []
    for system, s in shares.items():
        rows = [
            [label, f"{js * 100:.1f}%", f"{cs * 100:.1f}%"]
            for label, js, cs in zip(s.labels, s.job_share, s.core_hour_share)
        ]
        blocks.append(
            format_table(
                ["size category (nodes)", "jobs (outer)", "core hours (inner)"],
                rows,
                title=f"Fig 2: job characterization, {system}",
            )
        )
    return "\n\n".join(blocks)
