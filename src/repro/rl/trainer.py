"""Episodic training with per-episode snapshots and validation.

Training follows §III-C: the network parameters start random, each
episode replays one jobset from an all-idle initial state, parameters
update every ten scheduling instances, and the trainer takes a snapshot
of the model after every episode.  An unseen validation jobset measures
progress; the convergence monitor declares convergence when the
validation reward plateaus.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs import live as _live
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry
from repro.rl import checkpoint as _checkpoint
from repro.rl import telemetry as _telemetry
from repro.rl.meter import RewardMeter
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.faults import FaultConfig
from repro.sim.job import Job
from repro.sim.metrics import RunMetrics


@dataclass(frozen=True)
class EpisodeStats:
    """Bookkeeping of one training episode."""

    episode: int
    phase: str
    num_jobs: int
    train_reward: float
    validation_reward: float
    updates_done: int


@dataclass
class TrainingHistory:
    """Episode statistics plus model snapshots."""

    episodes: list[EpisodeStats] = field(default_factory=list)
    snapshots: list[dict[str, np.ndarray]] = field(default_factory=list)

    @property
    def validation_curve(self) -> np.ndarray:
        return np.array([e.validation_reward for e in self.episodes])

    def best_episode(self) -> int:
        """Index of the snapshot with the highest validation reward."""
        if not self.episodes:
            raise ValueError("no episodes recorded")
        return int(np.argmax(self.validation_curve))

    def converged_at(self, window: int = 5, rel_tol: float = 0.05) -> int | None:
        """First episode where the validation reward plateaus.

        The curve is considered converged at episode ``i`` when the last
        ``window`` validation rewards vary by less than ``rel_tol``
        relative to their mean magnitude.  Returns ``None`` if the curve
        never converges.
        """
        curve = self.validation_curve
        for i in range(window - 1, curve.size):
            chunk = curve[i - window + 1 : i + 1]
            scale = max(abs(float(np.mean(chunk))), 1e-12)
            if float(np.ptp(chunk)) <= rel_tol * scale:
                return i
        return None


class Trainer:
    """Trains a DRAS (or Decima) agent over a sequence of jobsets.

    Parameters
    ----------
    agent:
        An agent exposing ``schedule`` plus ``train`` / ``eval`` mode
        toggles and ``state_dict`` (DRASPG, DRASDQL, DecimaPG).
    num_nodes:
        System size for the simulated cluster.
    validation_jobs:
        The unseen jobset scored after every episode (§IV-D uses one
        held-out month).  Without it, validation rewards are NaN.
    telemetry:
        Per-episode JSONL telemetry (:mod:`repro.rl.telemetry`).  Pass
        a :class:`~repro.rl.telemetry.TelemetryWriter` or a path to
        create one.  When set, the trainer enables the agent's cheap
        learning-signal collectors (gradient-norm tracking on the
        optimizer, policy-entropy capture on the PG core) and writes
        one ``episode`` record per episode with anomaly flags attached.
    checkpoint_path:
        When set, a crash-safe resumable checkpoint
        (:mod:`repro.rl.checkpoint`) is written atomically after every
        ``checkpoint_every``-th completed episode.  Resume by loading
        it and passing the restored agent + history back into
        :meth:`train` (or ``train --resume`` on the CLI).
    faults:
        Optional :class:`~repro.sim.faults.FaultConfig`: training
        episodes run under fault injection (the fault seed is offset by
        the episode index so every episode sees a fresh but
        reproducible fault schedule); validation always replays the
        base seed so scores stay comparable across episodes.
    live:
        In-flight snapshot publishing (:mod:`repro.obs.live`).  Pass a
        :class:`~repro.obs.live.LiveBus`; ``None`` (the default)
        follows the process-global bus (``REPRO_LIVE`` env var).  The
        trainer publishes one ``kind="train"`` snapshot per completed
        episode — an event-count cadence, so a live-enabled run is
        bit-identical to a dark one.
    """

    def __init__(
        self,
        agent,
        num_nodes: int,
        validation_jobs: list[Job] | None = None,
        snapshot_every: int = 1,
        telemetry: "_telemetry.TelemetryWriter | str | Path | None" = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 1,
        faults: FaultConfig | None = None,
        live: "_live.LiveBus | None" = None,
    ) -> None:
        if snapshot_every <= 0:
            raise ValueError("snapshot_every must be positive")
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.agent = agent
        self.num_nodes = num_nodes
        self.validation_jobs = validation_jobs
        self.snapshot_every = snapshot_every
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.faults = faults
        self._live_flag = live
        #: always-on training statistics (episode counts, phase timers)
        self.metrics = MetricsRegistry()
        if isinstance(telemetry, (str, Path)):
            telemetry = _telemetry.TelemetryWriter(telemetry)
        #: per-episode telemetry writer (None disables all collection)
        self.telemetry = telemetry
        self._telemetry_history: list[dict[str, Any]] = []
        self._episode_load: dict[str, Any] = {}
        if telemetry is not None:
            self._enable_agent_stats()

    @property
    def live_bus(self) -> "_live.LiveBus | None":
        """The live bus this trainer publishes to (explicit, else global)."""
        if self._live_flag is not None:
            return self._live_flag
        return _live.global_live_bus()

    def _publish_live(self, live: "_live.LiveBus", stats: EpisodeStats,
                      total: int) -> None:
        """Publish one ``kind="train"`` snapshot for a completed episode."""
        fields: dict[str, Any] = {
            "episode": stats.episode,
            "phase": stats.phase,
            "num_jobs": stats.num_jobs,
            "train_reward": stats.train_reward,
            "validation_reward": stats.validation_reward,
            "updates_done": stats.updates_done,
            "done": stats.episode + 1,
            "total": total,
        }
        fields.update(self._agent_learning_stats())
        for key in ("queue_depth_last", "utilization"):
            value = self._episode_load.get(key)
            if value is not None:
                fields[key.replace("_last", "")] = value
        if stats.episode + 1 >= total:
            fields["final"] = True
        live.publish("train", fields)

    def _enable_agent_stats(self) -> None:
        """Turn on the agent-side learning-signal collectors."""
        optimizer = getattr(self.agent, "optimizer", None)
        if optimizer is not None and hasattr(optimizer, "track_grad_norm"):
            optimizer.track_grad_norm = True
        core = getattr(self.agent, "core", None)
        if core is not None and hasattr(core, "collect_stats"):
            core.collect_stats = True

    def _agent_learning_stats(self) -> dict[str, float]:
        """Latest loss / grad-norm / entropy / epsilon from the agent.

        Works across all agent families via duck typing: PG agents keep
        losses, entropy and the update minibatch size on ``agent.core``,
        DQL keeps losses, epsilon and the minibatch size on the agent
        itself.  Signals an agent does not produce come back NaN
        (epsilon is simply omitted)."""
        agent = self.agent
        core = getattr(agent, "core", None)
        losses = getattr(agent, "losses", None)
        if losses is None and core is not None:
            losses = getattr(core, "losses", None)
        stats: dict[str, float] = {
            "loss": float(losses[-1]) if losses else float("nan"),
            "grad_norm": float(
                getattr(getattr(agent, "optimizer", None),
                        "last_grad_norm", float("nan"))
            ),
            "entropy": float(
                getattr(core, "last_entropy", float("nan"))
            ) if core is not None else float("nan"),
        }
        batch = getattr(agent, "last_update_batch", None)
        if batch is None and core is not None:
            batch = getattr(core, "last_update_batch", None)
        if batch is not None:
            #: transitions amortized by the last single-Adam-step update
            stats["update_batch"] = float(batch)
        epsilon = getattr(agent, "epsilon", None)
        if epsilon is not None:
            stats["epsilon"] = float(epsilon)
        return stats

    def _episode_faults(self, episode: int) -> FaultConfig | None:
        """Per-episode fault config: base seed offset by episode index."""
        if self.faults is None:
            return None
        return dataclasses.replace(self.faults,
                                   seed=self.faults.seed + episode)

    # -- single pieces -----------------------------------------------------------
    def run_episode(self, jobset: list[Job], episode: int = 0) -> float:
        """One training episode; returns the total collected reward."""
        self.agent.train()
        meter = RewardMeter(self.agent.reward_fn)
        engine = Engine(
            Cluster(self.num_nodes),
            self.agent,
            [j.copy_fresh() for j in jobset],
            observers=[meter],
            faults=self._episode_faults(episode),
        )
        tracer = _trace.global_tracer()
        with self.metrics.timer("train.episode_s").time():
            if tracer is None:
                result = engine.run()
            else:
                with tracer.span("train.episode", jobs=len(jobset)):
                    result = engine.run()
        self.metrics.counter("train.episodes").inc()
        if self.telemetry is not None:
            gauge = engine.metrics.gauge("engine.queue_depth")
            self._episode_load = {
                "instances": engine.num_instances,
                "queue_depth_last": gauge.value,
                "queue_depth_min": gauge.min if gauge.samples else None,
                "queue_depth_max": gauge.max if gauge.samples else None,
                "utilization": RunMetrics.from_result(result).utilization,
            }
        return meter.total

    def validate(self) -> float:
        """Score the frozen current policy on the validation jobset."""
        if self.validation_jobs is None:
            return float("nan")
        was_learning = self.agent.learning
        self.agent.eval(online_learning=False)
        meter = RewardMeter(self.agent.reward_fn)
        engine = Engine(
            Cluster(self.num_nodes),
            self.agent,
            [j.copy_fresh() for j in self.validation_jobs],
            observers=[meter],
            faults=self.faults,
        )
        tracer = _trace.global_tracer()
        with self.metrics.timer("train.validate_s").time():
            if tracer is None:
                engine.run()
            else:
                with tracer.span("train.validate",
                                 jobs=len(self.validation_jobs)):
                    engine.run()
        self.metrics.counter("train.validations").inc()
        self.agent.learning = was_learning
        return meter.total

    # -- full loop ------------------------------------------------------------------
    def train(
        self,
        jobsets: list[tuple[str, list[Job]]],
        history: TrainingHistory | None = None,
        stop_on_convergence: bool = False,
        convergence_window: int = 5,
    ) -> TrainingHistory:
        """Train over ``(phase_name, jobset)`` pairs in order.

        When ``history`` already holds ``k`` episodes (a checkpoint
        resume), the first ``k`` jobsets are skipped: they were
        completed by the interrupted run and their effects live in the
        restored agent state.
        """
        history = history or TrainingHistory()
        done = len(history.episodes)
        if done > len(jobsets):
            raise ValueError(
                f"history already has {done} episodes but only "
                f"{len(jobsets)} jobsets were supplied"
            )
        live = self.live_bus
        if live is not None:
            live.register_metrics("trainer", self.metrics)
        for phase, jobset in jobsets[done:]:
            episode = len(history.episodes)
            train_reward = self.run_episode(jobset, episode=episode)
            val_reward = self.validate()
            updates = getattr(self.agent, "updates_done", 0)
            history.episodes.append(
                EpisodeStats(
                    episode=episode,
                    phase=phase,
                    num_jobs=len(jobset),
                    train_reward=train_reward,
                    validation_reward=val_reward,
                    updates_done=updates,
                )
            )
            if self.telemetry is not None:
                self._emit_telemetry(history.episodes[-1])
            if live is not None:
                self._publish_live(live, history.episodes[-1], len(jobsets))
            if episode % self.snapshot_every == 0:
                history.snapshots.append(self.agent.state_dict())
            if self.checkpoint_path is not None \
                    and (episode + 1) % self.checkpoint_every == 0:
                self._write_checkpoint(history)
            if stop_on_convergence and history.converged_at(convergence_window):
                break
        return history

    def _write_checkpoint(self, history: TrainingHistory) -> None:
        """Atomically persist a resumable checkpoint of the run so far."""
        assert self.checkpoint_path is not None
        offset = 0
        if self.telemetry is not None:
            offset = self.telemetry.offset()
        _checkpoint.save_checkpoint(
            self.checkpoint_path,
            self.agent,
            [dataclasses.asdict(e) for e in history.episodes],
            telemetry_offset=offset,
            faults=self.faults,
        )
        self.metrics.counter("train.checkpoints").inc()
        tracer = _trace.global_tracer()
        if tracer is not None:
            tracer.event("train.checkpoint",
                         episode=len(history.episodes) - 1,
                         path=str(self.checkpoint_path))

    def _emit_telemetry(self, stats: EpisodeStats) -> None:
        """Write one episode record; escalate hard anomalies afterwards.

        The record is written (and flushed) *before*
        :func:`~repro.rl.telemetry.raise_hard_anomalies` runs, so when a
        non-finite learning signal aborts training under
        ``REPRO_SANITIZE=1`` the evidence is already on disk.
        """
        record: dict[str, Any] = {
            "episode": stats.episode,
            "phase": stats.phase,
            "num_jobs": stats.num_jobs,
            "train_reward": stats.train_reward,
            "validation_reward": stats.validation_reward,
            "updates_done": stats.updates_done,
            "episode_wall_s": self.metrics.timer("train.episode_s").last,
        }
        record.update(self._agent_learning_stats())
        record.update(self._episode_load)
        flags = _telemetry.detect_anomalies(record, self._telemetry_history)
        record["anomalies"] = flags
        self.telemetry.write_episode(record)
        self._telemetry_history.append(record)
        _telemetry.raise_hard_anomalies(flags, record)
