#!/usr/bin/env python
"""Capability-computing scenario: protect the big jobs (Theta-like).

Capability facilities like ALCF's Theta exist to run *large* jobs; the
paper's central claim is that reinforcement-learning schedulers without
resource reservation starve exactly those jobs (§V-B, Fig 7), while
DRAS's hierarchical design keeps them flowing.

This example trains DRAS-PG and the reservation-less Decima-PG on the
same Theta-like workload, replays an identical test trace under both
(plus FCFS as the production reference), and prints the wait-time gap
between large and small jobs for each policy — the starvation
signature.

Run::

    python examples/capability_theta.py
"""

import numpy as np

from repro import DRASConfig, DRASPG, DecimaPG, FCFSEasy, ThetaModel
from repro.analysis import evaluate_method
from repro.rl import Trainer
from repro.workload import three_phase_curriculum

NODES = 128


def train(agent, model, train_trace, rng):
    phases = three_phase_curriculum(
        model, train_trace, rng,
        n_sampled=3, n_real=3, n_synthetic=8, jobs_per_set=300,
    )
    Trainer(agent, model.num_nodes).train(
        [(p.name, jobset) for p in phases for jobset in p.jobsets]
    )
    return agent


def main() -> None:
    rng = np.random.default_rng(1)
    model = ThetaModel.scaled(NODES)
    train_trace = model.generate(1200, rng)
    test_trace = model.generate(800, rng)
    config = DRASConfig.scaled(NODES, objective="capability", window=10)

    dras = train(DRASPG(config), model, train_trace, rng).eval()
    decima = train(DecimaPG(config), model, train_trace, rng).eval()

    large_threshold = NODES // 2
    print(f"system: {NODES} nodes; large job = >= {large_threshold} nodes\n")
    header = (f"{'policy':12s} {'avg wait':>10s} {'large wait':>11s} "
              f"{'small wait':>11s} {'large/small':>12s} {'max wait':>9s}")
    print(header)
    print("-" * len(header))
    for scheduler in (FCFSEasy(), dras, decima):
        res = evaluate_method(scheduler, test_trace, NODES)
        jobs = res.jobs
        large = [j.wait_time for j in jobs if j.size >= large_threshold]
        small = [j.wait_time for j in jobs if j.size < large_threshold]
        lw = float(np.mean(large)) / 3600 if large else 0.0
        sw = float(np.mean(small)) / 3600 if small else 0.0
        ratio = lw / sw if sw > 0 else float("inf")
        print(f"{res.name:12s} {res.metrics.avg_wait / 3600:9.2f}h "
              f"{lw:10.2f}h {sw:10.2f}h {ratio:11.1f}x "
              f"{res.metrics.max_wait / 3600:8.1f}h")

    print(
        "\nFCFS bounds the worst-case wait; the reservation-less Decima-PG "
        "posts the\nworst large-job waits and maximum wait; DRAS improves "
        "average wait over both\nwhile its reservation path keeps the "
        "maximum wait below Decima-PG's — the\npaper's Fig 7 in miniature "
        "(the full starvation gap needs the long traces\nof "
        "`pytest benchmarks/test_fig7.py`)."
    )


if __name__ == "__main__":
    main()
