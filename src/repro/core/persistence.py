"""Full agent checkpointing.

:func:`repro.nn.save_network` persists weights only; resuming
*training* (or redeploying an online-learning agent, §V-D) also needs
the optimizer moments, the PG baseline statistics and the DQL
exploration rate.  These helpers serialize the complete agent state to
a single ``.npz`` with a JSON metadata record, and rebuild the agent
from scratch on load.

Durability contract
-------------------
Writes are *atomic*: the archive is assembled in a same-directory
temporary file, fsynced, and moved into place with :func:`os.replace`,
so a crash mid-save can never leave a half-written file under the final
name.  Loads fail *loudly*: any truncated, corrupted or non-checkpoint
file raises :class:`CheckpointError` with an actionable message instead
of surfacing a bare ``zipfile``/``KeyError`` traceback.
"""

from __future__ import annotations

import dataclasses
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.core.config import DRASConfig
from repro.core.decima import DecimaPG
from repro.core.dras_dql import DRASDQL
from repro.core.dras_pg import DRASPG

FORMAT_VERSION = 1

_KINDS = {"pg": DRASPG, "dql": DRASDQL, "decima": DecimaPG}


class CheckpointError(ValueError):
    """A checkpoint file is unreadable, truncated, or inconsistent."""


def _kind_of(agent) -> str:
    for kind, cls in _KINDS.items():
        if type(agent) is cls:
            return kind
    raise TypeError(f"unsupported agent type {type(agent).__name__}")


def agent_meta(agent) -> dict:
    """JSON-serialisable identity of an agent (kind, name, config)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": _kind_of(agent),
        "name": agent.name,
        "config": dataclasses.asdict(agent.config),
    }


def agent_arrays(agent) -> dict[str, np.ndarray]:
    """Every trainable array of an agent, keyed for the ``.npz``."""
    kind = _kind_of(agent)
    arrays: dict[str, np.ndarray] = {
        f"net.{k}": v for k, v in agent.network.state_dict().items()
    }
    opt = agent.optimizer
    for i, (m, v) in enumerate(zip(opt._m, opt._v)):
        arrays[f"adam.m.{i}"] = m
        arrays[f"adam.v.{i}"] = v
    arrays["adam.t"] = np.array([opt._t], dtype=np.int64)
    if kind in ("pg", "decima"):
        arrays["baseline.sums"] = agent.core.baseline._sums
        arrays["baseline.counts"] = agent.core.baseline._counts
    if kind == "dql":
        arrays["epsilon"] = np.array([agent.epsilon])
    return arrays


def restore_agent(meta: dict, data) -> object:
    """Rebuild an agent from :func:`agent_meta` + loaded arrays."""
    if meta.get("format_version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {meta.get('format_version')!r} "
            f"(this build reads version {FORMAT_VERSION}); re-save the "
            "agent with a matching version of the code"
        )
    kind = meta["kind"]
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise CheckpointError(
            f"unknown agent kind {kind!r}; expected one of "
            f"{sorted(_KINDS)}"
        ) from None
    config = DRASConfig(**meta["config"])
    agent = cls(config)
    agent.network.load_state_dict(
        {k[len("net."):]: data[k] for k in data.files if k.startswith("net.")}
    )
    opt = agent.optimizer
    n_params = len(opt.params)
    for i in range(n_params):
        opt._m[i] = data[f"adam.m.{i}"].copy()
        opt._v[i] = data[f"adam.v.{i}"].copy()
    opt._t = int(data["adam.t"][0])
    if kind in ("pg", "decima"):
        agent.core.baseline._sums = data["baseline.sums"].copy()
        agent.core.baseline._counts = data["baseline.counts"].copy()
    if kind == "dql":
        agent.epsilon = float(data["epsilon"][0])
    return agent


def atomic_savez(path: str | Path, arrays: dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` atomically (tmp file + fsync + ``os.replace``).

    ``np.savez`` is handed an open file object so the archive lands at
    the exact temporary path (the convenience string API appends
    ``.npz``), then the finished file replaces the target in one atomic
    rename.  A crash at any point leaves either the old file or the new
    one, never a torn hybrid.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def load_npz_checkpoint(path: str | Path):
    """Open an ``.npz`` checkpoint, translating corruption to loud errors.

    Returns the ``NpzFile`` context manager.  Raises
    :class:`CheckpointError` when the file is missing, truncated, or
    not a valid archive.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(
            f"checkpoint {path} does not exist; check the path or start "
            "from scratch"
        )
    try:
        return np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is unreadable ({exc}); the file is likely "
            "truncated or corrupted — restore it from a backup or fall "
            "back to an earlier checkpoint"
        ) from exc


def save_agent(agent, path: str | Path) -> None:
    """Write the complete trainable state of a DRAS/Decima agent.

    The write is atomic: a crash mid-save never corrupts an existing
    checkpoint at ``path``.
    """
    meta = agent_meta(agent)
    arrays = agent_arrays(agent)
    arrays["__meta__"] = np.array(json.dumps(meta))
    atomic_savez(path, arrays)


def load_agent(path: str | Path):
    """Rebuild an agent (including optimizer/exploration state).

    Raises :class:`CheckpointError` with an actionable message when the
    file is missing, truncated, corrupted, or incomplete.
    """
    path = Path(path)
    try:
        with load_npz_checkpoint(path) as data:
            meta = json.loads(str(data["__meta__"]))
            return restore_agent(meta, data)
    except CheckpointError:
        raise
    except (KeyError, json.JSONDecodeError, ValueError, EOFError,
            zipfile.BadZipFile, OSError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is incomplete or corrupted ({exc}); "
            "restore it from a backup or fall back to an earlier "
            "checkpoint"
        ) from exc
