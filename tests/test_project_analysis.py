"""Tests for the whole-program analyzer (``repro.check`` v2).

Covers the project model, the three project-rule families (RPR2xx
units-of-measure, RPR3xx static NN verification, RPR4xx API contracts),
the report/baseline machinery and the ratchet script.  The mutation
tests copy ``src/repro`` into a tmp tree, seed one realistic bug and
assert the analyzer catches it — including the acceptance-criteria
seconds↔hours mix-up and the NumPy-free Table III proof.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.check import LintConfig, analyze_project
from repro.check.lint import Violation
from repro.check.project import ProjectModel
from repro.check import report as chk_report
from repro.check import shapes

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

TABLE3_EXPECTED = {
    "theta-pg": 21_890_053,
    "theta-dql": 21_449_004,
    "cori-pg": 161_960_053,
    # cori-dql is checked against the formula, not the (inconsistent) paper
    "cori-dql": 160_784_004,
}


def write_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialize a scratch package tree under ``root``."""
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    return root


@pytest.fixture()
def mutated_src(tmp_path):
    """A throwaway full copy of ``src/repro`` for mutation tests."""
    target = tmp_path / "repro"
    shutil.copytree(SRC, target)
    return target


def rule_ids(violations: list[Violation]) -> set[str]:
    return {v.rule_id for v in violations}


class TestProjectModel:
    def test_import_alias_resolution(self, tmp_path):
        root = write_tree(tmp_path / "pkg", {
            "pkg/__init__.py": "",
            "pkg/consts.py": "LIMIT = 7\n",
            "pkg/use.py": "from pkg.consts import LIMIT as CAP\n",
            "pkg/relative.py": "from .consts import LIMIT\n",
        })
        project = ProjectModel.load(root / "pkg", package="pkg")
        use = project.module("pkg.use")
        assert use is not None
        assert use.imports["CAP"] == "pkg.consts.LIMIT"
        resolved = project.resolve("pkg.consts.LIMIT")
        assert resolved is not None and resolved[0].name == "pkg.consts"
        rel = project.module("pkg.relative")
        assert rel.imports["LIMIT"] == "pkg.consts.LIMIT"

    def test_subclass_hierarchy(self, tmp_path):
        root = write_tree(tmp_path / "pkg", {
            "pkg/__init__.py": "",
            "pkg/base.py": "class Base:\n    pass\n",
            "pkg/mid.py": "from pkg.base import Base\n\nclass Mid(Base):\n    pass\n",
            "pkg/leaf.py": "from pkg.mid import Mid\n\nclass Leaf(Mid):\n    pass\n",
        })
        project = ProjectModel.load(root / "pkg", package="pkg")
        assert project.subclasses_of("pkg.base.Base") == [
            "pkg.leaf.Leaf", "pkg.mid.Mid",
        ]

    def test_real_tree_scheduler_hierarchy(self):
        project = ProjectModel.load(SRC, package="repro")
        subs = project.subclasses_of("repro.schedulers.base.BaseScheduler")
        assert "repro.schedulers.fcfs.FCFSEasy" in subs
        assert "repro.core.agent.HierarchicalAgent" in subs


class TestUnitsRules:
    def test_seeded_seconds_hours_mixup_is_caught(self, tmp_path):
        """Acceptance criterion: a seconds↔hours bug in a scratch module."""
        root = write_tree(tmp_path / "scratch", {
            "scratch/__init__.py": "",
            "scratch/bug.py": """\
                \"\"\"Scratch module with a seeded unit bug.\"\"\"

                def total_delay(wait_seconds: float, limit_hours: float) -> float:
                    \"\"\"Seeded bug: adds seconds to hours.\"\"\"
                    return wait_seconds + limit_hours
                """,
        })
        violations = analyze_project(root / "scratch")
        assert "RPR201" in rule_ids(violations)
        [v] = [v for v in violations if v.rule_id == "RPR201"]
        assert "seconds" in v.message and "hours" in v.message

    def test_unconverted_assignment_and_conversion(self, tmp_path):
        root = write_tree(tmp_path / "scratch", {
            "scratch/__init__.py": "",
            "scratch/assign.py": """\
                \"\"\"Assignments with and without conversion.\"\"\"

                def bad(total_wait_seconds: float) -> float:
                    \"\"\"Missing the /3600.\"\"\"
                    wait_hours = total_wait_seconds
                    return wait_hours

                def good(total_wait_seconds: float) -> float:
                    \"\"\"Proper conversion is not flagged.\"\"\"
                    wait_hours = total_wait_seconds / 3600.0
                    return wait_hours
                """,
        })
        violations = analyze_project(root / "scratch")
        assert [v.rule_id for v in violations] == ["RPR202"]
        assert violations[0].line == 5

    def test_aliased_conversion_constant_resolves(self, tmp_path):
        root = write_tree(tmp_path / "scratch", {
            "scratch/__init__.py": "",
            "scratch/units_mod.py": "\"\"\"Local units.\"\"\"\nSPH = 3600.0\n",
            "scratch/use.py": """\
                \"\"\"Conversion through an imported alias.\"\"\"
                from scratch.units_mod import SPH

                def to_hours(run_seconds: float) -> float:
                    \"\"\"Seconds -> hours through the alias.\"\"\"
                    run_hours = run_seconds / SPH
                    return run_hours
                """,
        })
        violations = analyze_project(root / "scratch")
        assert violations == []

    def test_unit_annotation_overrides_name(self, tmp_path):
        root = write_tree(tmp_path / "scratch", {
            "scratch/__init__.py": "",
            "scratch/anno.py": """\
                \"\"\"Annotation declares the target dimension.\"\"\"

                def f(span_seconds: float) -> float:
                    \"\"\"`budget` is declared as seconds via annotation.\"\"\"
                    budget = span_seconds  # repro: unit[seconds]
                    return budget + span_seconds
                """,
        })
        assert analyze_project(root / "scratch") == []

    def test_constant_redefinition_flagged(self, tmp_path):
        root = write_tree(tmp_path / "scratch", {
            "scratch/__init__.py": "",
            "scratch/dup.py": "\"\"\"Dup.\"\"\"\nSECONDS_PER_HOUR = 3600.0\n",
        })
        violations = analyze_project(root / "scratch")
        assert [v.rule_id for v in violations] == ["RPR203"]

    def test_noqa_suppresses_project_findings(self, tmp_path):
        root = write_tree(tmp_path / "scratch", {
            "scratch/__init__.py": "",
            "scratch/sup.py": """\
                \"\"\"Suppressed mix.\"\"\"

                def f(a_seconds: float, b_hours: float) -> float:
                    \"\"\"Intentional; suppressed in place.\"\"\"
                    return a_seconds + b_hours  # repro: noqa[unit-mix]
                """,
        })
        assert analyze_project(root / "scratch") == []

    def test_select_ignore_filtering(self, tmp_path):
        root = write_tree(tmp_path / "scratch", {
            "scratch/__init__.py": "",
            "scratch/dup.py": "\"\"\"Dup.\"\"\"\nSECONDS_PER_HOUR = 3600.0\n",
        })
        config = LintConfig().with_overrides(ignore=["unit-constant"])
        assert analyze_project(root / "scratch", config) == []
        config = LintConfig().with_overrides(select=["RPR201"])
        assert analyze_project(root / "scratch", config) == []


class TestShapesRules:
    def test_static_table3_counts_match_paper(self):
        project = ProjectModel.load(SRC, package="repro")
        assert shapes.static_table3_counts(project) == TABLE3_EXPECTED

    def test_shape_break_is_caught(self, mutated_src):
        network = mutated_src / "nn" / "network.py"
        network.write_text(network.read_text().replace(
            "Dense(hidden1, hidden2, bias=False",
            "Dense(hidden2, hidden1, bias=False",
        ))
        violations = analyze_project(mutated_src, package="repro")
        assert "RPR301" in rule_ids(violations)
        assert any("does not match" in v.message for v in violations)

    def test_param_count_drift_is_caught(self, mutated_src):
        config = mutated_src / "core" / "config.py"
        config.write_text(config.read_text().replace(
            "hidden1=4000,", "hidden1=4096,",
        ))
        violations = analyze_project(mutated_src, package="repro")
        assert "RPR302" in rule_ids(violations)
        assert any("21,890,053" in v.message for v in violations)

    def test_missing_bias_changes_count(self, mutated_src):
        network = mutated_src / "nn" / "network.py"
        network.write_text(network.read_text().replace(
            "Dense(hidden2, outputs, bias=True",
            "Dense(hidden2, outputs, bias=False",
        ))
        violations = analyze_project(mutated_src, package="repro")
        assert "RPR302" in rule_ids(violations)

    def test_rules_inapplicable_on_scratch_trees(self, tmp_path):
        root = write_tree(tmp_path / "scratch", {
            "scratch/__init__.py": "",
            "scratch/mod.py": "\"\"\"Nothing NN-ish here.\"\"\"\nX = 1\n",
        })
        assert analyze_project(root / "scratch") == []

    def test_batched_shapes_derived(self):
        """RPR303's interpreter carries the symbolic batch dim end to end."""
        project = ProjectModel.load(SRC, package="repro")
        configs = shapes.static_table3_configs(project)
        summary = shapes.interpret_network(project, "theta-pg",
                                           configs["theta-pg"])
        assert summary.findings == []
        assert summary.layers[0].in_shape == ("B", 4460, 2)
        assert summary.layers[0].out_shape == ("B", 4460)
        assert summary.output_shape == ("B", 50)
        assert all(layer.out_shape[0] == "B" for layer in summary.layers)
        assert shapes.format_shape(summary.output_shape) == "[B, 50]"

    def test_unrouted_forward_is_caught(self, mutated_src):
        """A network.forward outside score_window/update trips RPR303."""
        dql = mutated_src / "core" / "dras_dql.py"
        dql.write_text(dql.read_text().replace(
            "return batch, self.score_window(batch)",
            "return batch, self.network.forward(batch)[:, 0]",
        ))
        violations = analyze_project(mutated_src, package="repro")
        assert "RPR303" in rule_ids(violations)
        assert any("score_window" in v.message for v in violations)

    def test_missing_score_window_is_caught(self, mutated_src):
        """Renaming the batched entry point away trips RPR303 twice."""
        pg = mutated_src / "core" / "dras_pg.py"
        pg.write_text(pg.read_text().replace(
            "def score_window", "def score_batch",
        ).replace("self.score_window(", "self.score_batch("))
        violations = analyze_project(mutated_src, package="repro")
        messages = [v.message for v in violations
                    if v.rule_id == "RPR303"]
        assert any("defines no batched score_window" in m for m in messages)
        assert any("forward called in score_batch()" in m for m in messages)

    def test_numpy_free_proof(self, tmp_path):
        """RPR3xx verifies 21,890,053 params with NumPy import-blocked."""
        script = tmp_path / "proof.py"
        script.write_text(textwrap.dedent(f"""\
            import sys, types

            class NumpyBlocker:
                def find_spec(self, name, path=None, target=None):
                    if name == "numpy" or name.startswith("numpy."):
                        raise ImportError("numpy is blocked in this proof")
                    return None

            sys.meta_path.insert(0, NumpyBlocker())
            sys.path.insert(0, {str(REPO / 'src')!r})
            # a stub package so repro/__init__.py (which needs numpy)
            # never executes; submodule imports resolve via __path__
            pkg = types.ModuleType("repro")
            pkg.__path__ = [{str(SRC)!r}]
            sys.modules["repro"] = pkg

            from repro.check.project import ProjectModel, analyze_project
            from repro.check import shapes

            project = ProjectModel.load({str(SRC)!r}, package="repro")
            counts = shapes.static_table3_counts(project)
            assert counts["theta-pg"] == 21_890_053, counts
            violations = analyze_project({str(SRC)!r})
            assert "numpy" not in sys.modules
            print("verified", counts["theta-pg"], len(violations))
            """), encoding="utf-8")
        result = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "verified 21890053" in result.stdout


class TestContractRules:
    def test_schedule_signature_drift(self, mutated_src):
        sched = mutated_src / "schedulers" / "binpacking.py"
        sched.write_text(sched.read_text().replace(
            "def schedule(self, view: SchedulingView) -> None:",
            "def schedule(self, view: SchedulingView, verbose) -> None:",
        ))
        violations = analyze_project(mutated_src, package="repro")
        assert "RPR401" in rule_ids(violations)

    def test_lifecycle_hook_drift(self, mutated_src):
        agent = mutated_src / "core" / "agent.py"
        agent.write_text(agent.read_text().replace(
            "def on_simulation_end(self, engine) -> None:",
            "def on_simulation_end(self, engine, result) -> None:",
        ))
        violations = analyze_project(mutated_src, package="repro")
        assert "RPR402" in rule_ids(violations)

    def test_observer_hook_drift(self, mutated_src):
        metrics = mutated_src / "sim" / "metrics.py"
        metrics.write_text(metrics.read_text().replace(
            "def on_finish(self, job: Job, now: float) -> None:",
            "def on_finish(self, job: Job) -> None:",
        ))
        violations = analyze_project(mutated_src, package="repro")
        assert "RPR403" in rule_ids(violations)

    def test_undocumented_span_name(self, mutated_src):
        engine = mutated_src / "sim" / "engine.py"
        engine.write_text(engine.read_text().replace(
            '"engine.release"', '"engine.free"',
        ))
        violations = analyze_project(mutated_src, package="repro")
        assert "RPR404" in rule_ids(violations)
        assert any("engine.free" in v.message for v in violations)

    def test_extra_defaulted_params_are_compatible(self, tmp_path):
        root = write_tree(tmp_path / "pkg", {
            "pkg/__init__.py": "",
            "pkg/sched.py": """\
                \"\"\"Extra defaulted args keep the engine call valid.\"\"\"

                class Recorder:
                    \"\"\"Observer with an optional extra parameter.\"\"\"

                    def on_start(self, job, now, log=None):
                        \"\"\"Compatible with (self, job, now).\"\"\"
                """,
        })
        assert analyze_project(root / "pkg") == []


class TestReportAndBaseline:
    def _violations(self) -> list[Violation]:
        return [
            Violation("a.py", 3, 0, "RPR201", "unit-mix", "m1"),
            Violation("a.py", 9, 4, "RPR201", "unit-mix", "m1"),
            Violation("b.py", 1, 0, "RPR404", "span-registry", "m2"),
        ]

    def test_json_document(self):
        doc = json.loads(chk_report.to_json(self._violations(), ["src"], True))
        assert doc["count"] == 3 and doc["strict"] is True
        assert doc["findings"][0]["rule"] == "RPR201"

    def test_sarif_document(self):
        sarif = chk_report.to_sarif(
            self._violations(), [("RPR201", "unit-mix", "why")],
        )
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        assert len(results) == 3
        assert results[0]["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"] == "a.py"

    def test_baseline_roundtrip_and_ratchet_direction(self, tmp_path):
        baseline_path = tmp_path / "base.json"
        vs = self._violations()
        chk_report.save_baseline(baseline_path, vs)
        baseline = chk_report.load_baseline(baseline_path)
        # identical findings (even at moved lines) are fully covered
        moved = [Violation(v.path, v.line + 100, v.col, v.rule_id, v.slug,
                           v.message) for v in vs]
        new, stale = chk_report.diff_baseline(moved, baseline)
        assert new == [] and not stale
        # one extra finding is new; one fixed finding is stale
        extra = vs + [Violation("c.py", 1, 0, "RPR202", "unit-assign", "m3")]
        new, _ = chk_report.diff_baseline(extra, baseline)
        assert [v.path for v in new] == ["c.py"]
        _, stale = chk_report.diff_baseline(vs[:-1], baseline)
        assert sum(stale.values()) == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError):
            chk_report.load_baseline(bad)
        bad.write_text('{"version": 99, "findings": {}}', encoding="utf-8")
        with pytest.raises(ValueError):
            chk_report.load_baseline(bad)


class TestCanonicalUnits:
    def test_single_source_of_truth(self):
        """The dedup satellite: one blessed module defines the constants."""
        from repro.workload import units
        from repro.workload import generator, stats
        from repro.experiments import fig3

        assert units.SECONDS_PER_HOUR == 3600.0
        assert units.SECONDS_PER_DAY == 86400.0
        assert generator.SECONDS_PER_HOUR is units.SECONDS_PER_HOUR
        assert stats._HOUR is units.SECONDS_PER_HOUR
        assert fig3._DAY is units.SECONDS_PER_DAY

    def test_no_other_module_defines_the_constants(self):
        """RPR203 guards the dedup: src/repro has exactly one definition."""
        project = ProjectModel.load(SRC, package="repro")
        defining = [
            info.name for info in project.modules.values()
            if "SECONDS_PER_HOUR" in info.constants
        ]
        assert defining == ["repro.workload.units"]


class TestStrictGateAndRatchet:
    def test_shipped_tree_is_strict_clean(self):
        assert analyze_project(SRC) == []

    def test_ratchet_script_passes_on_repo(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "check_ratchet.py")],
            capture_output=True, text=True, cwd=REPO,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "ratchet OK" in result.stdout
