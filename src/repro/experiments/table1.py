"""Table I — qualitative comparison of cluster scheduling methods.

This table is a design-space summary, not a measurement; we regenerate
it from a machine-readable feature matrix so the claims stay attached
to the implementations in this repository (each row's entry for DRAS,
FCFS, etc. is realized by the corresponding module).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table

_METHODS = ("FCFS", "BinPacking", "Optimization", "Decima", "DRAS")

_YES, _NO = "yes", "no"


@dataclass(frozen=True)
class FeatureRow:
    feature: str
    values: tuple[str, ...]


_FEATURES: tuple[FeatureRow, ...] = (
    FeatureRow("Adaption to workload changes", (_NO, _NO, _NO, _YES, _YES)),
    FeatureRow("Automatic policy tuning", (_NO, _NO, _NO, _YES, _YES)),
    FeatureRow("Long-term scheduling performance", (_NO, _NO, _NO, _YES, _YES)),
    FeatureRow("Starvation avoidance", (_YES, _NO, _NO, _NO, _YES)),
    FeatureRow("Require training", (_NO, _NO, _NO, _YES, _YES)),
    FeatureRow("Implementation effort", ("easy", "easy", "median", "hard", "hard")),
    FeatureRow(
        "Key objective",
        (
            "fairness",
            "utilization",
            "customizable",
            "customizable",
            "customizable",
        ),
    ),
)


def run() -> tuple[FeatureRow, ...]:
    return _FEATURES


def report(rows: tuple[FeatureRow, ...] = _FEATURES) -> str:
    table_rows = [[r.feature, *r.values] for r in rows]
    return format_table(
        ["Feature", *_METHODS],
        table_rows,
        title="Table I: comparison of cluster scheduling methods",
    )
