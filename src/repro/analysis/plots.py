"""Plain-text chart rendering for experiment reports.

The paper's figures are bar plots, line plots, scatter plots and Kiviat
(radar) charts; these helpers render the same data as terminal-friendly
text so the benchmark reports read like figures, with no plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SPARKS = "▁▂▃▄▅▆▇█"


def hbar_chart(
    values: Mapping[str, float],
    width: int = 40,
    title: str | None = None,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bar chart: one labelled bar per entry.

    Bars scale to the maximum value; sub-character resolution uses
    eighth-block glyphs.
    """
    if not values:
        raise ValueError("nothing to plot")
    if width <= 0:
        raise ValueError("width must be positive")
    vmax = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [] if title is None else [title]
    for key, value in values.items():
        if value < 0:
            raise ValueError("hbar_chart requires non-negative values")
        frac = value / vmax if vmax > 0 else 0.0
        eighths = int(round(frac * width * 8))
        full, rem = divmod(eighths, 8)
        bar = "█" * full + (_BLOCKS[rem] if rem else "")
        lines.append(f"{key.ljust(label_w)} | {bar.ljust(width)} {fmt.format(value)}")
    return "\n".join(lines)


def sparkline(series: Sequence[float]) -> str:
    """One-line sparkline of a numeric series."""
    vals = [float(v) for v in series]
    if not vals:
        raise ValueError("nothing to plot")
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span == 0:
        return _SPARKS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARKS) - 1))
        out.append(_SPARKS[idx])
    return "".join(out)


def line_chart(
    series: Mapping[str, Sequence[float]],
    height: int = 10,
    title: str | None = None,
) -> str:
    """Multi-series text line chart (one glyph column per x index).

    Each series gets a distinct marker; collisions show the later
    series' marker.  The y axis is shared and linearly scaled.
    """
    if not series:
        raise ValueError("nothing to plot")
    if height < 2:
        raise ValueError("height must be >= 2")
    markers = "ox+*#@%&"
    lengths = {len(s) for s in series.values()}
    if 0 in lengths:
        raise ValueError("empty series")
    width = max(lengths)
    all_vals = [v for s in series.values() for v in s]
    lo, hi = min(all_vals), max(all_vals)
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, s), marker in zip(series.items(), markers):
        for x, v in enumerate(s):
            y = int((float(v) - lo) / span * (height - 1))
            grid[height - 1 - y][x] = marker
    lines = [] if title is None else [title]
    lines.append(f"{hi:10.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{lo:10.2f} ┤" + "".join(grid[-1]))
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def kiviat_text(
    per_method: Mapping[str, Mapping[str, float]],
    width: int = 30,
    title: str | None = None,
) -> str:
    """Kiviat values rendered as grouped bar rows per metric.

    A faithful radar plot does not survive monospace rendering; grouped
    normalized bars preserve the same reading (per metric: who is at
    1.0, who at 0.0).
    """
    if not per_method:
        raise ValueError("nothing to plot")
    metrics = list(next(iter(per_method.values())).keys())
    blocks = [] if title is None else [title]
    for metric in metrics:
        blocks.append(f"\n[{metric}]")
        blocks.append(
            hbar_chart(
                {m: vals[metric] for m, vals in per_method.items()},
                width=width,
            )
        )
    return "\n".join(blocks)
