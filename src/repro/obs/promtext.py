"""Dependency-free Prometheus text-format exposition for metrics.

Renders :class:`~repro.obs.metrics.MetricsRegistry` instruments in the
Prometheus *text exposition format* (version 0.0.4 — the ``/metrics``
wire format every Prometheus-compatible scraper speaks):

* counters   → ``# TYPE <name> counter`` + one sample,
* gauges     → ``# TYPE <name> gauge`` + one sample,
* timers     → ``# TYPE <name> summary`` + ``{quantile="0.5|0.9|0.99"}``
  samples (the deterministic binned estimates of
  :meth:`~repro.obs.metrics.Timer.quantile`), ``_sum`` and ``_count``.

Metric names are sanitised to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset
(dots become underscores) and prefixed per component, so the engine's
``engine.events_submit`` counter exposes as
``repro_engine_events_submit``.

:func:`lint_prometheus` is the matching tiny validator used by tests
and the CI live-smoke job: it checks line grammar, name charset, value
parseability and TYPE-before-sample ordering, returning a list of
problems (empty = valid).

Everything here is pure string work over instrument values — no
sockets, no clocks — so it stays out of the RPR6xx effect root sets.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer

#: quantiles exposed for every timer, with their label spellings
SUMMARY_QUANTILES: tuple[tuple[float, str], ...] = (
    (0.50, "0.5"),
    (0.90, "0.9"),
    (0.99, "0.99"),
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?\Z"
)
_LABELS_RE = re.compile(
    r'\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*)?\}\Z'
)


def sanitize_metric_name(name: str) -> str:
    """Map an instrument name onto the Prometheus name charset.

    Dots (our namespace separator) and any other invalid character
    become underscores; a leading digit gains an underscore prefix.
    """
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    """One sample value, with Prometheus spellings for non-finite."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _render_counter(lines: list[str], name: str, counter: Counter) -> None:
    lines.append(f"# TYPE {name} counter")
    lines.append(f"{name} {_format_value(counter.value)}")


def _render_gauge(lines: list[str], name: str, gauge: Gauge) -> None:
    lines.append(f"# TYPE {name} gauge")
    lines.append(f"{name} {_format_value(gauge.value)}")


def _render_timer(lines: list[str], name: str, timer: Timer) -> None:
    lines.append(f"# TYPE {name} summary")
    for q, label in SUMMARY_QUANTILES:
        lines.append(
            f'{name}{{quantile="{label}"}} {_format_value(timer.quantile(q))}'
        )
    lines.append(f"{name}_sum {_format_value(timer.total)}")
    lines.append(f"{name}_count {_format_value(timer.count)}")


def render_registry(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render one registry's instruments as Prometheus text format.

    ``prefix`` namespaces every metric (``<prefix>_<sanitised name>``).
    Instrument names are emitted sorted, so the rendering for a given
    registry state is deterministic.
    """
    lines: list[str] = []
    for name in registry.names():
        instrument = registry._instruments[name]
        metric = sanitize_metric_name(f"{prefix}_{name}" if prefix else name)
        if isinstance(instrument, Counter):
            _render_counter(lines, metric, instrument)
        elif isinstance(instrument, Gauge):
            _render_gauge(lines, metric, instrument)
        elif isinstance(instrument, Timer):
            _render_timer(lines, metric, instrument)
    return "\n".join(lines) + "\n" if lines else ""


def render_prometheus(
    registries: Mapping[str, MetricsRegistry],
    extra: Mapping[str, float] | None = None,
    prefix: str = "repro",
) -> str:
    """Render several component registries into one exposition page.

    ``registries`` maps a component tag (``"engine"``, ``"trainer"``)
    onto its registry; metrics expose as ``<prefix>_<tag>_<name>``.
    ``extra`` adds ad-hoc gauge samples (already-derived scalars such
    as progress or ETA) under ``<prefix>_<name>``.
    """
    pages: list[str] = []
    for tag in sorted(registries):
        component_prefix = f"{prefix}_{tag}" if prefix else tag
        page = render_registry(registries[tag], prefix=component_prefix)
        if page:
            pages.append(page)
    if extra:
        lines: list[str] = []
        for name in sorted(extra):
            metric = sanitize_metric_name(f"{prefix}_{name}" if prefix else name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(extra[name])}")
        pages.append("\n".join(lines) + "\n")
    return "".join(pages)


def _parse_float(text: str) -> bool:
    """Whether ``text`` is a valid Prometheus sample value."""
    if text in ("NaN", "+Inf", "-Inf", "Inf"):
        return True
    try:
        float(text)
    except ValueError:
        return False
    return True


def lint_prometheus(text: str) -> list[str]:
    """Validate Prometheus text-format output; returns problems found.

    Checks, per line: grammar (comment / sample / blank), metric-name
    charset, label-block syntax, value parseability; and across lines:
    at most one ``# TYPE`` per metric family, samples of a family
    appearing only after its ``# TYPE``, and a trailing newline.  An
    empty list means the page is valid.
    """
    problems: list[str] = []
    if text and not text.endswith("\n"):
        problems.append("missing trailing newline")
    typed: set[str] = set()
    sampled_without_type: set[str] = set()
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3:
                    problems.append(f"line {line_no}: bare # {parts[1]}")
                    continue
                family = parts[2]
                if not _NAME_RE.match(family):
                    problems.append(
                        f"line {line_no}: invalid metric name {family!r}"
                    )
                if parts[1] == "TYPE":
                    if family in typed:
                        problems.append(
                            f"line {line_no}: duplicate # TYPE for {family}"
                        )
                    if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "summary", "histogram", "untyped",
                    ):
                        problems.append(
                            f"line {line_no}: unknown TYPE for {family}"
                        )
                    typed.add(family)
            # other comments are free-form
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {line_no}: unparseable sample {line!r}")
            continue
        labels = match.group("labels")
        if labels is not None and not _LABELS_RE.match(labels):
            problems.append(f"line {line_no}: invalid label block {labels!r}")
        if not _parse_float(match.group("value")):
            problems.append(
                f"line {line_no}: invalid value {match.group('value')!r}"
            )
        name = match.group("name")
        family = re.sub(r"_(sum|count|bucket)\Z", "", name)
        if name not in typed and family not in typed:
            sampled_without_type.add(name)
    for name in sorted(sampled_without_type):
        problems.append(f"sample {name} has no preceding # TYPE")
    return problems
