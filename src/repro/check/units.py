"""RPR2xx — units-of-measure checking for time/node quantities.

Python cannot type-check that ``Job.walltime`` (seconds) is never added
to ``core_hours`` (node-hours); the DRAS reproduction carries every
simulation quantity in SWF's native **seconds** and converts at the
report edge, so a silent seconds↔hours mix-up corrupts results without
crashing.  This module infers an abstract *dimension* for expressions
and flags mixed-dimension arithmetic:

* dimensions — ``seconds``, ``hours``, ``days``, ``nodes``,
  ``node_seconds``, ``node_hours``, plus ``scalar`` (dimensionless
  literals, which combine freely) and *unknown* (never reported);
* sources of dimension facts — naming conventions (``*_seconds``,
  ``*_hours``, ``walltime``, ``core_hours``, ``num_nodes``, …), explicit
  ``# repro: unit[seconds]`` line annotations, and the canonical
  conversion constants of :mod:`repro.workload.units` (including their
  literal values 3600/86400), which convert dimensions instead of
  mixing them: ``seconds / SECONDS_PER_HOUR`` *is* ``hours``;
* flow sensitivity — an assignment overrides name inference for the
  rest of the scope, so ``runtimes = raw / _HOUR`` does not poison
  later uses of ``runtimes``;
* whole-program resolution — imported constants are resolved through
  the :class:`~repro.check.project.ProjectModel`, so an aliased
  ``from repro.workload.units import SECONDS_PER_HOUR as _HOUR`` still
  counts as a conversion.

Rules
-----
* **RPR201** ``unit-mix`` — ``+``/``-``/comparison between two
  expressions of different known dimensions (``walltime + core_hours``).
* **RPR202** ``unit-assign`` — assigning (or passing as a keyword
  argument) an expression of one known dimension to a target whose name
  declares another (``wait_hours = total_wait_seconds``).
* **RPR203** ``unit-constant`` — redefining a canonical unit constant
  (``SECONDS_PER_HOUR = 3600``) outside ``repro/workload/units.py``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.check.project import (
    ModuleInfo,
    ProjectFinding,
    ProjectModel,
    ProjectRule,
    register_project,
)

#: the only module allowed to define the canonical conversion constants
UNITS_MODULE_SUFFIX = "workload/units.py"

#: canonical conversion-constant names (RPR203 protects these)
UNIT_CONSTANT_NAMES = frozenset({
    "SECONDS_PER_MINUTE", "MINUTES_PER_HOUR", "SECONDS_PER_HOUR",
    "HOURS_PER_DAY", "SECONDS_PER_DAY",
})

#: names that denote a seconds-per-X conversion factor, by kind
_CONV_NAMES = {
    "SECONDS_PER_HOUR": "s_per_h", "_HOUR": "s_per_h", "HOUR": "s_per_h",
    "SECONDS_PER_DAY": "s_per_d", "_DAY": "s_per_d", "DAY": "s_per_d",
    "SECONDS_PER_MINUTE": "s_per_min",
}
_CONV_LITERALS = {3600: "s_per_h", 3600.0: "s_per_h",
                  86400: "s_per_d", 86400.0: "s_per_d"}

#: dividing dimension X by a conversion factor of this kind yields …
_DIV_CONV = {
    ("seconds", "s_per_h"): "hours",
    ("node_seconds", "s_per_h"): "node_hours",
    ("seconds", "s_per_d"): "days",
    ("seconds", "s_per_min"): None,  # minutes: not in the lattice
}
#: multiplying dimension X by a conversion factor of this kind yields …
_MUL_CONV = {
    ("hours", "s_per_h"): "seconds",
    ("node_hours", "s_per_h"): "node_seconds",
    ("scalar", "s_per_h"): "seconds",
    ("days", "s_per_d"): "seconds",
    ("scalar", "s_per_d"): "seconds",
    ("scalar", "s_per_min"): "seconds",
}

_ANNOTATION = re.compile(r"#\s*repro:\s*unit\[(?P<dim>[a-z_]+)\]")

#: dimensions that participate in mix checks ("real" dimensions)
REAL_DIMS = frozenset({
    "seconds", "hours", "days", "nodes", "node_seconds", "node_hours",
})

_SPECIAL_NAMES = {
    "core_hours": "node_hours",
    "node_hours": "node_hours",
    "node_seconds": "node_seconds",
    "num_nodes": "nodes",
    "extra_nodes": "nodes",
    "walltime": "seconds", "walltimes": "seconds",
    "runtime": "seconds", "runtimes": "seconds",
    "makespan": "seconds",
    "now": "seconds",
}

_NAME_PATTERNS: tuple[tuple[re.Pattern[str], str], ...] = (
    (re.compile(r"_node_seconds$"), "node_seconds"),
    (re.compile(r"_(core|node)_hours?$"), "node_hours"),
    (re.compile(r"_seconds$|_secs?$|(?<!_per)_s$"), "seconds"),
    (re.compile(r"_(walltime|runtime|time)s?$"), "seconds"),
    (re.compile(r"_hours?$"), "hours"),
    (re.compile(r"_days?$"), "days"),
    (re.compile(r"_nodes$"), "nodes"),
)

#: builtins whose result carries the dimension of their first argument
_DIM_PRESERVING = frozenset({"float", "int", "abs", "round", "min", "max", "sum"})
#: builtins whose result is a dimensionless count/index
_SCALAR_FUNCS = frozenset({"len", "id", "hash", "ord", "bool"})


def name_dim(name: str) -> str | None:
    """Dimension implied by an identifier name (None when undeclared)."""
    n = name.lower()
    if "_per_" in n or name in _CONV_NAMES or name in UNIT_CONSTANT_NAMES:
        return None
    if n in _SPECIAL_NAMES:
        return _SPECIAL_NAMES[n]
    for pattern, dim in _NAME_PATTERNS:
        if pattern.search(n):
            return dim
    return None


def _line_annotations(source: str) -> dict[int, str]:
    """``# repro: unit[dim]`` annotations keyed by line number."""
    out: dict[int, str] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _ANNOTATION.search(text)
        if m is not None:
            out[lineno] = m.group("dim")
    return out


class _UnitChecker:
    """Infers dimensions over one module, recording mix findings."""

    def __init__(self, project: ProjectModel, info: ModuleInfo) -> None:
        self.project = project
        self.info = info
        self.annotations = _line_annotations(info.source)
        self.findings: list[ProjectFinding] = []

    # -- conversion factors ------------------------------------------------
    def conv_kind(self, node: ast.expr) -> str | None:
        """Conversion-factor kind of ``node`` (None when not a factor)."""
        if isinstance(node, ast.Constant) and not isinstance(node.value, bool):
            return _CONV_LITERALS.get(node.value)  # type: ignore[arg-type]
        symbol: str | None = None
        if isinstance(node, ast.Name):
            symbol = node.id
        elif isinstance(node, ast.Attribute):
            symbol = node.attr
        if symbol is None:
            return None
        if symbol in _CONV_NAMES:
            return _CONV_NAMES[symbol]
        if isinstance(node, ast.Name):
            # an alias like `from ...units import SECONDS_PER_HOUR as K`
            origin = self.info.imports.get(symbol)
            if origin is not None:
                terminal = origin.rpartition(".")[2]
                if terminal in _CONV_NAMES:
                    return _CONV_NAMES[terminal]
                resolved = self.project.resolve(origin)
                if resolved is not None:
                    _, target = resolved
                    if isinstance(target, ast.Constant):
                        return _CONV_LITERALS.get(target.value)
        return None

    # -- reporting ---------------------------------------------------------
    def _report(self, node: ast.AST, message: str) -> None:
        self.findings.append(ProjectFinding(
            self.info.path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0), message,
        ))

    def _mix(self, node: ast.AST, what: str, left: str, right: str) -> None:
        self._report(node, f"{what} mixes dimensions {left} and {right}; "
                           "convert explicitly (see repro.workload.units)")

    # -- expression dimension ----------------------------------------------
    def dim(self, node: ast.expr | None, env: dict[str, str | None]) -> str | None:
        """Abstract dimension of ``node``; records findings as it walks."""
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
                return None
            return "scalar"
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if self.conv_kind(node) is not None:
                return "seconds"  # a standalone factor is a seconds quantity
            inferred = name_dim(node.id)
            if inferred is not None:
                return inferred
            return self._module_constant_dim(node.id)
        if isinstance(node, ast.Attribute):
            self.dim(node.value, env)
            if self.conv_kind(node) is not None:
                return "seconds"
            return name_dim(node.attr)
        if isinstance(node, ast.BinOp):
            return self._binop_dim(node, env)
        if isinstance(node, ast.UnaryOp):
            return self.dim(node.operand, env)
        if isinstance(node, ast.Compare):
            dims = [self.dim(node.left, env)]
            dims += [self.dim(c, env) for c in node.comparators]
            for left, right in zip(dims, dims[1:]):
                if left in REAL_DIMS and right in REAL_DIMS and left != right:
                    self._mix(node, "comparison", left, right)
                    break
            return "scalar"
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.dim(value, env)
            return None
        if isinstance(node, ast.Call):
            return self._call_dim(node, env)
        if isinstance(node, ast.Subscript):
            result = self.dim(node.value, env)
            self.dim(node.slice, env)
            return result
        if isinstance(node, ast.IfExp):
            self.dim(node.test, env)
            body = self.dim(node.body, env)
            orelse = self.dim(node.orelse, env)
            return body if body == orelse else None
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            dims = {self.dim(elt, env) for elt in node.elts}
            if len(dims) == 1:
                return dims.pop()
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.dim(key, env)
            for value in node.values:
                self.dim(value, env)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            inner = dict(env)
            for comp in node.generators:
                self.dim(comp.iter, env)
                for name in self._target_names(comp.target):
                    inner[name] = None
                for cond in comp.ifs:
                    self.dim(cond, inner)
            return self.dim(node.elt, inner)
        if isinstance(node, ast.DictComp):
            inner = dict(env)
            for comp in node.generators:
                self.dim(comp.iter, env)
                for name in self._target_names(comp.target):
                    inner[name] = None
                for cond in comp.ifs:
                    self.dim(cond, inner)
            self.dim(node.key, inner)
            self.dim(node.value, inner)
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.dim(value.value, env)
            return None
        if isinstance(node, ast.FormattedValue):
            self.dim(node.value, env)
            return None
        if isinstance(node, ast.Starred):
            return self.dim(node.value, env)
        if isinstance(node, ast.Lambda):
            inner = dict(env)
            for arg in node.args.args + node.args.kwonlyargs:
                inner[arg.arg] = name_dim(arg.arg)
            self.dim(node.body, inner)
            return None
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.dim(node.value, env)
        if isinstance(node, ast.Yield):
            return self.dim(node.value, env) if node.value else None
        if isinstance(node, ast.NamedExpr):
            result = self.dim(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = result
            return result
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.dim(part, env)
            return None
        return None

    def _module_constant_dim(self, name: str) -> str | None:
        resolved = self.project.resolve_local(self.info, name)
        if resolved is None:
            return None
        _, target = resolved
        if isinstance(target, ast.expr):
            return name_dim(name)
        return None

    def _binop_dim(self, node: ast.BinOp, env: dict[str, str | None]) -> str | None:
        left_conv = self.conv_kind(node.left)
        right_conv = self.conv_kind(node.right)
        # conversion-factor arithmetic never mixes dimensions
        if right_conv is not None:
            ldim = self.dim(node.left, env)
            if isinstance(node.op, (ast.Div, ast.FloorDiv)):
                return _DIV_CONV.get((ldim, right_conv))
            if isinstance(node.op, ast.Mult):
                return _MUL_CONV.get((ldim, right_conv))
            if isinstance(node.op, ast.Mod):
                return ldim  # e.g. seconds % SECONDS_PER_DAY is still seconds
            self.dim(node.right, env)
            return None
        if left_conv is not None and isinstance(node.op, ast.Mult):
            rdim = self.dim(node.right, env)
            return _MUL_CONV.get((rdim, left_conv))
        ldim = self.dim(node.left, env)
        rdim = self.dim(node.right, env)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if ldim in REAL_DIMS and rdim in REAL_DIMS:
                if ldim != rdim:
                    self._mix(node, "arithmetic", ldim, rdim)
                    return None
                return ldim
            if ldim in REAL_DIMS and rdim == "scalar":
                return ldim
            if rdim in REAL_DIMS and ldim == "scalar":
                return rdim
            if ldim == rdim == "scalar":
                return "scalar"
            return None
        if isinstance(op, ast.Mult):
            pairs = {ldim, rdim}
            if pairs == {"nodes", "seconds"}:
                return "node_seconds"
            if pairs == {"nodes", "hours"}:
                return "node_hours"
            if ldim == "scalar":
                return rdim
            if rdim == "scalar":
                return ldim
            return None
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            table = {
                ("node_seconds", "nodes"): "seconds",
                ("node_seconds", "seconds"): "nodes",
                ("node_hours", "nodes"): "hours",
                ("node_hours", "hours"): "nodes",
            }
            if ldim in REAL_DIMS and ldim == rdim:
                return "scalar"
            if (ldim, rdim) in table:
                return table[(ldim, rdim)]
            if rdim == "scalar":
                return ldim
            return None
        if isinstance(op, ast.Mod):
            if ldim in REAL_DIMS and (rdim == ldim or rdim == "scalar"):
                return ldim
            if ldim == rdim == "scalar":
                return "scalar"
            return None
        return None

    def _call_dim(self, node: ast.Call, env: dict[str, str | None]) -> str | None:
        arg_dims = [self.dim(arg, env) for arg in node.args]
        for kw in node.keywords:
            vdim = self.dim(kw.value, env)
            if kw.arg is None:
                continue
            kdim = name_dim(kw.arg)
            if kdim in REAL_DIMS and vdim in REAL_DIMS and kdim != vdim:
                self._report(kw.value, (
                    f"keyword argument {kw.arg!r} declares {kdim} but the "
                    f"value has dimension {vdim}; convert explicitly"
                ))
        self.dim(node.func, env)
        if isinstance(node.func, ast.Name):
            fn = node.func.id
            if fn in _SCALAR_FUNCS:
                return "scalar"
            if fn in _DIM_PRESERVING and arg_dims:
                known = [d for d in arg_dims if d in REAL_DIMS]
                if fn in ("min", "max") and len(known) > 1 and len(set(known)) > 1:
                    self._mix(node, f"{fn}() call", known[0], known[1])
                    return None
                return arg_dims[0]
        return None

    # -- statements --------------------------------------------------------
    @staticmethod
    def _target_names(target: ast.expr) -> list[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            out = []
            for elt in target.elts:
                out.extend(_UnitChecker._target_names(elt))
            return out
        return []

    def _target_dim(self, target: ast.expr, lineno: int) -> str | None:
        if lineno in self.annotations:
            return self.annotations[lineno]
        if isinstance(target, ast.Name):
            return name_dim(target.id)
        if isinstance(target, ast.Attribute):
            return name_dim(target.attr)
        return None

    def _check_assign(
        self,
        target: ast.expr,
        value_dim: str | None,
        env: dict[str, str | None],
        node: ast.AST,
    ) -> None:
        tdim = self._target_dim(target, getattr(node, "lineno", 1))
        if tdim in REAL_DIMS and value_dim in REAL_DIMS and tdim != value_dim:
            label = target.id if isinstance(target, ast.Name) else ast.dump(target)[:40]
            if isinstance(target, ast.Attribute):
                label = target.attr
            self._report(node, (
                f"assigning a {value_dim} expression to {label!r}, which is "
                f"named as {tdim}; convert explicitly"
            ))
        if isinstance(target, ast.Name):
            if value_dim is not None:
                env[target.id] = value_dim
            elif tdim is not None:
                env[target.id] = tdim
            else:
                env[target.id] = None

    def process_scope(self, stmts: list[ast.stmt], env: dict[str, str | None]) -> None:
        """Check a statement list under a (mutated in place) local env."""
        for stmt in stmts:
            self.process_stmt(stmt, env)

    def process_stmt(self, stmt: ast.stmt, env: dict[str, str | None]) -> None:
        """Dispatch one statement: evaluate expressions, track targets."""
        if isinstance(stmt, ast.Assign):
            vdim = self.dim(stmt.value, env)
            for target in stmt.targets:
                self._check_assign(target, vdim, env, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                vdim = self.dim(stmt.value, env)
                self._check_assign(stmt.target, vdim, env, stmt)
        elif isinstance(stmt, ast.AugAssign):
            vdim = self.dim(stmt.value, env)
            tdim = self._target_dim(stmt.target, stmt.lineno)
            if isinstance(stmt.target, ast.Name) and stmt.target.id in env:
                tdim = env[stmt.target.id] or tdim
            if isinstance(stmt.op, (ast.Add, ast.Sub)) and tdim in REAL_DIMS \
                    and vdim in REAL_DIMS and tdim != vdim:
                self._mix(stmt, "augmented assignment", tdim, vdim)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner: dict[str, str | None] = {}
            args = stmt.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                inner[arg.arg] = name_dim(arg.arg)
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                self.dim(default, env)
            self.process_scope(stmt.body, inner)
        elif isinstance(stmt, ast.ClassDef):
            self.process_scope(stmt.body, {})
        elif isinstance(stmt, ast.For):
            self.dim(stmt.iter, env)
            for name in self._target_names(stmt.target):
                env[name] = None
            self.process_scope(stmt.body, env)
            self.process_scope(stmt.orelse, env)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.dim(stmt.test, env)
            self.process_scope(stmt.body, env)
            self.process_scope(stmt.orelse, env)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.dim(item.context_expr, env)
                if item.optional_vars is not None:
                    for name in self._target_names(item.optional_vars):
                        env[name] = None
            self.process_scope(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self.process_scope(stmt.body, env)
            for handler in stmt.handlers:
                self.process_scope(handler.body, env)
            self.process_scope(stmt.orelse, env)
            self.process_scope(stmt.finalbody, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.dim(stmt.value, env)
        elif isinstance(stmt, ast.Expr):
            self.dim(stmt.value, env)
        elif isinstance(stmt, ast.Assert):
            self.dim(stmt.test, env)
            if stmt.msg is not None:
                self.dim(stmt.msg, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.dim(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for name in [n for t in stmt.targets for n in self._target_names(t)]:
                env.pop(name, None)

    def run(self) -> list[ProjectFinding]:
        """Check the whole module and return its findings."""
        self.process_scope(self.info.tree.body, {})
        return self.findings


@register_project
class UnitMixRule(ProjectRule):
    """Additive/comparison mixes between different inferred dimensions."""

    id = "RPR201"
    slug = "unit-mix"
    rationale = (
        "adding or comparing seconds with hours/nodes silently corrupts "
        "scheduling metrics; convert via repro.workload.units constants"
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Run the dimension checker over every module, keeping mixes."""
        for info in project.modules.values():
            for finding in _UnitChecker(project, info).run():
                if "mixes dimensions" in finding.message:
                    yield finding


@register_project
class UnitAssignRule(ProjectRule):
    """Cross-dimension assignments / keyword passing without conversion."""

    id = "RPR202"
    slug = "unit-assign"
    rationale = (
        "binding a seconds expression to an *_hours name (or passing it to "
        "an *_hours keyword) hides a missing conversion at every later use"
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Run the dimension checker over every module, keeping assigns."""
        for info in project.modules.values():
            for finding in _UnitChecker(project, info).run():
                if "mixes dimensions" not in finding.message:
                    yield finding


@register_project
class UnitConstantRule(ProjectRule):
    """Unit conversion constants must come from ``repro.workload.units``."""

    id = "RPR203"
    slug = "unit-constant"
    rationale = (
        "three independent SECONDS_PER_HOUR definitions drifted through the "
        "workload package historically; one blessed module keeps them aligned"
    )

    def check(self, project: ProjectModel) -> Iterator[ProjectFinding]:
        """Flag top-level (re)definitions of the canonical constants."""
        for info in project.modules.values():
            if info.path.endswith(UNITS_MODULE_SUFFIX):
                continue
            for stmt in info.tree.body:
                targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name) and (
                        target.id in UNIT_CONSTANT_NAMES
                        or target.id in _CONV_NAMES
                    ):
                        yield ProjectFinding(
                            info.path, stmt.lineno, stmt.col_offset,
                            f"redefinition of unit constant {target.id!r}; "
                            "import it from repro.workload.units instead",
                        )
