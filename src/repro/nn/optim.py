"""Optimizers updating :class:`~repro.nn.layers.Parameter` in place."""

from __future__ import annotations

import numpy as np

from repro.check import sanitize as _san
from repro.nn.layers import Parameter
from repro.obs import profile as _profile
from repro.obs import trace as _trace


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not params:
            raise ValueError("no parameters to optimize")
        self.params = params
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Plain stochastic gradient descent, optionally with momentum."""

    def __init__(
        self, params: list[Parameter], lr: float = 0.01, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimizer the paper uses, lr = 0.001."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        grad_clip: float | None = None,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.grad_clip = grad_clip
        #: when True, :attr:`last_grad_norm` is refreshed on every step
        #: (the global pre-clip gradient L2 norm); off by default so the
        #: bench hot path pays nothing for telemetry it does not use
        self.track_grad_norm = False
        #: global L2 norm of the gradient at the most recent tracked
        #: step (NaN until :attr:`track_grad_norm` sees a step)
        self.last_grad_norm = float("nan")
        self._m = [np.zeros_like(p.value) for p in params]
        self._v = [np.zeros_like(p.value) for p in params]
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update to every parameter (in place)."""
        prof = _profile.global_profiler()
        if prof is not None:
            with prof.scope("nn.adam_step"):
                return self._instrumented_step()
        return self._instrumented_step()

    def _instrumented_step(self) -> None:
        tracer = _trace.global_tracer()
        if tracer is None:
            return self._step()
        with tracer.span("nn.adam_step", t=self._t + 1,
                         params=len(self.params)):
            return self._step()

    def _step(self) -> None:
        self._t += 1
        sanitize = _san.sanitizer_enabled()
        track = self.track_grad_norm
        sq_norm_sum = 0.0
        grad_clip = self.grad_clip
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if sanitize:
                _san.check_finite(f"gradient of {p.name} (Adam step {self._t})", g)
            if track or grad_clip is not None:
                norm = float(np.linalg.norm(g))
                if track:
                    sq_norm_sum += norm * norm
                if grad_clip is not None and norm > grad_clip:
                    g = g * (grad_clip / norm)
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * np.square(g)
            m_hat = m / bias1
            v_hat = v / bias2
            shape_before = p.value.shape
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            if sanitize:
                _san.check_same_shape(p.name, shape_before, p.value.shape)
                _san.check_finite(f"value of {p.name} (Adam step {self._t})", p.value)
        if track:
            self.last_grad_norm = float(np.sqrt(sq_norm_sum))
