"""BinPacking heuristic (paper section IV-A).

Iteratively allocates the largest runnable job — the one with the
biggest size that still fits in the currently available nodes — until
the system cannot accommodate any further job.  There is no reservation
and no backfilling, which is precisely why the paper finds it starves
large jobs (Fig. 7).
"""

from __future__ import annotations

from repro.schedulers.base import BaseScheduler
from repro.sim.engine import SchedulingView


class BinPacking(BaseScheduler):
    """Largest-runnable-job-first packing without reservations."""

    name = "BinPacking"

    def schedule(self, view: SchedulingView) -> None:
        while True:
            free = view.free_nodes
            # recomputing the runnable set after every start is the
            # algorithm: each start changes ``free``
            runnable = [j for j in view.waiting() if j.size <= free]  # repro: noqa[hot-loop-alloc]
            if not runnable:
                return
            # Largest first; ties broken by arrival order (stable max).
            best = max(runnable, key=lambda j: j.size)
            view.start(best)
