"""Fig 6 — overall scheduling performance (Kiviat graphs).

For each system (Theta, Cori) and each of the seven methods, five
metrics are computed on the test trace — reciprocal average wait,
reciprocal maximum wait, reciprocal average slowdown, reciprocal
average response time, and utilization — then min-max normalized to
[0, 1] across methods (1 = best).  The paper's headline findings to
reproduce:

* DRAS yields the best overall result (largest Kiviat area);
* DRAS-PG leads on user-level metrics, DRAS-DQL on system-level;
* FCFS has the best maximum wait but poor averages;
* Decima-PG does well on utilization but poorly on user metrics;
* BinPacking and Random are worst overall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import kiviat_area, kiviat_normalize
from repro.analysis.plots import kiviat_text
from repro.analysis.tables import format_table
from repro.experiments.common import METHOD_ORDER, full_comparison


@dataclass(frozen=True)
class KiviatResult:
    system: str
    #: {method: {metric: normalized value}}
    normalized: dict[str, dict[str, float]]
    #: {method: raw metric dict}
    raw: dict[str, dict[str, float]]
    #: {method: polygon area}
    areas: dict[str, float]


def run_system(system: str, scale: str = "default", seed: int = 0) -> KiviatResult:
    results = full_comparison(system, scale, seed)
    ordered = [results[name] for name in METHOD_ORDER if name in results]
    normalized = kiviat_normalize(ordered)
    return KiviatResult(
        system=system,
        normalized=normalized,
        raw={r.name: r.metrics.as_dict() for r in ordered},
        areas={name: kiviat_area(vals) for name, vals in normalized.items()},
    )


def run(scale: str = "default", seed: int = 0) -> dict[str, KiviatResult]:
    return {
        system: run_system(system, scale, seed) for system in ("theta", "cori")
    }


def report(results: dict[str, KiviatResult]) -> str:
    blocks = []
    for system, res in results.items():
        metrics = list(next(iter(res.normalized.values())).keys())
        rows = []
        for method, vals in res.normalized.items():
            rows.append(
                [method, *[f"{vals[m]:.2f}" for m in metrics], f"{res.areas[method]:.3f}"]
            )
        blocks.append(
            format_table(
                ["method", *metrics, "area"],
                rows,
                title=f"Fig 6: normalized scheduling performance, {system} "
                "(1 = best, 0 = worst; larger area = better overall)",
            )
        )
        raw_rows = [
            [
                method,
                f"{raw['avg_wait'] / 3600:.2f}",
                f"{raw['max_wait'] / 86400:.2f}",
                f"{raw['avg_slowdown']:.2f}",
                f"{raw['avg_response'] / 3600:.2f}",
                f"{raw['utilization']:.3f}",
            ]
            for method, raw in res.raw.items()
        ]
        blocks.append(
            format_table(
                [
                    "method",
                    "avg wait (h)",
                    "max wait (d)",
                    "avg slowdown",
                    "avg response (h)",
                    "utilization",
                ],
                raw_rows,
                title=f"raw metrics, {system}",
            )
        )
        blocks.append(
            kiviat_text(
                res.normalized,
                title=f"normalized metric bars, {system} (Kiviat spokes):",
            )
        )
    return "\n\n".join(blocks)
