"""Equivalence tests for the batched NN inference/training paths.

The vectorized core (see ``docs/nn.md``) makes four promises that
these tests pin down:

1. a batched forward equals the per-sample loop to float64 precision,
2. gradcheck passes identically for batch 1 and batch ``N``,
3. one Adam step on batch-accumulated gradients equals the step on a
   single batched backward,
4. batch-1 training is **bit-identical** to the pre-vectorization
   implementation — four golden SHA-256 digests of trained agent
   state, captured on the seed tree under ``REPRO_SANITIZE=1``, must
   reproduce exactly.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.config import DRASConfig
from repro.core.dras_dql import DRASDQL
from repro.core.dras_pg import DRASPG
from repro.nn.gradcheck import check_gradients
from repro.nn.losses import mse_loss, policy_gradient_loss
from repro.nn.network import build_dras_network
from repro.nn.optim import Adam
from repro.rl.trainer import Trainer
from repro.sim.job import Job

# small Table III-shaped stand-in: [B, 12, 2] -> [B, 4]
ROWS, H1, H2, OUT = 12, 16, 8, 4


def small_network(seed: int = 0):
    """A tiny DRAS-shaped network for fast equivalence checks."""
    return build_dras_network(ROWS, H1, H2, OUT,
                              rng=np.random.default_rng(seed))


class TestBatchedForward:
    def test_batched_matches_loop(self):
        """One [16, rows, 2] forward == 16 batch-of-one forwards."""
        net = small_network()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(16, ROWS, 2))
        batched = net.forward(x)
        looped = np.stack(
            [net.forward(x[i : i + 1])[0] for i in range(16)]
        )
        assert batched.shape == (16, OUT)
        np.testing.assert_allclose(batched, looped, rtol=0, atol=1e-12)

    def test_backward_batch_sums_sample_grads(self):
        """Batched backward accumulates the sum of per-sample grads."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(6, ROWS, 2))
        grad_out = rng.normal(size=(6, OUT))
        net_a, net_b = small_network(7), small_network(7)

        net_a.zero_grad()
        net_a.forward(x)
        net_a.backward(grad_out)

        net_b.zero_grad()
        for i in range(6):
            net_b.forward(x[i : i + 1])
            net_b.backward(grad_out[i : i + 1])

        for pa, pb in zip(net_a.parameters(), net_b.parameters()):
            np.testing.assert_allclose(pa.grad, pb.grad,
                                       rtol=1e-9, atol=1e-12)


class TestGradcheckParity:
    @pytest.mark.parametrize("batch", [1, 5])
    def test_mse_gradcheck(self, batch):
        """Analytic grads match finite differences at batch 1 and N."""
        net = small_network(seed=3)
        rng = np.random.default_rng(4)
        x = rng.normal(size=(batch, ROWS, 2))
        target = rng.normal(size=(batch, OUT))
        worst = check_gradients(
            net, x, lambda out: mse_loss(out, target), max_entries=8
        )
        assert worst < 1e-4

    @pytest.mark.parametrize("batch", [1, 5])
    def test_policy_gradient_gradcheck(self, batch):
        """The REINFORCE head gradchecks at batch 1 and N too."""
        net = small_network(seed=5)
        rng = np.random.default_rng(6)
        x = rng.normal(size=(batch, ROWS, 2))
        masks = np.ones((batch, OUT), dtype=bool)
        masks[:, -1] = False  # one masked slot per window
        actions = rng.integers(0, OUT - 1, size=batch)
        advantages = rng.normal(size=batch)
        worst = check_gradients(
            net, x,
            lambda out: policy_gradient_loss(out, masks, actions, advantages),
            max_entries=8,
        )
        assert worst < 1e-4


class TestAdamBatchEquivalence:
    def test_accumulated_equals_batched_step(self):
        """Adam(sum of per-sample grads) == Adam(one batched backward)."""
        rng = np.random.default_rng(8)
        x = rng.normal(size=(6, ROWS, 2))
        target = rng.normal(size=(6, OUT))
        net_a, net_b = small_network(9), small_network(9)
        opt_a = Adam(net_a.parameters(), lr=1e-3)
        opt_b = Adam(net_b.parameters(), lr=1e-3)

        net_a.zero_grad()
        _, grad = mse_loss(net_a.forward(x), target)
        net_a.backward(grad)
        opt_a.step()

        net_b.zero_grad()
        for i in range(6):
            out = net_b.forward(x[i : i + 1])
            # the same batch loss, sliced per sample: grads accumulate
            # to the batched total before the single Adam step
            diff = out - target[i : i + 1]
            net_b.backward((2.0 / target.size) * diff)
        opt_b.step()

        for pa, pb in zip(net_a.parameters(), net_b.parameters()):
            np.testing.assert_allclose(pa.value, pb.value,
                                       rtol=1e-9, atol=1e-12)


#: SHA-256 of trained agent state on the pre-vectorization seed tree
#: (captured under REPRO_SANITIZE=1 before the batched refactor); the
#: vectorized code must reproduce these bit for bit.
GOLDEN_DIGESTS = {
    "pg-b1": "c8b98a2c98c6e02568e12fcd5b83e70a9c0f8aa6fb34459eba39753258bdb41f",
    "pg-b10": "74a6518b26ab3c2d853f4cf81a41e58229cddf841c981bb7f04a91b57daf3ce3",
    "dql-b1": "7d53215ba8a0e6a10bfd3e335b1748c071b3eca1d425be32e08c63e7fb15f17e",
    "dql-b10": "00b6d602e101b644f47b52b17cfafdb3e512aa8ddecb35f06023544990198592",
}


def _jobs(n: int, seed: int) -> list[Job]:
    """The fixed jobset recipe the golden digests were captured with."""
    rng = np.random.default_rng(seed)
    return [
        Job(
            size=int(rng.integers(1, 9)),
            walltime=float(rng.integers(20, 200)),
            runtime=float(rng.integers(10, 150)),
            submit_time=float(i * 15),
            job_id=100 + i,
        )
        for i in range(n)
    ]


def _digest(agent) -> str:
    """SHA-256 over the agent's sorted state dict, raw float64 bytes."""
    h = hashlib.sha256()
    state = agent.state_dict()
    for key in sorted(state):
        h.update(key.encode())
        h.update(np.ascontiguousarray(state[key]).tobytes())
    return h.hexdigest()


class TestBitIdenticalTraining:
    @pytest.mark.parametrize(
        "name, agent_cls, update_every",
        [
            ("pg-b1", DRASPG, 1),
            ("pg-b10", DRASPG, 10),
            ("dql-b1", DRASDQL, 1),
            ("dql-b10", DRASDQL, 10),
        ],
    )
    def test_training_reproduces_golden_digest(
        self, name, agent_cls, update_every, monkeypatch
    ):
        """Two training episodes end in exactly the golden parameters.

        ``update_every=1`` exercises the batch-1 update path (the
        bit-identity requirement); ``update_every=10`` the batched
        minibatch path.  The sanitizer is on so any non-finite tensor
        would abort loudly rather than hash differently.
        """
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        config = DRASConfig(
            num_nodes=16, window=4, hidden1=16, hidden2=8, seed=0,
            objective="capability", time_scale=1000.0,
            update_every=update_every,
        )
        agent = agent_cls(config)
        Trainer(agent, num_nodes=16).train(
            [("a", _jobs(12, 3)), ("b", _jobs(12, 4))]
        )
        assert _digest(agent) == GOLDEN_DIGESTS[name]
