"""Structured JSONL event tracer for the simulator and NN stack.

One :class:`Tracer` writes one JSON object per line to a sink file.
Three record families exist:

* **spans** — ``begin``/``end`` record pairs with a span id (``sid``)
  and parent id (``pid``), forming a tree.  The engine opens one span
  per scheduling instance; the NN stack opens spans around forward,
  backward and optimizer steps.
* **events** — instantaneous points (job start, node release, a
  reservation) attributed to the enclosing span via ``pid``.
* **counters** — named numeric samples for ad-hoc time series.

Every record carries a ``wall`` field (``time.perf_counter()``, a
duration-only monotonic clock — never the host date) so span durations
can be recovered; simulator records additionally carry the engine clock
in a ``t`` field.

Activation mirrors the PR 1 sanitizer contract:

* globally, via the ``REPRO_TRACE`` environment variable naming the
  output path (read once per process; see :func:`global_tracer`), or
* per engine, via ``Engine(trace=...)`` with a path or a
  :class:`Tracer`.

When no tracer is active the instrumented hot paths cost a single
``None`` check, and a traced run is bit-identical to an untraced one:
the tracer only appends to its sink and never reads or mutates
simulation, RNG or network state.

Reading a trace back::

    records = read_trace("trace.jsonl")
    roots = build_span_tree(records)

"""

from __future__ import annotations

import atexit
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO, Iterable

#: schema tag stamped into the first record of every trace file
TRACE_SCHEMA = "repro.trace/v1"


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars and other non-JSON types to plain Python."""
    for attr in ("item",):  # numpy scalars expose .item()
        fn = getattr(value, attr, None)
        if callable(fn):
            return fn()
    return str(value)


class Tracer:
    """Appends structured records to a JSONL sink.

    Parameters
    ----------
    sink:
        Path (opened for writing, truncating) or an open text file-like
        object (not closed by :meth:`close`).
    buffer_lines:
        Records are buffered and flushed to the sink every this many
        lines (and on :meth:`close`/:meth:`flush`), keeping the per-record
        cost to a ``json.dumps`` plus a list append.
    """

    __slots__ = ("_fh", "_owns_fh", "_buffer", "_buffer_lines",
                 "_next_sid", "_stack", "_closed")

    def __init__(self, sink: str | Path | IO[str], buffer_lines: int = 256) -> None:
        if buffer_lines <= 0:
            raise ValueError("buffer_lines must be positive")
        if isinstance(sink, (str, Path)):
            self._fh: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = sink
            self._owns_fh = False
        self._buffer: list[str] = []
        self._buffer_lines = buffer_lines
        self._next_sid = 1
        self._stack: list[int] = []
        self._closed = False
        self._write({"type": "meta", "schema": TRACE_SCHEMA})

    # -- record emission ---------------------------------------------------
    def _write(self, record: dict[str, Any]) -> None:
        self._buffer.append(json.dumps(record, default=_json_default))
        if len(self._buffer) >= self._buffer_lines:
            self.flush()

    def begin(self, name: str, **fields: Any) -> int:
        """Open a span; returns its id.  Close it with :meth:`end`."""
        sid = self._next_sid
        self._next_sid += 1
        record: dict[str, Any] = {
            "type": "begin",
            "name": name,
            "sid": sid,
            "pid": self._stack[-1] if self._stack else None,
            "wall": time.perf_counter(),
        }
        if fields:
            record.update(fields)
        self._write(record)
        self._stack.append(sid)
        return sid

    def end(self, sid: int) -> None:
        """Close the span ``sid`` (must be the innermost open span)."""
        if not self._stack or self._stack[-1] != sid:
            raise ValueError(
                f"span {sid} is not the innermost open span "
                f"(stack: {self._stack[-3:]})"
            )
        self._stack.pop()
        self._write({"type": "end", "sid": sid, "wall": time.perf_counter()})

    def span(self, name: str, **fields: Any) -> "_SpanContext":
        """Context manager opening a span around a ``with`` block."""
        return _SpanContext(self, name, fields)

    def event(self, name: str, **fields: Any) -> None:
        """Record an instantaneous event inside the current span."""
        record: dict[str, Any] = {
            "type": "event",
            "name": name,
            "pid": self._stack[-1] if self._stack else None,
            "wall": time.perf_counter(),
        }
        if fields:
            record.update(fields)
        self._write(record)

    def counter(self, name: str, value: float, **fields: Any) -> None:
        """Record a named numeric sample."""
        record: dict[str, Any] = {
            "type": "counter",
            "name": name,
            "value": value,
            "pid": self._stack[-1] if self._stack else None,
            "wall": time.perf_counter(),
        }
        if fields:
            record.update(fields)
        self._write(record)

    # -- lifecycle ----------------------------------------------------------
    def flush(self) -> None:
        """Write buffered records through to the sink.

        Safe to call on a closed tracer (a no-op), so unconditional
        flushes in ``finally`` blocks and at interpreter exit never
        raise on an already-closed sink.
        """
        if self._closed:
            return
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._fh.flush()

    def close(self) -> None:
        """Flush and (if this tracer opened the sink) close it."""
        if self._closed:
            return
        self.flush()
        if self._owns_fh:
            self._fh.close()
        self._closed = True

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close (flushing buffered records) — also when the body raised.

        Durability contract: a ``with Tracer(...)`` block never drops
        the buffered tail, whatever exception unwinds through it.
        """
        self.close()


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_fields", "_sid")

    def __init__(self, tracer: Tracer, name: str, fields: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._fields = fields
        self._sid = -1

    def __enter__(self) -> "_SpanContext":
        self._sid = self._tracer.begin(self._name, **self._fields)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.end(self._sid)


# -- global (environment-driven) tracer ---------------------------------------

_GLOBAL: Tracer | None = None
_GLOBAL_LOADED = False
_ATEXIT_REGISTERED = False


def _flush_global_tracer() -> None:
    """``atexit`` hook: persist whatever the global tracer buffered.

    Flushes (rather than closes) so late ``atexit`` callbacks that still
    emit records keep working; the interpreter closes the file handle.
    """
    if _GLOBAL is not None:
        _GLOBAL.flush()


def _register_atexit_flush() -> None:
    """Install the global-tracer ``atexit`` flush exactly once."""
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        _ATEXIT_REGISTERED = True
        atexit.register(_flush_global_tracer)


def global_tracer() -> "Tracer | None":
    """The process-wide tracer, or ``None`` when tracing is off.

    On first call the ``REPRO_TRACE`` environment variable is consulted:
    a non-empty value names the JSONL output path and activates tracing
    for every instrumented component in the process.  Subsequent calls
    return the cached result, so the disabled path costs one global
    lookup and a ``None`` check.

    The first activated tracer also registers an ``atexit`` flush, so a
    process that exits (or crashes out of) a traced run without calling
    :meth:`Tracer.close` still leaves a parseable trace on disk.
    """
    global _GLOBAL, _GLOBAL_LOADED
    if not _GLOBAL_LOADED:
        _GLOBAL_LOADED = True
        # sanctioned observability gate: selects whether a trace is
        # *written*; the traced run's behaviour is unchanged by REPRO_TRACE
        path = os.environ.get("REPRO_TRACE", "").strip()  # repro: noqa[ambient-env-read]
        if path:
            _GLOBAL = Tracer(path)
            _register_atexit_flush()
    return _GLOBAL


def set_global_tracer(tracer: "Tracer | None") -> "Tracer | None":
    """Install (or clear, with ``None``) the global tracer.

    Returns the previous tracer so tests can restore it.  Passing a
    tracer bypasses the ``REPRO_TRACE`` environment variable; passing
    ``None`` disables global tracing until the next explicit install
    (the environment variable is *not* re-read).
    """
    global _GLOBAL, _GLOBAL_LOADED
    previous = _GLOBAL if _GLOBAL_LOADED else None
    _GLOBAL = tracer
    _GLOBAL_LOADED = True
    if tracer is not None:
        _register_atexit_flush()
    return previous


# -- reading traces back -------------------------------------------------------

@dataclass
class Span:
    """One reconstructed span of a parsed trace.

    Attributes
    ----------
    name, sid, pid:
        Identity: span name, span id, parent span id (``None`` for roots).
    fields:
        Extra key/value pairs attached at ``begin`` time.
    wall_begin, wall_end:
        ``perf_counter`` readings; ``wall_end`` is ``None`` for spans the
        trace never closed (e.g. a crashed run).
    children, events, counters:
        Nested spans and the event/counter records attributed to this span.
    """

    name: str
    sid: int
    pid: int | None
    fields: dict[str, Any] = field(default_factory=dict)
    wall_begin: float = 0.0
    wall_end: float | None = None
    children: list["Span"] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    counters: list[dict[str, Any]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall-clock span duration in seconds (0.0 if never closed)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_begin

    def walk(self) -> "Iterable[Span]":
        """Yield this span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class TraceWarning(UserWarning):
    """A trace record was skipped during lenient (post-mortem) parsing."""


_META_KEYS = frozenset({"type", "name", "sid", "pid", "wall"})


def read_trace(path: str | Path, strict: bool = True) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into a list of record dicts.

    ``strict=True`` (the default) raises :class:`ValueError` on the
    first malformed line.  ``strict=False`` is the post-mortem mode:
    truncated or corrupt lines (a run killed mid-write) and non-object
    records are skipped with a :class:`TraceWarning` naming the line,
    so analysis still works on the surviving records.
    """
    records = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{line_no}: invalid trace line"
                    ) from exc
                warnings.warn(
                    f"{path}:{line_no}: skipping malformed trace line",
                    TraceWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(record, dict):
                if strict:
                    raise ValueError(
                        f"{path}:{line_no}: trace record is not an object"
                    )
                warnings.warn(
                    f"{path}:{line_no}: skipping non-object trace record",
                    TraceWarning,
                    stacklevel=2,
                )
                continue
            records.append(record)
    return records


def build_span_tree(records: Iterable[dict[str, Any]]) -> list[Span]:
    """Reconstruct the span forest of a parsed trace.

    Returns the root spans (those with no parent).  Events and counters
    are attached to their enclosing span; records emitted outside any
    span are dropped (they have no tree position).

    Post-mortem hardened: malformed records — a ``begin`` without a
    span id, an ``end`` for an unknown span, records that are not
    dicts — are skipped, so a tree can always be built from whatever a
    crashed run managed to write.
    """
    spans: dict[int, Span] = {}
    roots: list[Span] = []
    for record in records:
        if not isinstance(record, dict):
            continue
        rtype = record.get("type")
        if rtype == "begin":
            sid = record.get("sid")
            if not isinstance(sid, int):
                continue
            fields = {k: v for k, v in record.items() if k not in _META_KEYS}
            span = Span(
                name=str(record.get("name", "<unnamed>")),
                sid=sid,
                pid=record.get("pid"),
                fields=fields,
                wall_begin=record.get("wall", 0.0),
            )
            spans[span.sid] = span
            parent = spans.get(span.pid) if span.pid is not None else None
            if parent is not None:
                parent.children.append(span)
            else:
                roots.append(span)
        elif rtype == "end":
            sid = record.get("sid")
            span = spans.get(sid) if isinstance(sid, int) else None
            if span is not None:
                span.wall_end = record.get("wall")
        elif rtype in ("event", "counter"):
            pid = record.get("pid")
            span = spans.get(pid) if pid is not None else None
            if span is not None:
                if rtype == "event":
                    span.events.append(record)
                else:
                    span.counters.append(record)
    return roots
