#!/usr/bin/env python
"""Online adaptation to workload surges (the paper's §V-D / Fig 9).

A deployed DRAS agent keeps updating its network parameters during
operation, so when demand surges it re-tunes itself while static
policies (FCFS, Optimization) degrade.  This example replays an
8-week trace whose weeks 2 and 5 carry ~1.7-1.8x the normal load, and
prints the weekly average wait under a static FCFS, a *frozen* DRAS-PG
(online learning off) and an *adaptive* DRAS-PG (online learning on) —
all starting from the identical trained model.

Run::

    python examples/online_adaptation.py
"""

import numpy as np

from repro import DRASConfig, DRASPG, FCFSEasy, ThetaModel
from repro.rl import Trainer
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.metrics import SECONDS_PER_WEEK, weekly_series
from repro.workload import three_phase_curriculum

NODES = 128
WEEKLY_LOAD = (1.0, 0.9, 1.7, 1.0, 0.85, 1.8, 1.1, 1.0)


def build_surge_trace(model, rng):
    jobs = []
    for week, load in enumerate(WEEKLY_LOAD):
        jobs.extend(
            model.generate_span(
                SECONDS_PER_WEEK, rng,
                start=week * SECONDS_PER_WEEK, load_factor=load,
            )
        )
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs


def main() -> None:
    rng = np.random.default_rng(3)
    model = ThetaModel.scaled(NODES)
    train_trace = model.generate(1500, rng)

    config = DRASConfig.scaled(NODES, objective="capability", window=10)
    agent = DRASPG(config)
    phases = three_phase_curriculum(
        model, train_trace, rng,
        n_sampled=2, n_real=2, n_synthetic=6, jobs_per_set=300,
    )
    Trainer(agent, NODES).train(
        [(p.name, jobset) for p in phases for jobset in p.jobsets]
    )
    trained_state = agent.state_dict()

    trace = build_surge_trace(model, np.random.default_rng(99))
    print(f"surge trace: {len(trace)} jobs over {len(WEEKLY_LOAD)} weeks "
          f"(weeks 2 and 5 carry ~1.7-1.8x load)\n")

    frozen = DRASPG(config)
    frozen.load_state_dict(trained_state)
    frozen.name = "DRAS frozen"
    frozen.eval(online_learning=False)

    adaptive = DRASPG(config)
    adaptive.load_state_dict(trained_state)
    adaptive.name = "DRAS adaptive"
    adaptive.eval(online_learning=True)

    series = {}
    for scheduler in (FCFSEasy(), frozen, adaptive):
        result = Engine(
            Cluster(NODES), scheduler, [j.copy_fresh() for j in trace]
        ).run()
        series[scheduler.name] = weekly_series(result.finished_jobs)

    methods = list(series)
    print(f"{'week':>4s} {'load':>5s} " +
          " ".join(f"{m:>14s}" for m in methods))
    for week, load in enumerate(WEEKLY_LOAD):
        cells = []
        for m in methods:
            waits = series[m]["avg_wait"]
            value = waits[week] / 3600 if week < len(waits) else float("nan")
            cells.append(f"{value:13.2f}h")
        print(f"{week:4d} {load:5.2f} " + " ".join(cells))

    print("\nThe adaptive agent re-tunes during the surge weeks; compare its "
          "surge-week\nwaits against the frozen copy of the same model and "
          "against static FCFS.")


if __name__ == "__main__":
    main()
