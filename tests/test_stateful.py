"""Stateful property tests (hypothesis rule-based state machines).

These drive the cluster and wait queue through long random
allocate/release and submit/finish sequences, checking the class
invariants after every step — the kind of bookkeeping bugs (leaked
nodes, double releases, lost jobs) that unit tests rarely reach.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.sim.cluster import Cluster
from repro.sim.job import Job, JobState
from repro.sim.queue import WaitQueue

NODES = 16


class ClusterMachine(RuleBasedStateMachine):
    """Random allocate/release sequences against a 16-node cluster."""

    def __init__(self) -> None:
        super().__init__()
        self.cluster = Cluster(NODES)
        self.running: dict[int, Job] = {}
        self.clock = 0.0

    @rule(size=st.integers(1, NODES), walltime=st.floats(1.0, 1000.0))
    def allocate(self, size: int, walltime: float) -> None:
        job = Job(size=size, walltime=walltime, runtime=walltime,
                  submit_time=self.clock)
        if size <= self.cluster.available_nodes:
            nodes = self.cluster.allocate(job, self.clock)
            assert len(nodes) == size
            self.running[job.job_id] = job
        else:
            try:
                self.cluster.allocate(job, self.clock)
            except RuntimeError:
                pass
            else:
                raise AssertionError("oversubscription accepted")

    @precondition(lambda self: self.running)
    @rule(data=st.data())
    def release(self, data) -> None:
        job_id = data.draw(st.sampled_from(sorted(self.running)))
        job = self.running.pop(job_id)
        self.cluster.release(job)

    @rule(dt=st.floats(0.1, 100.0))
    def advance(self, dt: float) -> None:
        self.clock += dt

    @invariant()
    def accounting_consistent(self) -> None:
        used = sum(j.size for j in self.running.values())
        assert self.cluster.used_nodes == used
        assert self.cluster.available_nodes == NODES - used
        assert set(self.cluster.running_job_ids) == set(self.running)

    @invariant()
    def node_state_consistent(self) -> None:
        state = self.cluster.node_state(self.clock)
        assert int(state[:, 0].sum()) == self.cluster.available_nodes
        # busy nodes expose non-negative availability horizons
        assert (state[:, 1] >= 0).all()


class WaitQueueMachine(RuleBasedStateMachine):
    """Random submit/start/finish sequences with dependencies."""

    def __init__(self) -> None:
        super().__init__()
        self.queue = WaitQueue()
        self.waiting: set[int] = set()
        self.held: set[int] = set()
        self.finished: set[int] = set()
        self.all_jobs: dict[int, Job] = {}
        self._t = 0.0

    @rule(with_dep=st.booleans(), data=st.data())
    def submit(self, with_dep: bool, data) -> None:
        deps: tuple[int, ...] = ()
        if with_dep and self.all_jobs:
            parent = data.draw(st.sampled_from(sorted(self.all_jobs)))
            deps = (parent,)
        self._t += 1.0
        job = Job(size=1, walltime=10.0, runtime=10.0,
                  submit_time=self._t, dependencies=deps)
        self.queue.submit(job)
        self.all_jobs[job.job_id] = job
        if set(deps) <= self.finished:
            self.waiting.add(job.job_id)
        else:
            self.held.add(job.job_id)

    @precondition(lambda self: self.waiting)
    @rule(data=st.data())
    def start_and_finish(self, data) -> None:
        job_id = data.draw(st.sampled_from(sorted(self.waiting)))
        job = self.all_jobs[job_id]
        self.queue.remove(job)
        self.waiting.discard(job_id)
        job.state = JobState.FINISHED
        self.finished.add(job_id)
        self.queue.notify_finished(job)
        # releases propagate to dependents whose parents all finished
        released = {
            jid for jid in self.held
            if set(self.all_jobs[jid].dependencies) <= self.finished
        }
        self.held -= released
        self.waiting |= released

    @invariant()
    def partitions_match(self) -> None:
        assert {j.job_id for j in self.queue.waiting} == self.waiting
        assert {j.job_id for j in self.queue.held} == self.held
        assert self.queue.total_pending == len(self.waiting) + len(self.held)

    @invariant()
    def waiting_sorted_by_arrival(self) -> None:
        submits = [j.submit_time for j in self.queue.waiting]
        # arrival order is preserved for jobs that were never held;
        # released jobs are appended, so the list is not globally sorted —
        # but the *window* must always be a prefix
        window = self.queue.window(3)
        assert window == self.queue.waiting[:3]
        del submits


TestClusterMachine = ClusterMachine.TestCase
TestWaitQueueMachine = WaitQueueMachine.TestCase
TestClusterMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestWaitQueueMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
