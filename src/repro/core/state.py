"""State encoding (paper section III-A).

Each waiting job is a ``[2, 2]`` block with four features::

    [[size,     estimated runtime],
     [priority, queued time      ]]

Each node is a ``[1, 2]`` row: a binary availability flag and, for busy
nodes, the difference between the node's estimated available time and
the current time.  Job blocks and node rows concatenate into a
fixed-size matrix — ``[2W + N, 2]`` for the level networks (W jobs) and
``[2 + N, 2]`` for the DQL per-job network.

The paper feeds raw values; raw seconds and node counts differ by
orders of magnitude, so (like any practical implementation) we
normalize by the system size and a time scale.  Set ``normalize=False``
for the paper-literal encoding.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sim.cluster import Cluster
from repro.sim.job import Job


class StateEncoder:
    """Encodes jobs + cluster into network inputs.

    Parameters
    ----------
    num_nodes:
        System size ``N``.
    window:
        Window size ``W`` (jobs visible to the level networks).
    time_scale:
        Seconds used to normalize all time features (runtime estimates,
        queued times, node availability horizons).  A natural choice is
        the system's maximum job length.
    normalize:
        Disable to reproduce the paper-literal raw encoding.
    """

    def __init__(
        self,
        num_nodes: int,
        window: int,
        time_scale: float = 86400.0,
        normalize: bool = True,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.num_nodes = num_nodes
        self.window = window
        self.time_scale = time_scale
        self.normalize = normalize

    # -- shapes ---------------------------------------------------------------
    @property
    def pg_rows(self) -> int:
        """Input rows of the window network: ``2W + N``."""
        return 2 * self.window + self.num_nodes

    @property
    def dql_rows(self) -> int:
        """Input rows of the per-job network: ``2 + N``."""
        return 2 + self.num_nodes

    # -- pieces ---------------------------------------------------------------
    def job_block(self, job: Job, now: float,
                  capacity: int | None = None) -> np.ndarray:
        """The ``[2, 2]`` feature block of one job.

        ``capacity`` is the live node count used to normalize the size
        feature; under fault injection the encoders pass the cluster's
        current up-node count so a job's relative footprint reflects the
        capacity that actually exists.  Defaults to the static ``N``.
        """
        size = job.size
        walltime = job.walltime
        queued = job.queued_time(now)
        if self.normalize:
            size = size / max(1, capacity if capacity is not None
                              else self.num_nodes)
            walltime = walltime / self.time_scale
            queued = queued / self.time_scale
        return np.array(
            [[size, walltime], [float(job.priority), queued]], dtype=np.float64
        )

    def node_rows(self, cluster: Cluster, now: float) -> np.ndarray:
        """The ``[N, 2]`` node-state matrix."""
        state = cluster.node_state(now)
        if self.normalize:
            state = state.copy()
            state[:, 1] /= self.time_scale
        return state

    # -- full encodings ----------------------------------------------------------
    def encode_window(
        self, jobs: Sequence[Job], cluster: Cluster, now: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """PG-style input: ``([2W + N, 2] matrix, [W] validity mask)``.

        When fewer than ``W`` jobs are waiting, the remaining job blocks
        are zero and masked out; the agent rescales the valid action
        probabilities (§III-B).
        """
        if len(jobs) > self.window:
            raise ValueError(
                f"{len(jobs)} jobs exceed the window size {self.window}"
            )
        x = np.zeros((self.pg_rows, 2), dtype=np.float64)
        mask = np.zeros(self.window, dtype=bool)
        capacity = cluster.up_nodes
        for i, job in enumerate(jobs):
            x[2 * i : 2 * i + 2] = self.job_block(job, now, capacity)
            mask[i] = True
        x[2 * self.window :] = self.node_rows(cluster, now)
        return x, mask

    def encode_windows(
        self, windows: Sequence[Sequence[Job]], cluster: Cluster, now: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack :meth:`encode_window` for many windows: batch-first.

        Returns ``([B, 2W + N, 2] observations, [B, W] validity masks)``
        for ``B = len(windows)`` — the obs matrix a batched
        ``score_window`` consumes in one forward pass.  The node rows
        are identical across the batch (one snapshot of the same
        cluster at the same instant), so they are computed once and
        broadcast.  A single decision is the ``B = 1`` case; agents
        route every window scoring through this batched encoding rather
        than reshaping per decision.
        """
        if not windows:
            raise ValueError("empty window batch")
        window = self.window
        x = np.zeros((len(windows), self.pg_rows, 2), dtype=np.float64)
        mask = np.zeros((len(windows), window), dtype=bool)
        capacity = cluster.up_nodes
        nodes = self.node_rows(cluster, now)
        for b, jobs in enumerate(windows):
            if len(jobs) > window:
                raise ValueError(
                    f"{len(jobs)} jobs exceed the window size {window}"
                )
            for i, job in enumerate(jobs):
                x[b, 2 * i : 2 * i + 2] = self.job_block(job, now, capacity)
                mask[b, i] = True
            x[b, 2 * window :] = nodes
        return x, mask

    def encode_job(self, job: Job, cluster: Cluster, now: float) -> np.ndarray:
        """DQL-style input for one job: ``[2 + N, 2]``."""
        x = np.empty((self.dql_rows, 2), dtype=np.float64)
        x[:2] = self.job_block(job, now, cluster.up_nodes)
        x[2:] = self.node_rows(cluster, now)
        return x

    def encode_jobs_batch(
        self, jobs: Sequence[Job], cluster: Cluster, now: float
    ) -> np.ndarray:
        """Stack :meth:`encode_job` for many jobs: ``[len(jobs), 2+N, 2]``.

        The node rows are identical across the batch, so they are
        computed once and broadcast.
        """
        if not jobs:
            raise ValueError("empty job batch")
        batch = np.empty((len(jobs), self.dql_rows, 2), dtype=np.float64)
        nodes = self.node_rows(cluster, now)
        capacity = cluster.up_nodes
        for i, job in enumerate(jobs):
            batch[i, :2] = self.job_block(job, now, capacity)
            batch[i, 2:] = nodes
        return batch
