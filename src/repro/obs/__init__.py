"""Observability layer: structured tracing, metrics, and run manifests.

``repro.obs`` gives every long simulation and training run three kinds
of visibility, all designed around the same contract as the PR 1
sanitizer: **disabled-path cost is one boolean/None check**, and an
instrumented run is bit-identical to an uninstrumented one (the layer
only ever *observes* — it never touches simulation or RNG state).

* :mod:`repro.obs.trace` — a near-zero-overhead structured event tracer
  writing JSONL spans/counters/events.  Activate globally with
  ``REPRO_TRACE=/path/to/trace.jsonl`` or per-engine with
  ``Engine(trace=...)``.  The engine emits scheduler-decision spans and
  allocate/release/backfill events; the NN stack emits
  forward/backward/optimizer-step spans.
* :mod:`repro.obs.metrics` — lightweight always-on counters, gauges and
  wall-clock timers (with EMA smoothing) grouped in a
  :class:`~repro.obs.metrics.MetricsRegistry`, exposed from
  :class:`~repro.sim.engine.Engine`, :class:`~repro.rl.trainer.Trainer`
  and every scheduler.
* :mod:`repro.obs.manifest` — :class:`~repro.obs.manifest.RunManifest`
  records what produced a result file: seed, git SHA, configuration,
  workload-model parameters and summary metrics.  Manifests with the
  same inputs are identical minus timestamps.
* :mod:`repro.obs.bench` — the perf-benchmark harness behind
  ``python -m repro bench``, writing ``BENCH_sim.json`` /
  ``BENCH_nn.json`` regression baselines.

See ``docs/observability.md`` and ``docs/benchmarks.md`` for usage.
"""

from __future__ import annotations

from repro.obs.manifest import RunManifest, describe_workload, git_sha
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.trace import (
    Span,
    Tracer,
    build_span_tree,
    global_tracer,
    read_trace,
    set_global_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "Timer",
    "Tracer",
    "build_span_tree",
    "describe_workload",
    "git_sha",
    "global_tracer",
    "read_trace",
    "set_global_tracer",
]
