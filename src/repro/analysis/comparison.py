"""Method-comparison helpers used by the figure/table experiments.

The paper's Fig 6 Kiviat graphs plot, for each method, the *reciprocal*
of average wait, maximum wait, average slowdown and average response
time, plus the system utilization, all normalized to [0, 1] where 1 is
the best method and 0 the worst.  :func:`kiviat_normalize` implements
exactly that transform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.cluster import Cluster
from repro.sim.engine import Engine, SimulationResult
from repro.sim.job import Job, JobState
from repro.sim.metrics import ModeBreakdown, RunMetrics


@dataclass
class MethodResult:
    """Everything one evaluated method produced."""

    name: str
    result: SimulationResult
    metrics: RunMetrics
    modes: ModeBreakdown

    @property
    def jobs(self) -> list[Job]:
        return self.result.finished_jobs


def evaluate_method(
    scheduler,
    jobs: list[Job],
    num_nodes: int,
    observers=(),
    slowdown_bound: float = 0.0,
) -> MethodResult:
    """Run one scheduler over a fresh copy of ``jobs`` and summarize."""
    engine = Engine(
        Cluster(num_nodes),
        scheduler,
        [j.copy_fresh() for j in jobs],
        observers=list(observers),
    )
    result = engine.run()
    return MethodResult(
        name=scheduler.name,
        result=result,
        metrics=RunMetrics.from_result(result, slowdown_bound=slowdown_bound),
        modes=ModeBreakdown.from_jobs(result.jobs),
    )


#: Fig 6 metric set: (label, extractor, higher_is_better)
KIVIAT_METRICS: tuple[tuple[str, str, bool], ...] = (
    ("1/avg wait", "avg_wait", False),
    ("1/max wait", "max_wait", False),
    ("1/avg slowdown", "avg_slowdown", False),
    ("1/avg response", "avg_response", False),
    ("utilization", "utilization", True),
)


def kiviat_normalize(results: list[MethodResult]) -> dict[str, dict[str, float]]:
    """Per-method normalized Kiviat values (Fig 6).

    For lower-is-better metrics the reciprocal is taken first; then all
    values are min-max normalized across methods so 1 is the best and 0
    the worst.  Returns ``{method: {metric_label: value}}``.
    """
    if not results:
        raise ValueError("no results to normalize")
    out: dict[str, dict[str, float]] = {r.name: {} for r in results}
    for label, attr, higher_better in KIVIAT_METRICS:
        raw = np.array([getattr(r.metrics, attr) for r in results], dtype=np.float64)
        if not higher_better:
            raw = 1.0 / np.maximum(raw, 1e-12)
        lo, hi = raw.min(), raw.max()
        span = hi - lo
        for r, v in zip(results, raw):
            out[r.name][label] = float((v - lo) / span) if span > 0 else 1.0
    return out


def kiviat_area(values: dict[str, float]) -> float:
    """Area of the Kiviat polygon — "the larger the area, the better".

    Vertices are placed on equally-spaced spokes; the area is the sum of
    the triangle areas between consecutive spokes.
    """
    v = np.array(list(values.values()), dtype=np.float64)
    n = v.size
    if n < 3:
        raise ValueError("a Kiviat polygon needs at least 3 metrics")
    angle = 2 * np.pi / n
    return float(0.5 * np.sin(angle) * np.sum(v * np.roll(v, -1)))


def starvation_summary(
    results: list[MethodResult],
    large_job_threshold: int,
    starvation_days: float = 30.0,
) -> dict[str, dict[str, float]]:
    """Large-job starvation indicators per method (Fig 7 analysis).

    Reports each method's maximum wait (days), the mean wait of large
    jobs versus small jobs (hours) and the count of jobs waiting longer
    than ``starvation_days``.
    """
    out: dict[str, dict[str, float]] = {}
    for r in results:
        finished = [j for j in r.result.jobs if j.state is JobState.FINISHED]
        large = [j.wait_time for j in finished if j.size >= large_job_threshold]
        small = [j.wait_time for j in finished if j.size < large_job_threshold]
        waits = [j.wait_time for j in finished]
        out[r.name] = {
            "max_wait_days": max(waits, default=0.0) / 86400.0,
            "large_avg_wait_h": float(np.mean(large)) / 3600.0 if large else 0.0,
            "small_avg_wait_h": float(np.mean(small)) / 3600.0 if small else 0.0,
            "starved_jobs": float(
                sum(1 for w in waits if w > starvation_days * 86400.0)
            ),
        }
    return out
