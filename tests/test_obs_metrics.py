"""Metrics instruments and the registries exposed by engine/trainer/schedulers."""

import numpy as np
import pytest

from repro.obs.metrics import (
    TIMER_HIST_EDGES,
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
)
from repro.schedulers.fcfs import FCFSEasy
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.workload.models import ThetaModel


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_tracks_extremes(self):
        g = Gauge()
        for v in (3.0, -1.0, 7.0):
            g.set(v)
        assert (g.value, g.min, g.max, g.samples) == (7.0, -1.0, 7.0, 3)

    def test_timer_mean_and_ema(self):
        t = Timer(ema_alpha=0.5)
        t.observe(2.0)
        assert t.ema == 2.0  # first sample seeds the EMA
        t.observe(4.0)
        assert t.ema == pytest.approx(3.0)
        assert t.mean == pytest.approx(3.0)
        assert t.last == 4.0 and t.count == 2

    def test_timer_context_manager(self):
        t = Timer()
        with t.time():
            pass
        assert t.count == 1 and t.total >= 0.0

    def test_timer_alpha_validated(self):
        with pytest.raises(ValueError):
            Timer(ema_alpha=0.0)


class TestTimerHistogram:
    def test_bins_cover_underflow_interior_and_overflow(self):
        t = Timer()
        t.observe(0.0)        # underflow (<= 1 microsecond)
        t.observe(1e-7)       # underflow
        t.observe(0.01)       # interior
        t.observe(1e5)        # overflow (> 100 s)
        assert t.bins[0] == 2 and t.bins[-1] == 1
        assert sum(t.bins) == t.count == 4

    def test_interior_sample_lands_between_its_edges(self):
        t = Timer()
        t.observe(0.01)
        index = next(i for i, c in enumerate(t.bins) if c)
        assert TIMER_HIST_EDGES[index - 1] <= 0.01 < TIMER_HIST_EDGES[index]

    def test_quantiles_are_order_independent(self):
        samples = [1e-5, 3e-4, 0.002, 0.002, 0.05, 1.0, 9.0, 80.0]
        forward, backward = Timer(), Timer()
        for s in samples:
            forward.observe(s)
        for s in reversed(samples):
            backward.observe(s)
        assert forward.bins == backward.bins
        for q in (0.5, 0.9, 0.99):
            assert forward.quantile(q) == backward.quantile(q)

    def test_quantile_resolution_is_the_bin(self):
        t = Timer()
        for _ in range(100):
            t.observe(0.01)
        # every rank lands in the one occupied bin: its geometric
        # midpoint, within the 4-bins-per-decade resolution of the value
        assert t.p50 == t.p90 == t.p99
        assert t.p50 == pytest.approx(0.01, rel=0.35)

    def test_p99_separates_the_tail(self):
        t = Timer()
        for _ in range(99):
            t.observe(0.001)
        for _ in range(5):
            t.observe(10.0)
        assert t.p50 == pytest.approx(0.001, rel=0.35)
        assert t.p99 == pytest.approx(10.0, rel=0.35)
        assert t.p99 > 100 * t.p50

    def test_empty_timer_quantile_is_zero(self):
        assert Timer().quantile(0.5) == 0.0

    def test_reset_clears_the_bins(self):
        t = Timer()
        t.observe(0.5)
        t.reset()
        assert sum(t.bins) == 0 and t.p99 == 0.0

    def test_snapshot_exposes_quantiles_and_a_bin_copy(self):
        reg = MetricsRegistry()
        timer = reg.timer("t")
        timer.observe(0.02)
        snap = reg.snapshot()["t"]
        assert snap["p50_s"] == timer.p50
        assert snap["p90_s"] == timer.p90
        assert snap["p99_s"] == timer.p99
        assert snap["hist_counts"] == timer.bins
        assert len(snap["hist_counts"]) == len(TIMER_HIST_EDGES) + 1
        snap["hist_counts"][0] += 1            # a copy, not the live list
        assert snap["hist_counts"] != timer.bins


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.timer("t").observe(0.25)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"]["value"] == 1.5 and snap["g"]["samples"] == 1
        assert snap["t"]["count"] == 1 and snap["t"]["total_s"] == 0.25

    def test_unsampled_gauge_has_null_extremes(self):
        reg = MetricsRegistry()
        reg.gauge("g")
        snap = reg.snapshot()
        assert snap["g"]["min"] is None and snap["g"]["max"] is None

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []


class TestWiredRegistries:
    def _run(self, n_jobs=80, nodes=32):
        model = ThetaModel.scaled(nodes)
        jobs = model.generate(n_jobs, np.random.default_rng(0))
        scheduler = FCFSEasy()
        engine = Engine(Cluster(nodes), scheduler, jobs)
        result = engine.run()
        return engine, scheduler, result

    def test_engine_metrics_populated(self):
        engine, _, result = self._run()
        snap = engine.metrics.snapshot()
        assert snap["engine.events_submit"] == len(result.jobs)
        assert snap["engine.events_finish"] == len(result.finished_jobs)
        assert snap["engine.jobs_started"] == len(result.finished_jobs)
        assert snap["engine.instances"] == result.num_instances
        assert snap["engine.schedule_s"]["count"] == result.num_instances

    def test_scheduler_metrics_populated_by_engine(self):
        _, scheduler, result = self._run()
        snap = scheduler.metrics.snapshot()
        assert snap["instances"] == result.num_instances
        assert snap["schedule_s"]["count"] == result.num_instances

    def test_trainer_metrics(self):
        from repro.core.config import DRASConfig
        from repro.core.dras_pg import DRASPG
        from repro.rl.trainer import Trainer
        from tests.conftest import make_job

        config = DRASConfig(num_nodes=16, window=4, hidden1=16, hidden2=8,
                            seed=0, objective="capability", time_scale=1000.0)
        agent = DRASPG(config)
        jobs = [make_job(size=4, walltime=50.0, submit=float(i * 10))
                for i in range(8)]
        trainer = Trainer(agent, 16, validation_jobs=jobs[:4])
        trainer.run_episode(jobs)
        trainer.validate()
        snap = trainer.metrics.snapshot()
        assert snap["train.episodes"] == 1
        assert snap["train.validations"] == 1
        assert snap["train.episode_s"]["count"] == 1


class TestResetSemantics:
    def test_reset_values_keeps_bindings(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        gauge = reg.gauge("g")
        timer = reg.timer("t")
        counter.inc(5)
        gauge.set(2.0)
        timer.observe(0.5)
        reg.reset_values()
        # names stay bound to the SAME objects, now zeroed
        assert reg.counter("c") is counter and counter.value == 0
        assert reg.gauge("g") is gauge and gauge.samples == 0
        assert reg.timer("t") is timer and timer.count == 0
        # cached references keep recording after the reset
        counter.inc()
        assert reg.snapshot()["c"] == 1

    def test_reset_values_zeroes_aliased_instrument_once(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        shared = a.timer("schedule_s")
        b.alias("schedule_s", shared)
        shared.observe(1.0)
        b.reset_values()
        # both registries see the same zeroed object
        assert a.timer("schedule_s").count == 0
        assert b.snapshot()["schedule_s"]["count"] == 0

    def test_alias_rejects_non_instrument(self):
        with pytest.raises(TypeError, match="not an instrument"):
            MetricsRegistry().alias("x", object())

    def test_scheduler_reset_between_runs(self):
        """reset_metrics between runs: counts reflect the second run only,
        and the engine alias survives because instruments are zeroed in
        place rather than dropped."""
        model = ThetaModel.scaled(32)
        scheduler = FCFSEasy()
        for expected_runs in (1, 2):
            jobs = model.generate(60, np.random.default_rng(expected_runs))
            engine = Engine(Cluster(32), scheduler, jobs)
            result = engine.run()
            snap = scheduler.metrics.snapshot()
            assert snap["instances"] == result.num_instances
            scheduler.reset_metrics()
        assert scheduler.metrics.snapshot()["instances"] == 0

    def test_reset_metrics_before_first_access_is_noop(self):
        scheduler = FCFSEasy()
        scheduler.__dict__.pop("_metrics", None)
        scheduler.reset_metrics()  # must not create the registry
        assert getattr(scheduler, "_metrics", None) is None

    def test_same_engine_rerun_accumulates_until_reset(self):
        model = ThetaModel.scaled(32)
        scheduler = FCFSEasy()
        jobs = model.generate(40, np.random.default_rng(0))
        engine = Engine(Cluster(32), scheduler, jobs)
        result = engine.run()
        first = engine.metrics.snapshot()["engine.instances"]
        assert first == result.num_instances
        engine.metrics.reset_values()
        assert engine.metrics.snapshot()["engine.instances"] == 0
        # the engine's cached instrument refs still work after zeroing
        assert scheduler.metrics.snapshot()["instances"] == 0
