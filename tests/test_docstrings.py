"""Docstring audit for the core ``repro`` packages.

Audited: ``repro.sim``, ``repro.obs``, ``repro.check``,
``repro.workload``, ``repro.nn``, ``repro.core``.

Every public module, class, function, and method in the audited
packages must carry a docstring.  This is a lint-adjacent
test: it walks the source with :mod:`ast` rather than importing, so it
sees exactly what a reader sees and cannot be fooled by runtime
attribute injection.

Exemptions (mirroring common docstring-lint conventions):

- names starting with ``_`` (private) and all dunders,
- ``@overload`` stubs and bodies that are a bare ``...``/``pass``
  (Protocol / abstract placeholders),
- property *setters* (the getter documents the attribute).
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
AUDITED_PACKAGES = ("sim", "obs", "check", "workload", "nn", "core")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_stub(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True for ellipsis/pass-only bodies (Protocol or abstract stubs)."""
    body = node.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ) and isinstance(body[0].value.value, str):
        body = body[1:]  # skip an existing docstring
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _exempt_function(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    if not _is_public(node.name) or node.name.startswith("__"):
        return True
    decorators = _decorator_names(node)
    if "overload" in decorators or "setter" in decorators:
        return True
    return _is_stub(node)


def _missing_in_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    rel = path.relative_to(SRC.parent)
    missing: list[str] = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{rel}:1 module")

    def visit(scope: ast.AST, prefix: str) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                if _is_public(node.name):
                    if ast.get_docstring(node) is None:
                        missing.append(
                            f"{rel}:{node.lineno} class {prefix}{node.name}"
                        )
                    visit(node, f"{prefix}{node.name}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _exempt_function(node):
                    if ast.get_docstring(node) is None:
                        missing.append(
                            f"{rel}:{node.lineno} def {prefix}{node.name}"
                        )

    visit(tree, "")
    return missing


def test_public_api_has_docstrings():
    """No public name in an audited package may lack a docstring."""
    missing: list[str] = []
    for package in AUDITED_PACKAGES:
        for path in sorted((SRC / package).rglob("*.py")):
            missing.extend(_missing_in_file(path))
    assert not missing, (
        "public names missing docstrings:\n  " + "\n  ".join(missing)
    )
