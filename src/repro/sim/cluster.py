"""Node pool management.

The cluster keeps, for every node, the job occupying it and the node's
*estimated available time* (job start + user walltime estimate).  The
paper encodes each node as a ``[1, 2]`` vector: a binary availability
flag and the difference between the estimated available time and the
current time (section III-A).  We store these as NumPy arrays so the
state encoding, the shadow-time computation and utilization accounting
are all vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.check import sanitize as _san
from repro.sim.job import Job

_FREE = -1


class Cluster:
    """A pool of ``num_nodes`` identical compute nodes.

    Nodes are interchangeable (no topology) — allocation picks the
    lowest-indexed free nodes, which matches the level of detail of the
    paper's simulator.

    ``sanitize`` activates node-conservation checks after every
    allocate/release (``None`` follows the ``REPRO_SANITIZE`` env var).
    """

    def __init__(self, num_nodes: int, sanitize: bool | None = None) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self._sanitize = sanitize
        #: job id occupying each node, ``-1`` when free
        self._job_of = np.full(self.num_nodes, _FREE, dtype=np.int64)
        #: estimated available time of each node (0 when free)
        self._avail_at = np.zeros(self.num_nodes, dtype=np.float64)
        #: job id -> allocated node indices
        self._alloc: dict[int, np.ndarray] = {}
        #: running node-seconds of *actual* useful work accumulated by
        #: finished jobs, used by utilization accounting.
        self._used_node_seconds = 0.0

    @property
    def sanitize_active(self) -> bool:
        """Whether invariant checks run (explicit flag, else env var)."""
        if self._sanitize is not None:
            return self._sanitize
        return _san.sanitizer_enabled()

    # -- queries -------------------------------------------------------------
    @property
    def available_nodes(self) -> int:
        """Number of currently free nodes."""
        return int(np.count_nonzero(self._job_of == _FREE))

    @property
    def used_nodes(self) -> int:
        """Number of currently occupied nodes (``N_used`` in Eq. (1))."""
        return self.num_nodes - self.available_nodes

    @property
    def running_job_ids(self) -> list[int]:
        """IDs of all currently running jobs, in allocation order."""
        return list(self._alloc.keys())

    def is_running(self, job_id: int) -> bool:
        """Whether ``job_id`` currently holds an allocation."""
        return job_id in self._alloc

    def nodes_of(self, job_id: int) -> np.ndarray:
        """Node indices allocated to a running job."""
        return self._alloc[job_id].copy()

    def can_fit(self, size: int) -> bool:
        """Whether ``size`` nodes could be allocated right now."""
        return size <= self.available_nodes

    # -- paper state encoding --------------------------------------------------
    def node_state(self, now: float) -> np.ndarray:
        """Per-node ``[N, 2]`` state matrix (paper section III-A).

        Column 0 is the binary availability flag (1 free / 0 busy);
        column 1 is ``estimated_available_time - now`` for busy nodes and
        0 for free nodes.
        """
        free = self._job_of == _FREE
        state = np.zeros((self.num_nodes, 2), dtype=np.float64)
        state[:, 0] = free.astype(np.float64)
        remaining = self._avail_at - now
        state[~free, 1] = np.maximum(remaining[~free], 0.0)
        return state

    def estimated_release_times(self, now: float) -> np.ndarray:
        """Sorted estimated release times of busy nodes (>= ``now``).

        This is the input to the EASY shadow-time computation: assuming
        every running job occupies its nodes until its walltime estimate,
        when does each busy node come free?
        """
        busy = self._job_of != _FREE
        times = np.maximum(self._avail_at[busy], now)
        times.sort()
        return times

    def shadow_time(self, size: int, now: float) -> float:
        """Earliest time at which ``size`` nodes are expected to be free.

        Uses walltime estimates of running jobs (jobs can finish early,
        in which case the actual availability is sooner).  Returns
        ``now`` when the job already fits.
        """
        if size > self.num_nodes:
            raise ValueError(
                f"job size {size} exceeds cluster size {self.num_nodes}"
            )
        free = self.available_nodes
        if size <= free:
            return now
        releases = self.estimated_release_times(now)
        # After the k-th busy node releases, free + k + 1 nodes are free.
        needed = size - free
        return float(releases[needed - 1])

    def free_nodes_at(self, when: float, now: float) -> int:
        """Expected number of free nodes at time ``when`` (``when >= now``)."""
        releases = self.estimated_release_times(now)
        return self.available_nodes + int(np.searchsorted(releases, when, side="right"))

    # -- allocation -------------------------------------------------------------
    def allocate(self, job: Job, now: float) -> np.ndarray:
        """Assign the lowest-indexed free nodes to ``job``.

        Returns the allocated node indices.  Raises if the job does not
        fit or is already running.
        """
        if job.job_id in self._alloc:
            raise RuntimeError(f"job {job.job_id} already allocated")
        free_idx = np.flatnonzero(self._job_of == _FREE)
        if job.size > free_idx.size:
            raise RuntimeError(
                f"job {job.job_id} needs {job.size} nodes, only {free_idx.size} free"
            )
        chosen = free_idx[: job.size]
        self._job_of[chosen] = job.job_id
        self._avail_at[chosen] = now + job.walltime
        self._alloc[job.job_id] = chosen
        if self.sanitize_active:
            _san.check_node_conservation(self, f"allocate(job {job.job_id})")
        return chosen.copy()

    def release(self, job: Job) -> None:
        """Free the nodes held by ``job`` and account its useful work."""
        try:
            nodes = self._alloc.pop(job.job_id)
        except KeyError:
            raise RuntimeError(f"job {job.job_id} is not allocated") from None
        self._job_of[nodes] = _FREE
        self._avail_at[nodes] = 0.0
        self._used_node_seconds += job.node_seconds
        if self.sanitize_active:
            _san.check_node_conservation(self, f"release(job {job.job_id})")

    # -- utilization accounting ----------------------------------------------
    def used_node_seconds(self, running_jobs: dict[int, Job] | None = None,
                          now: float | None = None) -> float:
        """Node-seconds of useful work completed so far.

        If ``running_jobs`` and ``now`` are given, partial work of
        currently running jobs is included.
        """
        total = self._used_node_seconds
        if running_jobs is not None and now is not None:
            for job_id in self._alloc:
                job = running_jobs[job_id]
                assert job.start_time is not None
                total += job.size * max(0.0, min(now, job.start_time + job.runtime)
                                        - job.start_time)
        return total

    def reset(self) -> None:
        """Return the cluster to the all-idle initial state."""
        self._job_of.fill(_FREE)
        self._avail_at.fill(0.0)
        self._alloc.clear()
        self._used_node_seconds = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(nodes={self.num_nodes}, free={self.available_nodes}, "
            f"running={len(self._alloc)})"
        )
