"""Trace analytics: rollups, latency histograms, timelines, diffs.

The consumption half of the tracer (:mod:`repro.obs.trace`): where
``read_trace``/``build_span_tree`` reconstruct *what happened*, this
module answers *where did the time go* and *what changed*:

* :func:`rollup_spans` — per-span-name time rollups (count, cumulative
  and exclusive wall time) over a span forest;
* :func:`decision_latencies` / :func:`latency_histogram` — scheduler
  decision-latency distribution from ``engine.instance`` spans;
* :func:`utilization_timeline` — node-occupancy step series
  reconstructed from ``engine.allocate``/``engine.release`` events (in
  simulated time, so it is exact and machine-independent);
* :func:`diff_manifests` — field-level diff of two run manifests for
  regression triage (volatile fields excluded);
* :func:`summarize_trace` / :func:`format_trace_summary` — one-call
  triage of a trace file, also exposed as
  ``python -m repro trace summarize <path>``.

Everything here is read-only post-processing: it parses artifacts that
already exist and never touches simulator, RNG or network state.  All
trace parsing is lenient (``strict=False``) so the same entry points
work on traces from crashed runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.manifest import VOLATILE_FIELDS, RunManifest
from repro.obs.trace import Span, build_span_tree, read_trace


# -- span rollups --------------------------------------------------------------

@dataclass(frozen=True)
class SpanRollup:
    """Aggregate wall-time statistics of one span name.

    ``total_s`` is cumulative (includes child spans); ``self_s``
    excludes closed child spans.  ``unclosed`` counts spans the trace
    never ended — a crashed or truncated run.
    """

    name: str
    count: int
    total_s: float
    self_s: float
    unclosed: int

    @property
    def mean_s(self) -> float:
        """Mean cumulative seconds per closed span."""
        closed = self.count - self.unclosed
        return self.total_s / closed if closed > 0 else 0.0


def rollup_spans(roots: Iterable[Span]) -> list[SpanRollup]:
    """Per-span-name rollup over a span forest, longest total first."""
    count: dict[str, int] = {}
    total: dict[str, float] = {}
    self_s: dict[str, float] = {}
    unclosed: dict[str, int] = {}
    for root in roots:
        for span in root.walk():
            count[span.name] = count.get(span.name, 0) + 1
            if span.wall_end is None:
                unclosed[span.name] = unclosed.get(span.name, 0) + 1
                continue
            child_time = sum(c.duration for c in span.children
                             if c.wall_end is not None)
            total[span.name] = total.get(span.name, 0.0) + span.duration
            self_s[span.name] = self_s.get(span.name, 0.0) + (
                span.duration - child_time
            )
    return sorted(
        (
            SpanRollup(
                name=name,
                count=count[name],
                total_s=total.get(name, 0.0),
                self_s=self_s.get(name, 0.0),
                unclosed=unclosed.get(name, 0),
            )
            for name in count
        ),
        key=lambda r: (-r.total_s, r.name),
    )


# -- latency histograms --------------------------------------------------------

@dataclass(frozen=True)
class Histogram:
    """A histogram plus the summary order statistics of its samples."""

    edges: tuple[float, ...]       #: ``len(counts) + 1`` bin boundaries
    counts: tuple[int, ...]
    n: int
    min: float
    max: float
    mean: float
    p50: float
    p90: float
    p99: float

    def as_dict(self) -> dict[str, Any]:
        """The histogram as a JSON-ready dict."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "n": self.n,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def latency_histogram(values: Iterable[float], bins: int = 12) -> Histogram:
    """Log-spaced histogram of positive latency samples.

    Zero/negative samples are clamped into the smallest bin.  With no
    samples (or a degenerate single value) the histogram collapses to
    one bin so downstream rendering never divides by zero.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return Histogram((0.0, 1.0), (0,), 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    lo, hi = ordered[0], ordered[-1]
    mean = sum(ordered) / len(ordered)
    stats = dict(
        n=len(ordered), min=lo, max=hi, mean=mean,
        p50=_percentile(ordered, 0.50),
        p90=_percentile(ordered, 0.90),
        p99=_percentile(ordered, 0.99),
    )
    pos_lo = max(lo, 1e-9)
    pos_hi = max(hi, pos_lo)
    if pos_hi <= pos_lo * (1.0 + 1e-12):
        return Histogram((pos_lo, pos_hi * 1.0000001), (len(ordered),), **stats)
    log_lo, log_hi = math.log(pos_lo), math.log(pos_hi)
    edges = tuple(
        math.exp(log_lo + (log_hi - log_lo) * i / bins) for i in range(bins + 1)
    )
    counts = [0] * bins
    for v in ordered:
        x = max(v, pos_lo)
        i = int((math.log(x) - log_lo) / (log_hi - log_lo) * bins)
        counts[min(max(i, 0), bins - 1)] += 1
    return Histogram(edges, tuple(counts), **stats)


def decision_latencies(roots: Iterable[Span]) -> list[float]:
    """Closed ``engine.instance`` span durations, in record order."""
    out = []
    for root in roots:
        for span in root.walk():
            if span.name == "engine.instance" and span.wall_end is not None:
                out.append(span.duration)
    return out


# -- utilization timeline ------------------------------------------------------

def utilization_timeline(
    records: Iterable[Mapping[str, Any]],
) -> list[tuple[float, int]]:
    """Busy-node step series from allocate/release events.

    Returns ``(t, busy_nodes)`` points in simulated time — one per
    engine timestamp at which occupancy changed.  A healthy complete
    run ends at 0 busy nodes; a truncated trace ends wherever the
    record stream stops (still useful for post-mortem).
    """
    busy = 0
    timeline: list[tuple[float, int]] = []
    for record in records:
        if not isinstance(record, Mapping) or record.get("type") != "event":
            continue
        name = record.get("name")
        size = record.get("size")
        t = record.get("t")
        if not isinstance(size, (int, float)) or not isinstance(t, (int, float)):
            continue
        if name == "engine.allocate":
            busy += int(size)
        elif name == "engine.release":
            busy -= int(size)
        else:
            continue
        if timeline and timeline[-1][0] == t:
            timeline[-1] = (float(t), busy)
        else:
            timeline.append((float(t), busy))
    return timeline


def mean_utilization(
    timeline: Sequence[tuple[float, int]], num_nodes: int
) -> float:
    """Time-weighted mean occupancy fraction of a step series."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if len(timeline) < 2:
        return 0.0
    node_seconds = 0.0
    for (t0, busy), (t1, _) in zip(timeline, timeline[1:]):
        node_seconds += busy * (t1 - t0)
    span = timeline[-1][0] - timeline[0][0]
    if span <= 0:
        return 0.0
    return node_seconds / (num_nodes * span)


# -- manifest diffing ----------------------------------------------------------

@dataclass(frozen=True)
class ManifestDiff:
    """One differing field between two manifests.

    ``path`` is the dotted location (e.g. ``"summary.avg_wait"``);
    missing sides are ``None``.  For numeric pairs :attr:`rel_change`
    is ``(current - baseline) / |baseline|``.
    """

    path: str
    baseline: Any
    current: Any

    @property
    def rel_change(self) -> float | None:
        """Relative numeric change, or ``None`` for non-numeric pairs."""
        a, b = self.baseline, self.current
        if (
            isinstance(a, (int, float)) and isinstance(b, (int, float))
            and not isinstance(a, bool) and not isinstance(b, bool) and a != 0
        ):
            return (b - a) / abs(a)
        return None


def _flatten(value: Any, prefix: str, out: dict[str, Any]) -> None:
    if isinstance(value, Mapping):
        for key in sorted(value):
            _flatten(value[key], f"{prefix}.{key}" if prefix else str(key), out)
    else:
        out[prefix] = value


def diff_manifests(
    baseline: RunManifest | Mapping[str, Any],
    current: RunManifest | Mapping[str, Any],
) -> list[ManifestDiff]:
    """Field-level diff of two manifests, volatile fields excluded.

    Accepts :class:`~repro.obs.manifest.RunManifest` objects or their
    ``as_dict()`` documents.  Returns one entry per dotted path whose
    value differs (including paths present on only one side), sorted by
    path — an empty list means the runs had identical inputs and
    summary metrics.
    """
    docs = []
    for m in (baseline, current):
        doc = m.as_dict() if isinstance(m, RunManifest) else dict(m)
        docs.append({k: v for k, v in doc.items() if k not in VOLATILE_FIELDS})
    flat_a: dict[str, Any] = {}
    flat_b: dict[str, Any] = {}
    _flatten(docs[0], "", flat_a)
    _flatten(docs[1], "", flat_b)
    diffs = []
    for path in sorted(set(flat_a) | set(flat_b)):
        a, b = flat_a.get(path), flat_b.get(path)
        if a != b:
            diffs.append(ManifestDiff(path=path, baseline=a, current=b))
    return diffs


# -- one-call trace triage -----------------------------------------------------

@dataclass(frozen=True)
class TraceSummary:
    """Everything ``repro trace summarize`` prints, as data."""

    path: str
    n_records: int
    n_spans: int
    n_unclosed: int
    n_events: int
    event_counts: dict[str, int] = field(default_factory=dict)
    rollups: list[SpanRollup] = field(default_factory=list)
    decision_histogram: Histogram | None = None
    sim_time_span: tuple[float, float] | None = None
    timeline: list[tuple[float, int]] = field(default_factory=list)
    peak_busy_nodes: int = 0


def summarize_trace(path: str | Path) -> TraceSummary:
    """Parse (leniently) and summarize one JSONL trace file."""
    records = read_trace(path, strict=False)
    roots = build_span_tree(records)
    rollups = rollup_spans(roots)
    n_spans = sum(r.count for r in rollups)
    n_unclosed = sum(r.unclosed for r in rollups)
    event_counts: dict[str, int] = {}
    sim_times: list[float] = []
    for record in records:
        if record.get("type") == "event":
            name = str(record.get("name"))
            event_counts[name] = event_counts.get(name, 0) + 1
        t = record.get("t")
        if isinstance(t, (int, float)):
            sim_times.append(float(t))
    latencies = decision_latencies(roots)
    timeline = utilization_timeline(records)
    return TraceSummary(
        path=str(path),
        n_records=len(records),
        n_spans=n_spans,
        n_unclosed=n_unclosed,
        n_events=sum(event_counts.values()),
        event_counts=dict(sorted(event_counts.items())),
        rollups=rollups,
        decision_histogram=latency_histogram(latencies) if latencies else None,
        sim_time_span=(min(sim_times), max(sim_times)) if sim_times else None,
        timeline=timeline,
        peak_busy_nodes=max((busy for _, busy in timeline), default=0),
    )


def format_trace_summary(summary: TraceSummary, top: int = 10) -> str:
    """Terminal-friendly rendering of a :class:`TraceSummary`."""
    lines = [
        f"trace {summary.path}",
        f"  records {summary.n_records:,}  spans {summary.n_spans:,} "
        f"({summary.n_unclosed} unclosed)  events {summary.n_events:,}",
    ]
    if summary.sim_time_span is not None:
        t0, t1 = summary.sim_time_span
        lines.append(
            f"  simulated time {t0:,.0f} .. {t1:,.0f} s "
            f"({(t1 - t0) / 3600:,.2f} h)"
        )
    if summary.peak_busy_nodes:
        lines.append(f"  peak busy nodes {summary.peak_busy_nodes}")
    if summary.rollups:
        lines.append(
            f"  {'span':<24} {'count':>8} {'total s':>10} "
            f"{'self s':>10} {'mean ms':>9}"
        )
        for r in summary.rollups[:top]:
            lines.append(
                f"  {r.name:<24} {r.count:>8,d} {r.total_s:>10.4f} "
                f"{r.self_s:>10.4f} {1e3 * r.mean_s:>9.4f}"
            )
    if summary.event_counts:
        joined = ", ".join(
            f"{name} x{n}" for name, n in summary.event_counts.items()
        )
        lines.append(f"  events: {joined}")
    hist = summary.decision_histogram
    if hist is not None and hist.n:
        lines.append(
            f"  decision latency: n={hist.n} mean={1e3 * hist.mean:.3f} ms "
            f"p50={1e3 * hist.p50:.3f} p90={1e3 * hist.p90:.3f} "
            f"p99={1e3 * hist.p99:.3f} max={1e3 * hist.max:.3f}"
        )
    return "\n".join(lines)
