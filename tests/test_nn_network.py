"""Unit tests for the network container, builder and serialization."""

import numpy as np
import pytest

from repro.nn.layers import Dense, LeakyReLU
from repro.nn.network import Network, build_dras_network, count_parameters
from repro.nn.serialize import load_network, save_network


class TestNetwork:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Network([])

    def test_forward_chains_layers(self, rng):
        net = Network([Dense(3, 2, rng=rng), LeakyReLU(), Dense(2, 1, rng=rng)])
        y = net.forward(rng.normal(size=(4, 3)))
        assert y.shape == (4, 1)

    def test_call_alias(self, rng):
        net = Network([Dense(3, 2, rng=rng)])
        x = rng.normal(size=(1, 3))
        assert np.allclose(net(x), net.forward(x))

    def test_zero_grad(self, rng):
        net = Network([Dense(3, 2, rng=rng)])
        x = rng.normal(size=(4, 3))
        net.forward(x)
        net.backward(np.ones((4, 2)))
        assert any(np.any(p.grad != 0) for p in net.parameters())
        net.zero_grad()
        assert all(np.all(p.grad == 0) for p in net.parameters())

    def test_copy_independent(self, rng):
        net = Network([Dense(3, 2, rng=rng)])
        clone = net.copy()
        clone.parameters()[0].value += 100.0
        assert not np.allclose(net.parameters()[0].value,
                               clone.parameters()[0].value)


class TestBuildDRASNetwork:
    def test_layer_structure(self, rng):
        net = build_dras_network(10, 8, 4, 3, rng=rng)
        names = [type(layer).__name__ for layer in net.layers]
        assert names == [
            "Conv1x2", "Dense", "LeakyReLU", "Dense", "LeakyReLU", "Dense",
        ]

    def test_forward_shapes(self, rng):
        net = build_dras_network(10, 8, 4, 3, rng=rng)
        y = net.forward(rng.normal(size=(5, 10, 2)))
        assert y.shape == (5, 3)

    @pytest.mark.parametrize(
        "rows,h1,h2,out",
        [(10, 8, 4, 3), (50, 40, 10, 1), (100, 90, 22, 20), (7, 5, 3, 2)],
    )
    def test_param_count_matches_formula(self, rng, rows, h1, h2, out):
        """The instantiated count equals the Table III arithmetic."""
        net = build_dras_network(rows, h1, h2, out, rng=rng)
        expected = 3 + rows * h1 + h1 * h2 + h2 * out + out
        assert count_parameters(net) == expected

    def test_hidden_layers_have_no_bias(self, rng):
        net = build_dras_network(10, 8, 4, 3, rng=rng)
        fc1, fc2, out = net.layers[1], net.layers[3], net.layers[5]
        assert fc1.bias is None
        assert fc2.bias is None
        assert out.bias is not None


class TestStateDict:
    def test_roundtrip(self, rng):
        net = build_dras_network(6, 5, 4, 3, rng=rng)
        state = net.state_dict()
        other = build_dras_network(6, 5, 4, 3, rng=np.random.default_rng(999))
        x = rng.normal(size=(2, 6, 2))
        assert not np.allclose(net.forward(x), other.forward(x))
        other.load_state_dict(state)
        assert np.allclose(net.forward(x), other.forward(x))

    def test_mismatched_keys_rejected(self, rng):
        net = build_dras_network(6, 5, 4, 3, rng=rng)
        with pytest.raises(ValueError, match="mismatch"):
            net.load_state_dict({"bogus": np.ones(3)})

    def test_mismatched_shape_rejected(self, rng):
        net = build_dras_network(6, 5, 4, 3, rng=rng)
        state = net.state_dict()
        key = next(iter(state))
        state[key] = np.ones((1, 1))
        with pytest.raises(ValueError, match="shape"):
            net.load_state_dict(state)

    def test_load_copies_values(self, rng):
        net = build_dras_network(6, 5, 4, 3, rng=rng)
        state = net.state_dict()
        net.load_state_dict(state)
        state[next(iter(state))] += 1.0
        # mutating the source dict must not leak into the network
        assert not np.allclose(
            net.state_dict()[next(iter(state))], state[next(iter(state))]
        )


class TestSerialize:
    def test_save_load_roundtrip(self, rng, tmp_path):
        net = build_dras_network(6, 5, 4, 3, rng=rng)
        path = tmp_path / "model.npz"
        save_network(net, path)
        other = build_dras_network(6, 5, 4, 3, rng=np.random.default_rng(1))
        load_network(other, path)
        x = rng.normal(size=(2, 6, 2))
        assert np.allclose(net.forward(x), other.forward(x))

    def test_creates_parent_dirs(self, rng, tmp_path):
        net = build_dras_network(6, 5, 4, 3, rng=rng)
        path = tmp_path / "deep" / "dir" / "model.npz"
        save_network(net, path)
        assert path.exists()

    def test_wrong_architecture_rejected(self, rng, tmp_path):
        net = build_dras_network(6, 5, 4, 3, rng=rng)
        path = tmp_path / "model.npz"
        save_network(net, path)
        other = build_dras_network(7, 5, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            load_network(other, path)
